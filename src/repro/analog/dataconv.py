"""Data converters: flash / SAR / pipeline ADC behaviour.

Implements the converter arithmetic the Analog questions exercise —
comparator counts, SAR bit decisions, pipeline residue transfer, LSB size,
quantisation SNR — plus small behavioural models usable in examples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple


def lsb_size(v_ref: float, bits: int) -> float:
    """One LSB of an N-bit converter with full scale ``v_ref``."""
    if bits < 1:
        raise ValueError("bits must be >= 1")
    return v_ref / (2 ** bits)


def flash_comparator_count(bits: int) -> int:
    """A flash ADC needs 2^N - 1 comparators."""
    if bits < 1:
        raise ValueError("bits must be >= 1")
    return 2 ** bits - 1


def flash_encode(v_in: float, v_ref: float, bits: int) -> int:
    """Thermometer-to-binary output of an ideal flash ADC."""
    if v_ref <= 0:
        raise ValueError("v_ref must be positive")
    levels = flash_comparator_count(bits)
    lsb = v_ref / (2 ** bits)
    code = sum(1 for k in range(1, levels + 1) if v_in >= k * lsb)
    return code


def sar_conversion_steps(v_in: float, v_ref: float,
                         bits: int) -> List[Tuple[int, float, bool]]:
    """The SAR binary search: list of (bit index, trial DAC voltage, kept).

    Bit index counts from the MSB (index ``bits - 1``) down to 0.
    """
    if not 0 <= v_in <= v_ref:
        raise ValueError("v_in out of range")
    steps: List[Tuple[int, float, bool]] = []
    code = 0
    for bit in range(bits - 1, -1, -1):
        trial = code | (1 << bit)
        dac = trial * v_ref / (2 ** bits)
        keep = v_in >= dac
        if keep:
            code = trial
        steps.append((bit, dac, keep))
    return steps


def sar_code(v_in: float, v_ref: float, bits: int) -> int:
    """Final SAR output code."""
    code = 0
    for bit, _, keep in sar_conversion_steps(v_in, v_ref, bits):
        if keep:
            code |= 1 << bit
    return code


def sar_cycles(bits: int) -> int:
    """A SAR ADC resolves one bit per clock: N cycles."""
    if bits < 1:
        raise ValueError("bits must be >= 1")
    return bits


def pipeline_residue(v_in: float, v_ref: float, stage_bits: int = 1) -> float:
    """Residue of a multiplying-DAC pipeline stage (non-redundant).

    For a 1-bit stage: residue = 2 v_in - d * v_ref with d in {0, 1}
    (comparator at v_ref / 2).  Generalises to ``stage_bits`` by scaling
    2^stage_bits and subtracting the sub-DAC output.
    """
    if not 0 <= v_in <= v_ref:
        raise ValueError("v_in out of range")
    gain = 2 ** stage_bits
    code = min(int(v_in / v_ref * gain), gain - 1)
    return gain * v_in - code * v_ref


def pipeline_stage_gain(stage_bits: int) -> int:
    """Interstage residue amplifier gain: 2^stage_bits."""
    if stage_bits < 1:
        raise ValueError("stage_bits must be >= 1")
    return 2 ** stage_bits


def ideal_sqnr_db(bits: int) -> float:
    """Quantisation-limited SNR of an ideal N-bit ADC: 6.02 N + 1.76 dB."""
    if bits < 1:
        raise ValueError("bits must be >= 1")
    return 6.02 * bits + 1.76


def enob_from_sndr(sndr_db: float) -> float:
    """Effective number of bits from a measured SNDR."""
    return (sndr_db - 1.76) / 6.02


@dataclass(frozen=True)
class R2RLadder:
    """An R-2R DAC: output = v_ref * code / 2^bits."""

    bits: int
    v_ref: float

    def output(self, code: int) -> float:
        if not 0 <= code < 2 ** self.bits:
            raise ValueError("code out of range")
        return self.v_ref * code / (2 ** self.bits)


def dnl_from_levels(levels: Sequence[float]) -> List[float]:
    """Differential nonlinearity (in LSB) from measured transition levels."""
    if len(levels) < 3:
        raise ValueError("need at least three levels")
    steps = [b - a for a, b in zip(levels, levels[1:])]
    ideal = (levels[-1] - levels[0]) / (len(levels) - 1)
    if ideal <= 0:
        raise ValueError("levels must be increasing")
    return [step / ideal - 1.0 for step in steps]


def nyquist_rate(signal_bandwidth_hz: float) -> float:
    """Minimum sampling rate for alias-free capture."""
    if signal_bandwidth_hz <= 0:
        raise ValueError("bandwidth must be positive")
    return 2.0 * signal_bandwidth_hz
