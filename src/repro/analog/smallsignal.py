"""MOSFET operating points and small-signal stage analysis.

Square-law long-channel MOS model — the model graduate analog courses (and
hence the benchmark questions) assume.  Provides operating-point solving for
simple bias arrangements and the classic single-stage gain/impedance
formulas, each cross-checkable against the MNA solver via
:func:`common_source_gain_mna`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.analog.netlist import Circuit, parallel


@dataclass(frozen=True)
class MosParams:
    """Square-law device parameters: i_d = 0.5 k (v_gs - v_th)^2 (1 + lam v_ds)."""

    k: float           # transconductance parameter, A/V^2 (= mu Cox W/L)
    v_th: float        # threshold voltage, V
    lam: float = 0.0   # channel-length modulation, 1/V

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError("k must be positive")
        if self.lam < 0:
            raise ValueError("lambda must be non-negative")


@dataclass(frozen=True)
class OperatingPoint:
    """Bias point of a MOSFET in saturation."""

    i_d: float
    v_gs: float
    v_ov: float
    gm: float
    ro: float  # infinite when lambda == 0

    @property
    def intrinsic_gain(self) -> float:
        return self.gm * self.ro


def saturation_current(params: MosParams, v_gs: float, v_ds: float = 1.0) -> float:
    """Drain current in saturation (0 below threshold)."""
    v_ov = v_gs - params.v_th
    if v_ov <= 0:
        return 0.0
    return 0.5 * params.k * v_ov ** 2 * (1.0 + params.lam * v_ds)


def in_saturation(params: MosParams, v_gs: float, v_ds: float) -> bool:
    """Saturation check: v_ds >= v_gs - v_th > 0."""
    v_ov = v_gs - params.v_th
    return v_ov > 0 and v_ds >= v_ov


def bias_from_current(params: MosParams, i_d: float) -> OperatingPoint:
    """Operating point of a saturated device carrying ``i_d``."""
    if i_d <= 0:
        raise ValueError("drain current must be positive")
    v_ov = math.sqrt(2.0 * i_d / params.k)
    gm = params.k * v_ov  # = sqrt(2 k Id) = 2 Id / Vov
    ro = float("inf") if params.lam == 0 else 1.0 / (params.lam * i_d)
    return OperatingPoint(i_d=i_d, v_gs=v_ov + params.v_th, v_ov=v_ov,
                          gm=gm, ro=ro)


def bias_from_vgs(params: MosParams, v_gs: float) -> OperatingPoint:
    """Operating point given the gate-source voltage (saturation assumed)."""
    i_d = saturation_current(params, v_gs)
    if i_d <= 0:
        raise ValueError("device is off at this v_gs")
    return bias_from_current(params, i_d)


# -- single-stage gain formulas --------------------------------------------------

def common_source_gain(gm: float, r_load: float,
                       ro: float = float("inf")) -> float:
    """A_v = -gm (R_D || r_o)."""
    r_out = r_load if math.isinf(ro) else parallel(r_load, ro)
    return -gm * r_out


def common_source_degenerated_gain(gm: float, r_load: float,
                                   r_source: float) -> float:
    """A_v = -gm R_D / (1 + gm R_S), neglecting r_o."""
    return -gm * r_load / (1.0 + gm * r_source)


def common_drain_gain(gm: float, r_load: float) -> float:
    """Source-follower gain gm R / (1 + gm R) < 1."""
    return gm * r_load / (1.0 + gm * r_load)


def common_gate_gain(gm: float, r_load: float) -> float:
    """Non-inverting common-gate gain +gm R_D (ideal source drive)."""
    return gm * r_load


def source_follower_rout(gm: float) -> float:
    """Output resistance looking into the source: 1/gm."""
    if gm <= 0:
        raise ValueError("gm must be positive")
    return 1.0 / gm


def degenerated_rout(gm: float, ro: float, r_source: float) -> float:
    """Looking into the drain with source degeneration:
    r_o (1 + gm R_S) + R_S."""
    return ro * (1.0 + gm * r_source) + r_source


def diff_pair_gain(gm: float, r_load: float) -> float:
    """Differential gain of a resistively loaded pair: gm R_D."""
    return gm * r_load


def diff_pair_cmrr(gm: float, r_load: float, r_tail: float) -> float:
    """CMRR = A_dm / A_cm = gm R_D / (R_D / (2 R_tail)) = 2 gm R_tail
    (textbook single-ended approximation)."""
    a_dm = gm * r_load
    a_cm = r_load / (2.0 * r_tail) if r_tail > 0 else float("inf")
    return a_dm / a_cm if a_cm else float("inf")


def cascode_output_resistance(gm2: float, ro2: float, ro1: float) -> float:
    """R_out of a cascode: gm2 ro2 ro1 (+ ro2 + ro1, usually dropped)."""
    return gm2 * ro2 * ro1 + ro2 + ro1


# -- MNA cross-check --------------------------------------------------------------

def common_source_gain_mna(gm: float, r_load: float,
                           ro: Optional[float] = None) -> float:
    """Common-source small-signal gain computed by the MNA engine.

    Builds the small-signal equivalent (VCCS + load, optional r_o) and
    measures v_out for v_in = 1 V.  Used in tests to validate the closed
    forms above against the generic solver.
    """
    circuit = Circuit()
    circuit.vsource("vin", "in", 0, 1.0)
    circuit.vccs("m1", "out", 0, "in", 0, gm)
    circuit.resistor("rd", "out", 0, r_load)
    if ro is not None:
        circuit.resistor("ro", "out", 0, ro)
    return circuit.solve().voltage("out")


def source_follower_gain_mna(gm: float, r_load: float) -> float:
    """Source-follower gain via MNA: VCCS controlled by (in - out)."""
    circuit = Circuit()
    circuit.vsource("vin", "in", 0, 1.0)
    circuit.vccs("m1", 0, "out", "in", "out", gm)
    circuit.resistor("rs", "out", 0, r_load)
    return circuit.solve().voltage("out")


def five_transistor_ota_gain(gm: float, ro_n: float, ro_p: float) -> float:
    """Gain of the 5T OTA: gm (ro_n || ro_p)."""
    return gm * parallel(ro_n, ro_p)
