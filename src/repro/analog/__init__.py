"""Analog Design substrate: MNA circuit solver, small-signal stage analysis,
transfer functions / Bode metrics, feedback theory, data converters, and the
44 Analog ChipVQA questions built on them."""

from repro.analog import (
    dataconv,
    feedback,
    netlist,
    noise,
    smallsignal,
    transfer,
)
from repro.analog.questions import (
    generate_analog_questions,
    generate_analog_questions_scaled,
)

__all__ = [
    "dataconv",
    "feedback",
    "netlist",
    "noise",
    "smallsignal",
    "transfer",
    "generate_analog_questions",
    "generate_analog_questions_scaled",
]
