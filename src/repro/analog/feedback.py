"""Negative-feedback analysis: topologies, loop gain, closed-loop effects.

Implements the four classic feedback topologies and their impedance
transformations, ideal/non-ideal op-amp closed-loop gains, and loop-gain /
desensitisation arithmetic used by the Analog questions.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass


class Topology(enum.Enum):
    """Feedback topologies named (sampling)-(mixing)."""

    SERIES_SHUNT = "series-shunt"    # voltage amp: Zin up, Zout down
    SHUNT_SERIES = "shunt-series"    # current amp: Zin down, Zout up
    SERIES_SERIES = "series-series"  # transconductance: both up
    SHUNT_SHUNT = "shunt-shunt"      # transresistance: both down


@dataclass(frozen=True)
class LoopAnalysis:
    """Closed-loop quantities of a single-loop negative-feedback system."""

    open_loop_gain: float
    feedback_factor: float

    @property
    def loop_gain(self) -> float:
        return self.open_loop_gain * self.feedback_factor

    @property
    def closed_loop_gain(self) -> float:
        return self.open_loop_gain / (1.0 + self.loop_gain)

    @property
    def ideal_gain(self) -> float:
        if self.feedback_factor == 0:
            raise ValueError("no feedback")
        return 1.0 / self.feedback_factor

    @property
    def desensitivity(self) -> float:
        """1 + T: the factor by which gain sensitivity is reduced."""
        return 1.0 + self.loop_gain

    def gain_error_percent(self) -> float:
        """Relative deviation of the closed-loop gain from 1/beta."""
        return abs(self.closed_loop_gain - self.ideal_gain) \
            / self.ideal_gain * 100.0

    def input_impedance(self, z_open: float, topology: Topology) -> float:
        if topology in (Topology.SERIES_SHUNT, Topology.SERIES_SERIES):
            return z_open * self.desensitivity
        return z_open / self.desensitivity

    def output_impedance(self, z_open: float, topology: Topology) -> float:
        if topology in (Topology.SERIES_SHUNT, Topology.SHUNT_SHUNT):
            return z_open / self.desensitivity
        return z_open * self.desensitivity

    def bandwidth_extension(self, open_loop_bw: float) -> float:
        """Closed-loop bandwidth of a single-pole amplifier: BW (1 + T)."""
        return open_loop_bw * self.desensitivity


# -- op-amp closed-loop gains -------------------------------------------------------

def inverting_gain(r_in: float, r_f: float,
                   open_loop: float = float("inf")) -> float:
    """Inverting amplifier gain -Rf/Rin (finite-gain corrected if given)."""
    if r_in <= 0 or r_f <= 0:
        raise ValueError("resistances must be positive")
    ideal = -r_f / r_in
    if math.isinf(open_loop):
        return ideal
    beta = r_in / (r_in + r_f)
    return ideal * (1.0 / (1.0 + 1.0 / (open_loop * beta)))


def noninverting_gain(r_ground: float, r_f: float,
                      open_loop: float = float("inf")) -> float:
    """Non-inverting gain 1 + Rf/Rg (finite-gain corrected if given)."""
    if r_ground <= 0 or r_f <= 0:
        raise ValueError("resistances must be positive")
    ideal = 1.0 + r_f / r_ground
    if math.isinf(open_loop):
        return ideal
    beta = 1.0 / ideal
    return ideal * (1.0 / (1.0 + 1.0 / (open_loop * beta)))


def instrumentation_amp_gain(r_gain: float, r1: float, r2: float,
                             r3: float) -> float:
    """Classic 3-op-amp in-amp: (1 + 2 R1 / Rg) * (R3 / R2)."""
    if min(r_gain, r1, r2, r3) <= 0:
        raise ValueError("resistances must be positive")
    return (1.0 + 2.0 * r1 / r_gain) * (r3 / r2)


def summing_amp_output(inputs, r_f: float) -> float:
    """Inverting summer: vout = -Rf * sum(v_i / R_i)."""
    total = 0.0
    for v_i, r_i in inputs:
        if r_i <= 0:
            raise ValueError("resistances must be positive")
        total += v_i / r_i
    return -r_f * total


def relaxation_oscillator_period(r: float, c: float, beta: float) -> float:
    """Period of a comparator-based RC relaxation oscillator:
    T = 2 R C ln((1 + beta) / (1 - beta))."""
    if not 0 < beta < 1:
        raise ValueError("beta must be in (0, 1)")
    return 2.0 * r * c * math.log((1.0 + beta) / (1.0 - beta))
