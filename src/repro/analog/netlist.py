"""Linear circuit netlists and a Modified Nodal Analysis (MNA) solver.

Supports the element set needed by the Analog Design questions: resistors,
independent voltage/current sources, and voltage-controlled current sources
(the small-signal ``gm`` element).  DC operating points of linear(ised)
circuits are solved exactly with numpy; the solver is also the engine behind
equivalent-resistance and divider questions.

Node ``0`` (alias ``"gnd"``) is ground.  Nodes are arbitrary hashable names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple, Union

import numpy as np

Node = Union[int, str]

GROUND_ALIASES = {0, "0", "gnd", "GND", "ground"}


@dataclass(frozen=True)
class Resistor:
    name: str
    a: Node
    b: Node
    ohms: float

    def __post_init__(self) -> None:
        if self.ohms <= 0:
            raise ValueError(f"{self.name}: resistance must be positive")


@dataclass(frozen=True)
class VoltageSource:
    name: str
    plus: Node
    minus: Node
    volts: float


@dataclass(frozen=True)
class CurrentSource:
    """Current flows *out of* ``plus`` through the circuit into ``minus``."""

    name: str
    plus: Node
    minus: Node
    amps: float


@dataclass(frozen=True)
class VCCS:
    """Voltage-controlled current source: i(out_plus->out_minus) = gm * v(cp, cm)."""

    name: str
    out_plus: Node
    out_minus: Node
    ctrl_plus: Node
    ctrl_minus: Node
    gm: float


Element = Union[Resistor, VoltageSource, CurrentSource, VCCS]


class Circuit:
    """A linear circuit solvable by MNA."""

    def __init__(self) -> None:
        self._elements: List[Element] = []
        self._names: set = set()

    def _register(self, element: Element) -> None:
        if element.name in self._names:
            raise ValueError(f"duplicate element name {element.name!r}")
        self._names.add(element.name)
        self._elements.append(element)

    def resistor(self, name: str, a: Node, b: Node, ohms: float) -> "Circuit":
        self._register(Resistor(name, a, b, ohms))
        return self

    def vsource(self, name: str, plus: Node, minus: Node, volts: float) -> "Circuit":
        self._register(VoltageSource(name, plus, minus, volts))
        return self

    def isource(self, name: str, plus: Node, minus: Node, amps: float) -> "Circuit":
        self._register(CurrentSource(name, plus, minus, amps))
        return self

    def vccs(self, name: str, out_plus: Node, out_minus: Node,
             ctrl_plus: Node, ctrl_minus: Node, gm: float) -> "Circuit":
        self._register(VCCS(name, out_plus, out_minus, ctrl_plus,
                            ctrl_minus, gm))
        return self

    @property
    def elements(self) -> Tuple[Element, ...]:
        return tuple(self._elements)

    # -- solving -------------------------------------------------------------

    def _node_index(self) -> Dict[Node, int]:
        nodes: Dict[Node, int] = {}
        for element in self._elements:
            if isinstance(element, VCCS):
                terminals = (element.out_plus, element.out_minus,
                             element.ctrl_plus, element.ctrl_minus)
            elif isinstance(element, Resistor):
                terminals = (element.a, element.b)
            else:
                terminals = (element.plus, element.minus)
            for node in terminals:
                if node in GROUND_ALIASES:
                    continue
                if node not in nodes:
                    nodes[node] = len(nodes)
        return nodes

    def solve(self) -> "Solution":
        """Solve the MNA system; raises on singular (floating) circuits."""
        nodes = self._node_index()
        vsources = [e for e in self._elements if isinstance(e, VoltageSource)]
        n, m = len(nodes), len(vsources)
        if n + m == 0:
            raise ValueError("empty circuit")
        matrix = np.zeros((n + m, n + m))
        rhs = np.zeros(n + m)

        def idx(node: Node) -> Optional[int]:
            if node in GROUND_ALIASES:
                return None
            return nodes[node]

        for element in self._elements:
            if isinstance(element, Resistor):
                g = 1.0 / element.ohms
                ia, ib = idx(element.a), idx(element.b)
                if ia is not None:
                    matrix[ia, ia] += g
                if ib is not None:
                    matrix[ib, ib] += g
                if ia is not None and ib is not None:
                    matrix[ia, ib] -= g
                    matrix[ib, ia] -= g
            elif isinstance(element, CurrentSource):
                ip, im = idx(element.plus), idx(element.minus)
                if ip is not None:
                    rhs[ip] -= element.amps
                if im is not None:
                    rhs[im] += element.amps
            elif isinstance(element, VCCS):
                op, om = idx(element.out_plus), idx(element.out_minus)
                cp, cm = idx(element.ctrl_plus), idx(element.ctrl_minus)
                for out_i, sign_out in ((op, 1.0), (om, -1.0)):
                    if out_i is None:
                        continue
                    if cp is not None:
                        matrix[out_i, cp] += sign_out * element.gm
                    if cm is not None:
                        matrix[out_i, cm] -= sign_out * element.gm
        for k, source in enumerate(vsources):
            row = n + k
            ip, im = idx(source.plus), idx(source.minus)
            if ip is not None:
                matrix[ip, row] += 1.0
                matrix[row, ip] += 1.0
            if im is not None:
                matrix[im, row] -= 1.0
                matrix[row, im] -= 1.0
            rhs[row] = source.volts
        try:
            solution = np.linalg.solve(matrix, rhs)
        except np.linalg.LinAlgError as exc:
            raise ValueError(f"singular circuit: {exc}") from exc
        voltages = {node: float(solution[i]) for node, i in nodes.items()}
        currents = {
            source.name: float(solution[n + k])
            for k, source in enumerate(vsources)
        }
        return Solution(self, voltages, currents)


@dataclass
class Solution:
    """Node voltages and voltage-source branch currents of a solved circuit."""

    circuit: Circuit
    _voltages: Dict[Node, float]
    _source_currents: Dict[str, float]

    def voltage(self, node: Node) -> float:
        if node in GROUND_ALIASES:
            return 0.0
        return self._voltages[node]

    def voltage_across(self, a: Node, b: Node) -> float:
        return self.voltage(a) - self.voltage(b)

    def source_current(self, name: str) -> float:
        """Current through a voltage source (positive: into the + terminal)."""
        return self._source_currents[name]

    def resistor_current(self, name: str) -> float:
        """Current through resistor ``name``, from node ``a`` to ``b``."""
        for element in self.circuit.elements:
            if isinstance(element, Resistor) and element.name == name:
                return self.voltage_across(element.a, element.b) / element.ohms
        raise KeyError(f"no resistor named {name!r}")

    def power_dissipated(self, name: str) -> float:
        """Power in watts dissipated by resistor ``name``."""
        current = self.resistor_current(name)
        for element in self.circuit.elements:
            if isinstance(element, Resistor) and element.name == name:
                return current * current * element.ohms
        raise KeyError(f"no resistor named {name!r}")


# -- convenience analyses ------------------------------------------------------

def series(*ohms: float) -> float:
    """Series resistance."""
    if not ohms:
        raise ValueError("series of nothing")
    return float(sum(ohms))


def parallel(*ohms: float) -> float:
    """Parallel resistance."""
    if not ohms:
        raise ValueError("parallel of nothing")
    if any(r <= 0 for r in ohms):
        raise ValueError("resistances must be positive")
    return 1.0 / sum(1.0 / r for r in ohms)


def equivalent_resistance(circuit: Circuit, a: Node, b: Node) -> float:
    """Resistance seen between two nodes, measured with a 1 A test source.

    Independent sources inside the circuit must already be zeroed by the
    caller (voltage sources as 0 V, current sources omitted) — this is the
    standard small-signal / Thevenin measurement setup.
    """
    probe = Circuit()
    for element in circuit.elements:
        probe._register(element)
    probe.isource("__probe__", b, a, 1.0)
    # pin node ``b`` as the reference so the system is non-singular even
    # when the network under test never touches ground
    if b not in GROUND_ALIASES:
        probe.vsource("__ref__", b, 0, 0.0)
    solution = probe.solve()
    return solution.voltage_across(a, b)


def voltage_divider(vs: float, r_top: float, r_bottom: float) -> float:
    """Output of an unloaded resistive divider."""
    return vs * r_bottom / (r_top + r_bottom)
