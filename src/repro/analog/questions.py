"""The 44 Analog Design multiple-choice questions of the benchmark.

Mirrors the paper's Analog collection (Section III-B2): amplifier- and
transistor-level schematics, Bode plots and symbolic transfer functions,
covering DC operating points, small-signal gain, equivalent resistance,
closed-loop feedback, poles/zeros/unity-gain frequency, phase margin,
voltage range and compensation.  Every gold value is computed by the
analog substrate (MNA solver or the vetted closed forms), never typed in.

Visual-type budget (DESIGN.md): 32 schematics, 4 curves, 2 diagrams,
4 mixed, 1 table, 1 equation.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.analog import dataconv, feedback, smallsignal
from repro.analog.feedback import LoopAnalysis, Topology
from repro.analog.netlist import (
    Circuit,
    equivalent_resistance,
    parallel,
    voltage_divider,
)
from repro.analog.smallsignal import MosParams, bias_from_current
from repro.analog.transfer import (
    TransferFunction,
    gbw_from_dc_gain,
    rc_lowpass_corner_hz,
)
from repro.core.question import (
    AnswerKind,
    Category,
    Question,
    VisualContent,
    VisualType,
    make_mc_question,
)
from repro.visual.diagram import block_diagram_scene
from repro.visual.resolution import infer_legibility_scale
from repro.visual.scene import translate
from repro.visual.schematic import (
    bode_plot_scene,
    common_source_scene,
    differential_pair_scene,
    flash_adc_scene,
    opamp_stage_scene,
    resistor_network_scene,
)
from repro.visual.table import equation_scene, table_scene
from repro.visual.waveform import curve_scene, step_response_scene


def _visual(visual_type: VisualType, description: str, scene) -> VisualContent:
    return VisualContent(
        visual_type=visual_type,
        description=description,
        render_spec=("scene", scene),
        legibility_scale=infer_legibility_scale(scene),
    )


def _mc(
    number: int,
    prompt: str,
    visual: VisualContent,
    choices: Sequence[str],
    correct: int,
    *,
    difficulty: float,
    topics: Sequence[str],
    answer_kind: AnswerKind = AnswerKind.NUMERIC,
    aliases: Sequence[str] = (),
    unit: str = "",
) -> Question:
    return make_mc_question(
        qid=f"ana-{number:02d}",
        category=Category.ANALOG,
        prompt=prompt,
        visual=visual,
        choices=choices,
        correct=correct,
        difficulty=difficulty,
        topics=topics,
        answer_kind=answer_kind,
        aliases=aliases,
        unit=unit,
    )


def _ladder_circuit() -> Circuit:
    """The Fig. 3 ladder: Vs-R1-n1, R2 shunt, R3 to n2, R4 shunt, RL load."""
    circuit = Circuit()
    circuit.vsource("vs", "n_in", 0, 5.0)
    circuit.resistor("r1", "n_in", "n1", 1000.0)
    circuit.resistor("r2", "n1", 0, 2200.0)
    circuit.resistor("r3", "n1", "n2", 2200.0)
    circuit.resistor("r4", "n2", 0, 1500.0)
    circuit.resistor("rl", "n2", 0, 4700.0)
    return circuit


_LADDER_SCENE = resistor_network_scene(
    [("R1", "1K"), ("R2", "2.2K"), ("R3", "2.2K"), ("R4", "1.5K"),
     ("RL", "4.7K")],
    source_label="5V",
)


def _q_ladder_voltage() -> Question:
    v_rl = _ladder_circuit().solve().voltage("n2")
    gold = f"{v_rl:.2f} V"
    visual = _visual(VisualType.SCHEMATIC,
                     "Resistor ladder with five labelled resistors",
                     _LADDER_SCENE)
    return _mc(
        1,
        "Given VS = 5V, R1 = 1 kOhm, R2 = 2.2 kOhm, R3 = 2.2 kOhm, R4 = "
        "1.5 kOhm, and RL = 4.7 kOhm connected as shown. Determine the "
        "voltage across RL. Answer in unit of V.",
        visual,
        [gold, f"{v_rl * 2:.2f} V", f"{v_rl / 2:.2f} V", "5.00 V"],
        0,
        difficulty=0.5,
        topics=("dc analysis", "resistor networks"),
        unit="V",
        aliases=(f"{v_rl:.2f}", f"{v_rl:.3f} V"),
    )


def _q_ladder_current() -> Question:
    solution = _ladder_circuit().solve()
    i_rl = solution.resistor_current("rl") * 1000.0  # mA
    gold = f"{i_rl:.3f} mA"
    visual = _visual(VisualType.SCHEMATIC,
                     "Resistor ladder with load resistor RL",
                     _LADDER_SCENE)
    return _mc(
        2,
        "For the same ladder network (VS = 5V, R1 = 1 kOhm, R2 = 2.2 kOhm, "
        "R3 = 2.2 kOhm, R4 = 1.5 kOhm, RL = 4.7 kOhm), what current flows "
        "through RL?",
        visual,
        [gold, f"{i_rl * 2:.3f} mA", f"{i_rl / 10:.4f} mA", "1.064 mA"],
        0,
        difficulty=0.55,
        topics=("dc analysis",),
        unit="mA",
        aliases=(f"{i_rl:.3f}",),
    )


def _q_equivalent_resistance() -> Question:
    circuit = Circuit()
    circuit.resistor("r1", "a", "m", 1000.0)
    circuit.resistor("r2", "m", "b", 2000.0)
    circuit.resistor("r3", "a", "b", 6000.0)
    r_eq = equivalent_resistance(circuit, "a", "b")
    expected = parallel(1000.0 + 2000.0, 6000.0)
    assert abs(r_eq - expected) < 1e-6
    gold = f"{r_eq / 1000:.1f} kOhm"
    scene = resistor_network_scene(
        [("R1", "1K"), ("R2", "2K"), ("R3", "6K")], source_label="OHM")
    visual = _visual(VisualType.SCHEMATIC,
                     "Series pair in parallel with a third resistor", scene)
    return _mc(
        3,
        "R1 = 1 kOhm in series with R2 = 2 kOhm, together in parallel with "
        "R3 = 6 kOhm as drawn. What is the equivalent resistance between "
        "the terminals?",
        visual,
        [gold, "9.0 kOhm", "3.0 kOhm", "0.7 kOhm"],
        0,
        difficulty=0.3,
        topics=("resistor networks",),
        unit="kOhm",
        aliases=("2000 Ohm", f"{r_eq:.0f} Ohm", "2k"),
    )


def _q_divider() -> Question:
    v_out = voltage_divider(12.0, 6800.0, 3300.0)
    gold = f"{v_out:.2f} V"
    scene = resistor_network_scene([("R1", "6.8K"), ("R2", "3.3K")],
                                   source_label="12V")
    visual = _visual(VisualType.SCHEMATIC, "Two-resistor voltage divider",
                     scene)
    return _mc(
        4,
        "The divider shown uses R1 = 6.8 kOhm on top and R2 = 3.3 kOhm to "
        "ground from a 12 V supply. What is the unloaded output voltage "
        "across R2?",
        visual,
        [gold, "6.00 V", f"{12 - v_out:.2f} V", "3.30 V"],
        0,
        difficulty=0.15,
        topics=("dc analysis",),
        unit="V",
        aliases=(f"{v_out:.2f}",),
    )


def _q_power() -> Question:
    circuit = Circuit()
    circuit.vsource("vs", "n1", 0, 10.0)
    circuit.resistor("r1", "n1", "n2", 100.0)
    circuit.resistor("r2", "n2", 0, 400.0)
    power_mw = circuit.solve().power_dissipated("r2") * 1000.0
    gold = f"{power_mw:.0f} mW"
    scene = resistor_network_scene([("R1", "100"), ("R2", "400")],
                                   source_label="10V")
    visual = _visual(VisualType.SCHEMATIC,
                     "Series resistors across a 10 V source", scene)
    return _mc(
        5,
        "In the circuit shown a 10 V source drives R1 = 100 Ohm in series "
        "with R2 = 400 Ohm. How much power is dissipated in R2?",
        visual,
        [gold, "200 mW", "64 mW", "400 mW"],
        0,
        difficulty=0.35,
        topics=("power", "dc analysis"),
        unit="mW",
        aliases=(f"{power_mw / 1000:.3f} W",),
    )


def _q_inverting() -> Question:
    gain = feedback.inverting_gain(10e3, 100e3)
    gold = f"{gain:.0f}"
    scene = opamp_stage_scene("inverting", "RIN=10K", "RF=100K")
    visual = _visual(VisualType.SCHEMATIC, "Inverting op-amp stage", scene)
    return _mc(
        6,
        "Assuming an ideal op-amp, what is the voltage gain VOUT/VIN of "
        "the inverting amplifier shown (RIN = 10 kOhm, RF = 100 kOhm)?",
        visual,
        [gold, "10", "-11", "-9"],
        0,
        difficulty=0.3,
        topics=("op-amps", "closed-loop gain"),
        aliases=("-10 V/V", "gain of -10"),
    )


def _q_noninverting() -> Question:
    gain = feedback.noninverting_gain(1e3, 9e3)
    gold = f"{gain:.0f}"
    scene = opamp_stage_scene("noninverting", "RG=1K", "RF=9K")
    visual = _visual(VisualType.SCHEMATIC, "Non-inverting op-amp stage",
                     scene)
    return _mc(
        7,
        "For the non-inverting amplifier shown with RG = 1 kOhm to ground "
        "and RF = 9 kOhm feedback, what is the ideal closed-loop gain?",
        visual,
        [gold, "9", "-10", "90"],
        0,
        difficulty=0.3,
        topics=("op-amps", "closed-loop gain"),
        aliases=("10 V/V",),
    )


def _q_finite_gain() -> Question:
    gain = feedback.inverting_gain(10e3, 100e3, open_loop=1000.0)
    gold = f"{gain:.2f}"
    scene = opamp_stage_scene("inverting", "RIN=10K", "RF=100K")
    visual = _visual(VisualType.SCHEMATIC,
                     "Inverting stage with finite-gain op-amp", scene)
    return _mc(
        8,
        "Repeat the inverting-amplifier analysis (RIN = 10 kOhm, RF = "
        "100 kOhm) for an op-amp with finite open-loop gain A = 1000. "
        "What closed-loop gain results?",
        visual,
        [gold, "-10.00", "-9.50", f"{gain * 1.02:.2f}"],
        0,
        difficulty=0.65,
        topics=("op-amps", "finite gain", "feedback"),
    )


def _q_summing() -> Question:
    v_out = feedback.summing_amp_output(
        [(1.0, 10e3), (2.0, 20e3)], 20e3)
    gold = f"{v_out:.0f} V"
    scene = opamp_stage_scene("inverting", "R1=10K R2=20K", "RF=20K")
    visual = _visual(VisualType.SCHEMATIC, "Two-input inverting summer",
                     scene)
    return _mc(
        9,
        "The inverting summer shown has V1 = 1 V through R1 = 10 kOhm and "
        "V2 = 2 V through R2 = 20 kOhm, with RF = 20 kOhm. Find VOUT.",
        visual,
        [gold, "-3 V", "+4 V", "-2 V"],
        0,
        difficulty=0.45,
        topics=("op-amps", "summing"),
        unit="V",
        aliases=(f"{v_out:.1f}",),
    )


def _q_inamp() -> Question:
    gain = feedback.instrumentation_amp_gain(1e3, 10e3, 10e3, 10e3)
    gold = f"{gain:.0f}"
    scene = opamp_stage_scene("noninverting", "RG=1K", "R1=10K")
    visual = _visual(VisualType.SCHEMATIC,
                     "Three-op-amp instrumentation amplifier", scene)
    return _mc(
        10,
        "A classic three-op-amp instrumentation amplifier has RG = 1 kOhm, "
        "first-stage resistors R1 = 10 kOhm and a unity difference stage "
        "(R3 = R2 = 10 kOhm), as drawn. What is its differential gain?",
        visual,
        [gold, "11", "10", "20"],
        0,
        difficulty=0.6,
        topics=("instrumentation amplifier",),
    )


def _q_cs_gain() -> Question:
    gain = smallsignal.common_source_gain(2e-3, 10e3, ro=50e3)
    mna = smallsignal.common_source_gain_mna(2e-3, 10e3, ro=50e3)
    assert abs(gain - mna) < 1e-6
    gold = f"{gain:.1f}"
    scene = common_source_scene("GM=2M", "RD=10K")
    visual = _visual(VisualType.SCHEMATIC,
                     "Common-source stage with resistive load", scene)
    return _mc(
        11,
        "The common-source stage shown has gm = 2 mS, RD = 10 kOhm and "
        "ro = 50 kOhm. What is the small-signal voltage gain?",
        visual,
        [gold, "-20.0", "-12.5", "20.0"],
        0,
        difficulty=0.5,
        topics=("small-signal", "common source"),
    )


def _q_cs_degenerated() -> Question:
    gain = smallsignal.common_source_degenerated_gain(2e-3, 10e3, 500.0)
    gold = f"{gain:.1f}"
    scene = common_source_scene("GM=2M", "RD=10K", with_degeneration=True,
                                rs_label="RS=500")
    visual = _visual(VisualType.SCHEMATIC,
                     "Common-source stage with source degeneration", scene)
    return _mc(
        12,
        "Adding RS = 500 Ohm source degeneration to the stage shown "
        "(gm = 2 mS, RD = 10 kOhm, neglect ro), what does the gain become?",
        visual,
        [gold, "-20.0", "-5.0", "-40.0"],
        0,
        difficulty=0.55,
        topics=("small-signal", "degeneration"),
    )


def _q_follower() -> Question:
    gain = smallsignal.common_drain_gain(5e-3, 2e3)
    mna = smallsignal.source_follower_gain_mna(5e-3, 2e3)
    assert abs(gain - mna) < 1e-9
    gold = f"{gain:.2f}"
    scene = common_source_scene("GM=5M", "RS=2K")
    visual = _visual(VisualType.SCHEMATIC, "Source follower driving RS",
                     scene)
    return _mc(
        13,
        "The source follower shown has gm = 5 mS loaded by RS = 2 kOhm "
        "(neglect body effect and ro). What is its voltage gain?",
        visual,
        [gold, "1.00", "0.50", "10.00"],
        0,
        difficulty=0.45,
        topics=("small-signal", "source follower"),
    )


def _q_common_gate() -> Question:
    gain = smallsignal.common_gate_gain(4e-3, 5e3)
    gold = f"+{gain:.0f}"
    scene = common_source_scene("GM=4M", "RD=5K")
    visual = _visual(VisualType.SCHEMATIC, "Common-gate stage", scene)
    return _mc(
        14,
        "For the common-gate stage shown with gm = 4 mS and RD = 5 kOhm "
        "driven from an ideal source, what is the voltage gain (sign "
        "included)?",
        visual,
        [gold, "-20", "+4", "+0.95"],
        0,
        difficulty=0.45,
        topics=("small-signal", "common gate"),
        aliases=("20", "20 V/V"),
    )


def _q_cascode_rout() -> Question:
    rout = smallsignal.cascode_output_resistance(2e-3, 50e3, 50e3)
    gold = f"{rout / 1e6:.1f} MOhm"
    scene = common_source_scene("GM2=2M", "RO=50K")
    visual = _visual(VisualType.SCHEMATIC, "Cascoded current-source output",
                     scene)
    return _mc(
        15,
        "The cascode shown stacks M2 (gm = 2 mS, ro = 50 kOhm) on M1 "
        "(ro = 50 kOhm). Estimate the output resistance (including the "
        "additive ro terms).",
        visual,
        [gold, "0.1 MOhm", "50.0 MOhm", "0.5 MOhm"],
        0,
        difficulty=0.65,
        topics=("cascode", "output resistance"),
        unit="MOhm",
        aliases=(f"{rout:.0f} Ohm", f"{rout/1e6:.2f} MOhm"),
    )


def _q_ota_gain() -> Question:
    gain = smallsignal.five_transistor_ota_gain(1e-3, 100e3, 100e3)
    gold = f"{gain:.0f}"
    scene = differential_pair_scene("IBIAS")
    visual = _visual(VisualType.SCHEMATIC,
                     "Five-transistor OTA with current-mirror load", scene)
    return _mc(
        16,
        "A five-transistor OTA has input gm = 1 mS with NMOS and PMOS "
        "output resistances both 100 kOhm, as drawn. What is its DC "
        "voltage gain?",
        visual,
        [gold, "100", "200", "25"],
        0,
        difficulty=0.6,
        topics=("ota", "gain"),
        aliases=("50 V/V",),
    )


def _q_diff_gain() -> Question:
    gain = smallsignal.diff_pair_gain(3e-3, 4e3)
    gold = f"{gain:.0f}"
    scene = differential_pair_scene()
    visual = _visual(VisualType.SCHEMATIC,
                     "Resistively loaded differential pair", scene)
    return _mc(
        17,
        "The differential pair shown has gm = 3 mS per device and load "
        "resistors RD = 4 kOhm. What is the differential small-signal "
        "gain magnitude?",
        visual,
        [gold, "6", "24", "3"],
        0,
        difficulty=0.5,
        topics=("differential pair",),
    )


def _q_cmrr() -> Question:
    cmrr = smallsignal.diff_pair_cmrr(2e-3, 5e3, 100e3)
    cmrr_db = 20.0 * math.log10(cmrr)
    gold = f"{cmrr_db:.0f} dB"
    scene = differential_pair_scene("ISS RTAIL=100K")
    visual = _visual(VisualType.SCHEMATIC,
                     "Differential pair with non-ideal tail source", scene)
    return _mc(
        18,
        "With gm = 2 mS, RD = 5 kOhm and a tail-source output resistance "
        "of 100 kOhm as shown, estimate the CMRR of the pair in dB "
        "(single-ended output approximation CMRR = 2 gm Rtail).",
        visual,
        [gold, "26 dB", "40 dB", "80 dB"],
        0,
        difficulty=0.7,
        topics=("differential pair", "cmrr"),
        unit="dB",
        aliases=(f"{cmrr:.0f}",),
    )


def _q_vov() -> Question:
    params = MosParams(k=2e-3, v_th=0.5)
    op = bias_from_current(params, 1e-3)
    gold = f"{op.v_ov:.0f} V" if op.v_ov == int(op.v_ov) else f"{op.v_ov:.1f} V"
    scene = common_source_scene("K=2MA/V2", "ID=1MA")
    visual = _visual(VisualType.SCHEMATIC,
                     "Biased NMOS with annotated device parameters", scene)
    return _mc(
        19,
        "The NMOS shown conducts ID = 1 mA with k = uCox W/L = 2 mA/V^2 "
        "(square law, saturation). What is its overdrive voltage "
        "VOV = VGS - VTH?",
        visual,
        [gold, "0.5 V", "2.0 V", "0.25 V"],
        0,
        difficulty=0.5,
        topics=("operating point",),
        unit="V",
        aliases=(f"{op.v_ov:.2f} V", f"{op.v_ov:.1f}"),
    )


def _q_gm() -> Question:
    params = MosParams(k=2e-3, v_th=0.5)
    op = bias_from_current(params, 1e-3)
    gold = f"{op.gm * 1000:.0f} mS"
    scene = common_source_scene("ID=1MA", "K=2MA/V2")
    visual = _visual(VisualType.SCHEMATIC, "Biased NMOS device", scene)
    return _mc(
        20,
        "For the same bias (ID = 1 mA, k = 2 mA/V^2), compute the "
        "transconductance gm = 2 ID / VOV of the device shown.",
        visual,
        [gold, "1 mS", "4 mS", "0.5 mS"],
        0,
        difficulty=0.5,
        topics=("operating point", "transconductance"),
        unit="mS",
        aliases=(f"{op.gm:.3f} S",),
    )


def _q_region() -> Question:
    params = MosParams(k=1e-3, v_th=0.6)
    sat = smallsignal.in_saturation(params, v_gs=1.1, v_ds=0.3)
    assert sat is False  # vov = 0.5 > vds = 0.3 -> triode
    scene = common_source_scene("VGS=1.1", "VDS=0.3")
    visual = _visual(VisualType.SCHEMATIC,
                     "NMOS with annotated terminal voltages", scene)
    return _mc(
        21,
        "The NMOS shown has VTH = 0.6 V and is biased at VGS = 1.1 V, "
        "VDS = 0.3 V. In which region does it operate?",
        visual,
        ["Triode (linear)", "Saturation", "Cutoff", "Breakdown"],
        0,
        difficulty=0.4,
        topics=("operating point", "regions"),
        answer_kind=AnswerKind.TEXT,
        aliases=("triode", "linear region", "ohmic"),
    )


def _q_flash_comparators() -> Question:
    count = dataconv.flash_comparator_count(6)
    gold = str(count)
    scene = flash_adc_scene(3)
    visual = _visual(VisualType.SCHEMATIC,
                     "Flash ADC with resistor ladder and comparator bank",
                     scene)
    return _mc(
        22,
        "Scaling the flash ADC architecture shown to 6 bits, how many "
        "comparators are required?",
        visual,
        [gold, "64", "6", "32"],
        0,
        difficulty=0.4,
        topics=("adc", "flash"),
    )


def _q_sar_cycles() -> Question:
    cycles = dataconv.sar_cycles(10)
    scene = block_diagram_scene(
        [("sh", "S/H"), ("cmp", "CMP"), ("sar", "SAR"), ("dac", "DAC")],
        [("sh", "cmp"), ("cmp", "sar"), ("sar", "dac"), ("dac", "cmp")],
    )
    visual = _visual(VisualType.SCHEMATIC,
                     "SAR ADC loop: sample-hold, comparator, SAR logic, DAC",
                     scene)
    return _mc(
        23,
        "The successive-approximation ADC shown resolves one bit per "
        "clock. How many conversion cycles does a 10-bit conversion take?",
        visual,
        [str(cycles), "1024", "5", "20"],
        0,
        difficulty=0.35,
        topics=("adc", "sar"),
    )


def _q_sar_msb() -> Question:
    steps = dataconv.sar_conversion_steps(1.8, 3.2, 8)
    msb_kept = steps[0][2]
    assert msb_kept is True
    scene = flash_adc_scene(2)
    visual = _visual(VisualType.SCHEMATIC,
                     "Converter front-end with VREF = 3.2 V", scene)
    return _mc(
        24,
        "An 8-bit SAR ADC with VREF = 3.2 V samples VIN = 1.8 V. After "
        "the first comparison (DAC at VREF/2 = 1.6 V), what is the MSB?",
        visual,
        ["1", "0", "Depends on the LSB", "Metastable"],
        0,
        difficulty=0.45,
        topics=("adc", "sar"),
        answer_kind=AnswerKind.TEXT,
        aliases=("msb = 1", "kept"),
    )


def _q_pipeline_residue() -> Question:
    residue = dataconv.pipeline_residue(0.7, 1.0, stage_bits=1)
    gold = f"{residue:.1f} V"
    scene = block_diagram_scene(
        [("sh", "S/H"), ("sub", "SUB"), ("g", "X2"), ("out", "RES")],
        [("sh", "sub"), ("sub", "g"), ("g", "out")],
    )
    visual = _visual(VisualType.SCHEMATIC,
                     "1-bit pipeline stage with residue amplifier", scene)
    return _mc(
        25,
        "A 1-bit pipeline ADC stage (VREF = 1 V, residue = 2 VIN - D "
        "VREF) receives VIN = 0.7 V. The comparator trips at 0.5 V. What "
        "residue voltage does the stage pass on?",
        visual,
        [gold, "0.7 V", "1.4 V", "0.2 V"],
        0,
        difficulty=0.6,
        topics=("adc", "pipeline"),
        unit="V",
        aliases=(f"{residue:.2f} V", f"{residue:.1f}"),
    )


def _q_pipeline_gain() -> Question:
    gain = dataconv.pipeline_stage_gain(2)
    scene = block_diagram_scene(
        [("in", "VIN"), ("stage", "2B STAGE"), ("amp", "AMP"),
         ("out", "RES")],
        [("in", "stage"), ("stage", "amp"), ("amp", "out")],
    )
    visual = _visual(VisualType.SCHEMATIC,
                     "2-bit-per-stage pipeline residue amplifier", scene)
    return _mc(
        26,
        "For the 2-bit (non-redundant) pipeline stage shown, what "
        "interstage residue-amplifier gain is required?",
        visual,
        [str(gain), "2", "8", "1"],
        0,
        difficulty=0.5,
        topics=("adc", "pipeline"),
    )


def _q_lsb() -> Question:
    lsb_mv = dataconv.lsb_size(2.048, 10) * 1000.0
    gold = f"{lsb_mv:.0f} mV"
    scene = flash_adc_scene(2)
    visual = _visual(VisualType.SCHEMATIC,
                     "ADC reference ladder defining the LSB", scene)
    return _mc(
        27,
        "A 10-bit converter uses the 2.048 V reference ladder shown. How "
        "large is one LSB?",
        visual,
        [gold, "1 mV", "4 mV", "0.5 mV"],
        0,
        difficulty=0.35,
        topics=("adc", "quantisation"),
        unit="mV",
        aliases=(f"{lsb_mv / 1000:.3f} V",),
    )


def _q_relaxation() -> Question:
    period_us = feedback.relaxation_oscillator_period(10e3, 10e-9, 0.5) * 1e6
    gold = f"{period_us:.1f} us"
    scene = opamp_stage_scene("inverting", "R=10K", "C=10N")
    visual = _visual(VisualType.SCHEMATIC,
                     "Comparator-based RC relaxation oscillator", scene)
    return _mc(
        28,
        "The comparator-based relaxation oscillator shown uses R = 10 "
        "kOhm, C = 10 nF and hysteresis beta = 0.5 (T = 2RC ln((1 + "
        "beta)/(1 - beta))). What is its oscillation period?",
        visual,
        [gold, "100.0 us", "1.0 us", f"{period_us * 2:.1f} us"],
        0,
        difficulty=0.7,
        topics=("oscillators", "comparators"),
        unit="us",
        aliases=(f"{period_us:.0f} us",),
    )


def _q_diode_connected() -> Question:
    r_small = smallsignal.source_follower_rout(4e-3)
    gold = f"{r_small:.0f} Ohm"
    scene = common_source_scene("GM=4M", "DIODE")
    visual = _visual(VisualType.SCHEMATIC,
                     "Diode-connected MOS device (gate tied to drain)",
                     scene)
    return _mc(
        29,
        "What small-signal resistance does the diode-connected device "
        "shown (gm = 4 mS, neglect ro) present?",
        visual,
        [gold, "4000 Ohm", "1000 Ohm", "25 Ohm"],
        0,
        difficulty=0.5,
        topics=("small-signal",),
        unit="Ohm",
        aliases=("1/gm", "250",),
    )


def _q_degenerated_rout() -> Question:
    rout = smallsignal.degenerated_rout(2e-3, 50e3, 1e3)
    gold = f"{rout / 1e3:.0f} kOhm"
    scene = common_source_scene("GM=2M", "RO=50K", with_degeneration=True,
                                rs_label="RS=1K")
    visual = _visual(VisualType.SCHEMATIC,
                     "Current source with source degeneration", scene)
    return _mc(
        30,
        "Looking into the drain of the degenerated device shown (gm = 2 "
        "mS, ro = 50 kOhm, RS = 1 kOhm), what output resistance do you "
        "see (R = ro(1 + gm RS) + RS)?",
        visual,
        [gold, "50 kOhm", "100 kOhm", "201 kOhm"],
        0,
        difficulty=0.65,
        topics=("output resistance",),
        unit="kOhm",
        aliases=(f"{rout:.0f} Ohm",),
    )


def _q_wheatstone() -> Question:
    # Balanced when R1/R2 = R3/Rx -> Rx = R3 R2 / R1.
    rx = 3000.0 * 2000.0 / 1000.0
    gold = f"{rx / 1000:.0f} kOhm"
    scene = resistor_network_scene(
        [("R1", "1K"), ("R2", "2K"), ("R3", "3K"), ("RX", "?")],
        source_label="VB")
    visual = _visual(VisualType.SCHEMATIC, "Wheatstone bridge with unknown RX",
                     scene)
    return _mc(
        31,
        "The Wheatstone bridge shown has R1 = 1 kOhm, R2 = 2 kOhm and R3 "
        "= 3 kOhm. What value of RX balances the bridge (zero detector "
        "current)?",
        visual,
        [gold, "1.5 kOhm", "2 kOhm", "0.67 kOhm"],
        0,
        difficulty=0.5,
        topics=("bridges", "dc analysis"),
        unit="kOhm",
        aliases=("6000 Ohm", "6k"),
    )


def _q_rc_corner() -> Question:
    f_c = rc_lowpass_corner_hz(1e3, 159e-9)
    gold = f"{f_c / 1e3:.1f} kHz"
    scene = resistor_network_scene([("R", "1K"), ("C", "159N")],
                                   source_label="VIN")
    visual = _visual(VisualType.SCHEMATIC, "First-order RC low-pass filter",
                     scene)
    return _mc(
        32,
        "What is the -3 dB corner frequency of the RC low-pass shown "
        "(R = 1 kOhm, C = 159 nF)?",
        visual,
        [gold, "6.3 kHz", "159.0 kHz", "0.159 kHz"],
        0,
        difficulty=0.4,
        topics=("filters", "poles"),
        unit="kHz",
        aliases=(f"{f_c:.0f} Hz", "1 kHz"),
    )


def _q_bode_gbw() -> Question:
    gbw = gbw_from_dc_gain(1e4, 100.0)
    gold = f"{gbw / 1e6:.0f} MHz"
    scene = bode_plot_scene([2.0], [0.0, -20.0], start_db=80.0)
    visual = _visual(VisualType.CURVE,
                     "Single-pole magnitude response, 80 dB DC gain", scene)
    return _mc(
        33,
        "The Bode magnitude plot shown has 80 dB DC gain and a single "
        "pole at 100 Hz. At what frequency does the gain cross unity "
        "(the gain-bandwidth product)?",
        visual,
        [gold, "100 MHz", "0.1 MHz", "10 MHz"],
        0,
        difficulty=0.55,
        topics=("bode", "gbw"),
        unit="MHz",
        aliases=(f"{gbw:.0f} Hz", "1e6 Hz"),
    )


def _q_phase_margin() -> Question:
    tf = TransferFunction.from_poles_zeros(1e3, [1e4, 1e7])
    pm = tf.phase_margin_deg()
    gold = f"{pm:.0f} degrees"
    scene = bode_plot_scene([2.0, 5.0], [0.0, -20.0, -40.0], start_db=60.0)
    visual = _visual(VisualType.CURVE,
                     "Two-pole open-loop magnitude response", scene)
    return _mc(
        34,
        "An open loop with DC gain 1000 has poles at 10 krad/s and 10 "
        "Mrad/s as plotted. Estimate the phase margin in unity feedback.",
        visual,
        [gold, "90 degrees", "20 degrees", "180 degrees"],
        0,
        difficulty=0.85,
        topics=("stability", "phase margin"),
        unit="degrees",
        aliases=(f"{pm:.1f}", f"about {pm:.0f} deg"),
    )


def _q_bode_slope() -> Question:
    scene = bode_plot_scene([2.0, 4.0], [0.0, -20.0, -40.0], start_db=60.0)
    visual = _visual(VisualType.CURVE,
                     "Piecewise Bode asymptote with two corners", scene)
    return _mc(
        35,
        "Between the two pole corners marked on the Bode plot shown, what "
        "is the slope of the magnitude asymptote?",
        visual,
        ["-20 dB/decade", "-40 dB/decade", "0 dB/decade", "-6 dB/decade"],
        0,
        difficulty=0.4,
        topics=("bode",),
        answer_kind=AnswerKind.TEXT,
        aliases=("-20 db per decade", "-6 dB/octave"),
    )


def _q_step_response() -> Question:
    scene = step_response_scene(1.0, overshoot_percent=30.0)
    visual = _visual(VisualType.CURVE,
                     "Step response with visible overshoot and ringing",
                     scene)
    return _mc(
        36,
        "The closed-loop step response shown overshoots its final value "
        "and rings before settling. Which description of the system is "
        "most consistent with this behaviour?",
        visual,
        ["Underdamped with phase margin well below 60 degrees",
         "Overdamped with a single real pole",
         "Critically damped",
         "Unstable (growing oscillation)"],
        0,
        difficulty=0.5,
        topics=("stability", "transient"),
        answer_kind=AnswerKind.TEXT,
        aliases=("underdamped",),
    )


def _q_topology() -> Question:
    scene = block_diagram_scene(
        [("src", "VIN"), ("amp", "A"), ("load", "VOUT"), ("fb", "BETA")],
        [("src", "amp"), ("amp", "load"), ("load", "fb"), ("fb", "src")],
    )
    visual = _visual(VisualType.DIAGRAM,
                     "Feedback network sensing output voltage, mixing in "
                     "series at the input", scene)
    return _mc(
        37,
        "The feedback amplifier shown senses the output voltage and feeds "
        "a voltage back in series with the input. Which topology is this, "
        "and what does it do to the input impedance?",
        visual,
        ["Series-shunt; input impedance increases",
         "Shunt-series; input impedance increases",
         "Series-series; input impedance decreases",
         "Shunt-shunt; input impedance increases"],
        0,
        difficulty=0.6,
        topics=("feedback", "topologies"),
        answer_kind=AnswerKind.TEXT,
        aliases=("series-shunt", "voltage-voltage feedback"),
    )


def _q_loop_gain() -> Question:
    loop = LoopAnalysis(open_loop_gain=1000.0, feedback_factor=0.1)
    gold = f"{loop.closed_loop_gain:.2f}"
    scene = block_diagram_scene(
        [("sum", "+/-"), ("amp", "A=1000"), ("out", "VOUT"),
         ("beta", "B=0.1")],
        [("sum", "amp"), ("amp", "out"), ("out", "beta"), ("beta", "sum")],
    )
    visual = _visual(VisualType.DIAGRAM,
                     "Negative-feedback loop with labelled A and beta",
                     scene)
    return _mc(
        38,
        "For the loop shown with forward gain A = 1000 and feedback "
        "factor beta = 0.1, compute the closed-loop gain A/(1 + A beta).",
        visual,
        [gold, "10.00", "100.00", "9.00"],
        0,
        difficulty=0.5,
        topics=("feedback", "loop gain"),
    )


def _q_bandwidth_extension() -> Question:
    loop = LoopAnalysis(open_loop_gain=100.0, feedback_factor=0.1)
    bw = loop.bandwidth_extension(10e3) / 1e3
    gold = f"{bw:.0f} kHz"
    scene = (opamp_stage_scene("noninverting", "RG=1K", "RF=9K")
             + translate(bode_plot_scene([2.0], [0.0, -20.0], start_db=40.0),
                         0, 40))
    visual = _visual(VisualType.MIXED,
                     "Closed-loop amplifier and its open-loop Bode plot",
                     scene)
    return _mc(
        39,
        "A single-pole amplifier with open-loop gain 100 and 10 kHz "
        "bandwidth is placed in the feedback configuration shown (beta = "
        "0.1). What closed-loop bandwidth results?",
        visual,
        [gold, "10 kHz", "1000 kHz", "55 kHz"],
        0,
        difficulty=0.6,
        topics=("feedback", "bandwidth"),
        unit="kHz",
        aliases=(f"{bw * 1000:.0f} Hz",),
    )


def _q_gain_error() -> Question:
    loop = LoopAnalysis(open_loop_gain=1000.0, feedback_factor=0.01)
    error = loop.gain_error_percent()
    gold = f"{error:.1f}%"
    scene = (block_diagram_scene(
        [("sum", "+/-"), ("amp", "A=1000"), ("beta", "B=0.01")],
        [("sum", "amp"), ("amp", "beta"), ("beta", "sum")])
        + translate(equation_scene(["ERR = 1/(1+AB)"]), 0, 230))
    visual = _visual(VisualType.MIXED,
                     "Feedback loop and its gain-error formula", scene)
    return _mc(
        40,
        "The loop shown targets an ideal gain of 1/beta = 100 but has "
        "only A = 1000 of forward gain. By what percentage does the "
        "closed-loop gain fall short of ideal?",
        visual,
        [gold, "1.0%", "0.1%", "50.0%"],
        0,
        difficulty=0.7,
        topics=("feedback", "gain error"),
        aliases=(f"{error:.2f}%", "about 9 percent"),
    )


def _q_sqnr() -> Question:
    sqnr = dataconv.ideal_sqnr_db(12)
    gold = f"{sqnr:.2f} dB"
    scene = (flash_adc_scene(2)
             + translate(equation_scene(["SNR = 6.02N + 1.76 DB"]), 0, 60))
    visual = _visual(VisualType.MIXED,
                     "ADC with the quantisation-SNR formula annotated",
                     scene)
    return _mc(
        41,
        "Using the quantisation-noise relation annotated in the figure, "
        "what is the ideal SNR of a 12-bit ADC driven by a full-scale "
        "sine wave?",
        visual,
        [gold, "72.00 dB", "96.32 dB", "61.96 dB"],
        0,
        difficulty=0.45,
        topics=("adc", "sqnr"),
        unit="dB",
        aliases=("74 dB", f"{sqnr:.1f}",),
    )


def _q_pole_count() -> Question:
    tf = TransferFunction.from_poles_zeros(10.0, [1e3, 1e5], zeros=[1e4])
    poles = len(tf.poles())
    zeros = len(tf.zeros())
    assert (poles, zeros) == (2, 1)
    scene = (equation_scene(["H(S) = 10(1+S/1E4)",
                             "OVER (1+S/1E3)(1+S/1E5)"])
             + translate(bode_plot_scene([2.0, 4.0, 5.0],
                                         [0.0, -20.0, 0.0, -20.0],
                                         start_db=20.0), 0, 110))
    visual = _visual(VisualType.MIXED,
                     "Symbolic transfer function with its Bode sketch",
                     scene)
    return _mc(
        42,
        "How many poles and how many finite zeros does the transfer "
        "function shown have?",
        visual,
        ["2 poles, 1 zero", "1 pole, 2 zeros", "2 poles, 0 zeros",
         "3 poles, 1 zero"],
        0,
        difficulty=0.4,
        topics=("transfer functions",),
        answer_kind=AnswerKind.TEXT,
        aliases=("two poles and one zero",),
    )


def _q_dnl() -> Question:
    levels = [0.0, 1.0, 2.5, 3.0, 4.0]
    dnl = dataconv.dnl_from_levels(levels)
    worst = max(abs(d) for d in dnl)
    gold = f"{worst:.1f} LSB"
    scene = table_scene(
        [["CODE", "LEVEL (V)"]] + [[str(i), f"{v:.1f}"]
                                   for i, v in enumerate(levels)])
    visual = _visual(VisualType.TABLE, "Measured converter transition levels",
                     scene)
    return _mc(
        43,
        "The table shows measured transition levels of a converter whose "
        "ideal step is 1 V. What is the worst-case |DNL| in LSB?",
        visual,
        [gold, "0.1 LSB", "1.0 LSB", "0.25 LSB"],
        0,
        difficulty=0.65,
        topics=("adc", "dnl"),
        unit="LSB",
        aliases=(f"{worst:.2f}",),
    )


def _q_symbolic_dc_gain() -> Question:
    tf = TransferFunction.from_poles_zeros(100.0, [1e3])
    gain_db = tf.dc_gain_db()
    gold = f"{gain_db:.0f} dB"
    scene = equation_scene(["H(S) = 100 / (1 + S/1000)"])
    visual = _visual(VisualType.EQUATION, "First-order transfer function",
                     scene)
    return _mc(
        44,
        "What is the DC gain, in dB, of the transfer function shown?",
        visual,
        [gold, "100 dB", "20 dB", "60 dB"],
        0,
        difficulty=0.35,
        topics=("transfer functions", "bode"),
        unit="dB",
        aliases=("100 V/V", f"{gain_db:.1f} dB"),
    )


_BUILDERS = [
    _q_ladder_voltage, _q_ladder_current, _q_equivalent_resistance,
    _q_divider, _q_power, _q_inverting, _q_noninverting, _q_finite_gain,
    _q_summing, _q_inamp, _q_cs_gain, _q_cs_degenerated, _q_follower,
    _q_common_gate, _q_cascode_rout, _q_ota_gain, _q_diff_gain, _q_cmrr,
    _q_vov, _q_gm, _q_region, _q_flash_comparators, _q_sar_cycles,
    _q_sar_msb, _q_pipeline_residue, _q_pipeline_gain, _q_lsb,
    _q_relaxation, _q_diode_connected, _q_degenerated_rout, _q_wheatstone,
    _q_rc_corner, _q_bode_gbw, _q_phase_margin, _q_bode_slope,
    _q_step_response, _q_topology, _q_loop_gain, _q_bandwidth_extension,
    _q_gain_error, _q_sqnr, _q_pole_count, _q_dnl, _q_symbolic_dc_gain,
]


#: Worked solutions, interpolating the computed gold as ``{gold}``.
_EXPLANATIONS = {
    "ana-01": "Fold the ladder: R4||RL = 1.137k, add R3 (3.337k), "
              "parallel with R2 (1.327k); the divider from 5 V through R1 "
              "puts 2.852 V at n1, and the inner divider leaves {gold} "
              "across RL.",
    "ana-02": "With 0.97 V across the 4.7 kOhm load, Ohms law gives "
              "I = V/R = {gold}.",
    "ana-03": "R1 + R2 = 3 kOhm in parallel with 6 kOhm: "
              "(3x6)/(3+6) = {gold}.",
    "ana-04": "Vout = 12 x R2/(R1 + R2) = 12 x 3300/10100 = {gold}.",
    "ana-05": "The series current is 10/500 = 20 mA, so "
              "P = I^2 R2 = 0.02^2 x 400 = {gold}.",
    "ana-06": "Virtual ground fixes the input current at VIN/RIN, all of "
              "which flows through RF: gain = -RF/RIN = {gold}.",
    "ana-07": "Non-inverting gain is 1 + RF/RG = 1 + 9 = {gold}.",
    "ana-08": "Loop gain is A*beta = 1000/11; the ideal -10 shrinks by "
              "1/(1 + 11/1000), giving {gold}.",
    "ana-09": "VOUT = -RF (V1/R1 + V2/R2) = -20k (0.1m + 0.1m) = {gold}.",
    "ana-10": "Gain = (1 + 2R1/RG)(R3/R2) = (1 + 20) x 1 = {gold}.",
    "ana-11": "A = -gm (RD || ro) = -2m x (10k || 50k) = -2m x 8.33k "
              "= {gold}.",
    "ana-12": "Degeneration divides the gain by 1 + gm RS = 2: "
              "-20/2 = {gold}.",
    "ana-13": "A = gm RS / (1 + gm RS) = 10/11 = {gold}.",
    "ana-14": "Common gate is non-inverting with A = gm RD = 4m x 5k "
              "= {gold}.",
    "ana-15": "Rout = gm2 ro2 ro1 + ro2 + ro1 = 2m x 50k x 50k + 100k "
              "= {gold}.",
    "ana-16": "A = gm (ron || rop) = 1m x 50k = {gold}.",
    "ana-17": "Differential gain magnitude is gm RD = 3m x 4k = {gold}.",
    "ana-18": "CMRR = 2 gm Rtail = 2 x 2m x 100k = 400 = 52 dB.",
    "ana-19": "Id = k Vov^2 / 2 gives Vov = sqrt(2Id/k) = sqrt(1) "
              "= {gold}.",
    "ana-20": "gm = 2 Id / Vov = 2 x 1 mA / 1 V = {gold}.",
    "ana-21": "Vov = 1.1 - 0.6 = 0.5 V exceeds VDS = 0.3 V, so the "
              "channel is not pinched off: triode.",
    "ana-22": "A flash converter needs 2^N - 1 comparators: 2^6 - 1 "
              "= {gold}.",
    "ana-23": "SAR resolves one bit per cycle, so 10 bits take {gold} "
              "cycles.",
    "ana-24": "VIN = 1.8 V exceeds the VREF/2 = 1.6 V trial, so the MSB "
              "is kept at 1.",
    "ana-25": "The comparator trips (0.7 > 0.5), so residue = 2 x 0.7 - "
              "1.0 = {gold}.",
    "ana-26": "A B-bit non-redundant stage amplifies its residue by 2^B "
              "= {gold}.",
    "ana-27": "LSB = VREF / 2^N = 2.048 / 1024 = {gold}.",
    "ana-28": "T = 2RC ln((1+b)/(1-b)) = 2 x 10k x 10n x ln 3 = {gold}.",
    "ana-29": "A diode-connected device looks like 1/gm = 1/4 mS "
              "= {gold}.",
    "ana-30": "Rout = ro(1 + gm RS) + RS = 50k x 3 + 1k = {gold}.",
    "ana-31": "Balance requires R1/R2 = R3/RX, so RX = R3 R2 / R1 "
              "= 3k x 2k / 1k = {gold}.",
    "ana-32": "fc = 1/(2 pi RC) = 1/(2 pi x 1k x 159n) = {gold}.",
    "ana-33": "GBW = A0 x fp = 10^4 x 100 Hz = {gold}; a single pole "
              "rolls off at -20 dB/dec until unity.",
    "ana-34": "Unity gain lands near 10 Mrad/s where the second pole "
              "contributes ~45 degrees: PM = 180 - 90 - 45 ~ {gold}.",
    "ana-35": "One pole above its corner contributes -20 dB per decade "
              "until the next corner doubles the slope.",
    "ana-36": "Overshoot and ringing require complex poles, i.e. an "
              "underdamped closed loop with modest phase margin.",
    "ana-37": "Sensing the output voltage is shunt sampling at the "
              "output, series mixing at the input: series-shunt, which "
              "raises input impedance.",
    "ana-38": "A/(1 + A beta) = 1000/101 = {gold}.",
    "ana-39": "Closed-loop bandwidth stretches by 1 + A beta = 11: "
              "10 kHz x 11 = {gold}.",
    "ana-40": "Error = 1/(1 + A beta) = 1/11 = 9.1% short of the ideal "
              "100.",
    "ana-41": "SNR = 6.02 x 12 + 1.76 = {gold}.",
    "ana-42": "The denominator is second order and the numerator first "
              "order: two poles and one finite zero.",
    "ana-43": "The widest step is 1.5 V against a 1 V ideal: "
              "DNL = +0.5 LSB, which is also the worst magnitude.",
    "ana-44": "H(0) = 100, and 20 log10(100) = {gold}.",
}


def generate_analog_questions() -> List[Question]:
    """All 44 Analog Design questions, in stable order."""
    import dataclasses

    questions = [builder() for builder in _BUILDERS]
    if len(questions) != 44:
        raise AssertionError(f"expected 44 analog questions, got {len(questions)}")
    questions = [
        dataclasses.replace(
            q, explanation=_EXPLANATIONS[q.qid].replace("{gold}",
                                                        q.gold_text))
        for q in questions
    ]
    return questions


#: Version of this family's question generators.  Folded into the
#: content-addressed build-cache fingerprint (see
#: :func:`repro.core.databuild.generator_fingerprint`): bump whenever a
#: builder's output changes so stale cached shards are invalidated.
GENERATOR_VERSION = "analog-1"


def generate_analog_questions_scaled(
    seed: int,
    shard_index: int,
    shard_size: int,
    total: Optional[int] = None,
) -> List[Question]:
    """Analog Design members of one shard of a seeded scaled build.

    Delegates to :func:`repro.core.databuild.family_scaled_questions`:
    shard ``shard_index`` of the interleaved global sequence is built
    (through the shard build cache) and this family's members are
    returned in global order.  ``total`` clips the final shard of an
    ``n``-question build.
    """
    from repro.core.databuild import family_scaled_questions
    from repro.core.question import Category

    return family_scaled_questions(
        Category.ANALOG, seed, shard_index, shard_size, total=total)
