"""Judge substrate: the hybrid auto/manual answer-equivalence evaluation."""

from repro.judge.chaos import FaultInjectingJudge
from repro.judge.equivalence import (
    answers_equivalent,
    boolean_equivalent,
    numeric_equivalent,
    text_equivalent,
)
from repro.judge.llm_judge import AutoJudge, HybridJudge, Verdict
from repro.judge.manual import ManualCheckRegistry
from repro.judge.normalize import (
    extract_option_letter,
    normalize_text,
    parse_number_with_unit,
)

__all__ = [
    "AutoJudge",
    "FaultInjectingJudge",
    "HybridJudge",
    "ManualCheckRegistry",
    "Verdict",
    "answers_equivalent",
    "boolean_equivalent",
    "numeric_equivalent",
    "text_equivalent",
    "extract_option_letter",
    "normalize_text",
    "parse_number_with_unit",
]
