"""Judge-fault injection for chaos testing.

A real deployment's judge is itself a remote LLM call (the paper
prompts GPT-4 for binary verdicts), so it fails the same ways the
evaluated model does: rate limits, timeouts, content filters.
:class:`FaultInjectingJudge` wraps any judge with a scripted fault
sequence per question id, raising into the runner's existing
retry/quarantine machinery — a transient judge fault is retried with
backoff, a permanent one quarantines the question.  Once a question's
script is exhausted the wrapped judge answers normally, so a chaos run
converges to the fault-free verdicts.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Mapping, Sequence

from repro.core.question import Question
from repro.judge.llm_judge import Verdict


class FaultInjectingJudge:
    """Wrap a judge; raise scripted exceptions before delegating.

    ``script`` maps a qid to a list of exceptions consumed one per
    :meth:`judge` call for that question (mirroring
    :class:`~repro.core.faults.ScriptedFaults`).  Thread-safe: the
    runner judges concurrently from its worker pool.

    Duck-typed drop-in for :class:`~repro.judge.llm_judge.HybridJudge`
    anywhere a harness accepts a judge.
    """

    def __init__(self, inner: object,
                 script: Mapping[str, Sequence[Exception]]):
        self.inner = inner
        self._lock = threading.Lock()
        self._pending: Dict[str, List[Exception]] = {
            qid: list(faults) for qid, faults in script.items()
        }

    def judge(self, question: Question, response: str) -> Verdict:
        """Raise the next scripted fault for this qid, else delegate."""
        with self._lock:
            pending = self._pending.get(question.qid)
            if pending:
                raise pending.pop(0)
        return self.inner.judge(question, response)

    def exhausted(self) -> bool:
        """True once every scripted judge fault has been raised."""
        with self._lock:
            return not any(self._pending.values())
