"""Answer normalisation: units, numbers, option letters, text canon.

The auto-judge compares a free-form model response against a gold answer;
before comparing, both sides are normalised: numbers are parsed with SI /
engineering unit prefixes, option letters are extracted from phrasings like
"B) ..." or "the answer is (b)", and text is case/punctuation-folded.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Optional, Tuple

_SI_PREFIXES = {
    "t": 1e12, "g": 1e9, "meg": 1e6, "m": 1e-3, "k": 1e3,
    "u": 1e-6, "µ": 1e-6, "n": 1e-9, "p": 1e-12, "f": 1e-15,
}

#: Base units (lower-case) recognised after an optional SI prefix.
_BASE_UNITS = {
    "v", "a", "w", "s", "hz", "ohm", "ohms", "f", "b", "bit", "bits",
    "byte", "bytes", "m", "db", "lsb", "cycles", "cycle", "ns", "us",
    "ms", "nm", "um", "mm", "percent", "%", "degrees", "deg", "min",
    "minutes", "seconds", "sec", "mib", "mb", "kib", "kb", "gib", "gb",
}

# time/length units that already embed a prefix; map to (scale, base)
_COMPOUND_UNITS = {
    "ns": (1e-9, "s"), "us": (1e-6, "s"), "ms": (1e-3, "s"),
    "nm": (1e-9, "m"), "um": (1e-6, "m"), "mm": (1e-3, "m"),
    "khz": (1e3, "hz"), "mhz": (1e6, "hz"), "ghz": (1e9, "hz"),
    "kohm": (1e3, "ohm"), "mohm": (1e6, "ohm"),
    "pf": (1e-12, "f"), "nf": (1e-9, "f"), "uf": (1e-6, "f"),
    "mv": (1e-3, "v"), "uv": (1e-6, "v"), "kv": (1e3, "v"),
    "ma": (1e-3, "a"), "ua": (1e-6, "a"), "na": (1e-9, "a"),
    "mw": (1e-3, "w"), "uw": (1e-6, "w"), "kw": (1e3, "w"),
    "kib": (2 ** 10, "b"), "mib": (2 ** 20, "b"), "gib": (2 ** 30, "b"),
    "kb": (1e3, "b"), "mb": (1e6, "b"), "gb": (1e9, "b"),
    "min": (60.0, "s"), "minutes": (60.0, "s"), "minute": (60.0, "s"),
    "sec": (1.0, "s"), "seconds": (1.0, "s"), "second": (1.0, "s"),
    "ms2": (1e-3, "s"),
}

_NUMBER_RE = re.compile(
    r"[-+]?(?:\d+\.?\d*|\.\d+)(?:[eE][-+]?\d+)?")

_LETTER_PATTERNS = [
    re.compile(r"^\s*\(?([a-dA-D])\)?\s*[).:\-]?\s*$"),
    re.compile(r"^\s*\(?([a-dA-D])\)?\s*[).:\-]\s+\S"),
    re.compile(r"(?:answer|option|choice)\s*:?\s*(?:is\s+)?\(?([a-dA-D])\)?"
               r"(?![\w'])",
               re.IGNORECASE),
]


_LEADIN_RE = re.compile(
    r"^(?:the\s+answer\s+is|the\s+answer:|answer:|answer\s+is|it\s+is|"
    r"it's|this\s+is|result:?|approximately|about|roughly)\s+",
    re.IGNORECASE)


@lru_cache(maxsize=65536)
def normalize_text(text: str) -> str:
    """Case-fold, strip punctuation and collapse whitespace.

    Single quotes are preserved: they are boolean complements in this
    domain (``S'A`` and ``SA`` are different functions).

    Memoised: the judge normalises every response against the gold text
    plus each alias, and large sweeps repeat the same surface forms
    (choice letters, shared aliases, variant-derived golds) millions of
    times — the stage profiler showed this pure function dominating the
    ``eval`` stage's judge share.  The function is deterministic over an
    immutable input, so caching cannot change any verdict.
    """
    lowered = text.strip().lower()
    lowered = re.sub(r"[\"`*_]", "", lowered)
    lowered = re.sub(r"[.,;:!?]+(\s|$)", r"\1", lowered)
    lowered = re.sub(r"\s+", " ", lowered)
    return lowered.strip()


def strip_leadin(text: str) -> str:
    """Remove answer lead-ins ("the answer is ...", "approximately ...")."""
    previous = None
    stripped = text.strip()
    while previous != stripped:
        previous = stripped
        stripped = _LEADIN_RE.sub("", stripped).strip()
    return stripped


def contains_phrase(haystack: str, phrase: str) -> bool:
    """Whole-phrase containment with digit/dot-aware boundaries.

    Plain substring search wrongly matches "5 ns" inside "2.5 ns"; here
    the phrase must not be adjacent to a word character or a dot/digit on
    either side.
    """
    if not phrase:
        return False
    pattern = (r"(?<![\w.])" + re.escape(phrase) + r"(?![\w.])")
    return re.search(pattern, haystack) is not None


def extract_option_letter(text: str) -> Optional[str]:
    """The MC option letter a response designates, or ``None``."""
    stripped = text.strip()
    for pattern in _LETTER_PATTERNS:
        match = pattern.search(stripped)
        if match:
            return match.group(1).upper()
    return None


def parse_number_with_unit(text: str) -> Optional[Tuple[float, str]]:
    """Parse a value like ``4.7 kOhm`` or ``-3 dB`` into (SI value, base unit).

    Returns ``None`` if the text contains no number.  The unit may be
    empty.  Percent is kept as its own unit (no /100 folding) so "50%"
    matches "50 percent" but not "0.5".
    """
    cleaned = text.replace(",", "")
    match = _NUMBER_RE.search(cleaned)
    if not match:
        return None
    value = float(match.group(0))
    rest = cleaned[match.end():].strip().lstrip("-").strip()
    unit_match = re.match(r"([a-zA-Zµ%/^0-9]+)", rest)
    unit_raw = unit_match.group(1) if unit_match else ""
    unit = unit_raw.strip().rstrip(".,;")
    lowered = unit.lower()
    if not lowered:
        return value, ""
    if lowered in ("%", "percent"):
        return value, "%"
    if lowered in _COMPOUND_UNITS:
        scale, base = _COMPOUND_UNITS[lowered]
        return value * scale, base
    if lowered in _BASE_UNITS:
        return value, _canonical_base(lowered)
    # try SI prefix + base unit
    for prefix in sorted(_SI_PREFIXES, key=len, reverse=True):
        if lowered.startswith(prefix):
            base = lowered[len(prefix):]
            if base in _BASE_UNITS and base:
                return value * _SI_PREFIXES[prefix], _canonical_base(base)
    # unknown unit: keep text so the caller can compare verbatim
    return value, lowered


def _canonical_base(unit: str) -> str:
    aliases = {
        "ohms": "ohm", "bits": "b", "bit": "b", "bytes": "b", "byte": "b",
        "deg": "degrees", "cycles": "cycle",
    }
    return aliases.get(unit, unit)


def numbers_in(text: str) -> list:
    """All numbers appearing in the text."""
    return [float(m) for m in _NUMBER_RE.findall(text.replace(",", ""))]


def strip_units(text: str) -> str:
    """Remove a trailing unit annotation, keeping the numeric core."""
    parsed = parse_number_with_unit(text)
    if parsed is None:
        return text.strip()
    return repr(parsed[0])
