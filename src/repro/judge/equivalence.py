"""Answer-equivalence decision procedures, one per :class:`AnswerKind`."""

from __future__ import annotations

import math
from typing import Optional

from repro.core.question import AnswerKind, AnswerSpec, Question
from repro.digital.expr import equivalent_text
from repro.judge.normalize import (
    contains_phrase,
    extract_option_letter,
    normalize_text,
    parse_number_with_unit,
    strip_leadin,
)


def numeric_equivalent(gold: str, response: str, rel_tol: float = 0.02,
                       unit_hint: str = "") -> bool:
    """Compare numeric answers with unit folding and relative tolerance.

    When the response omits its unit, the gold's unit (or the question's
    ``unit_hint``) is assumed — matching how human graders read "2.5"
    against a gold of "2.5 ns".
    """
    gold_parsed = parse_number_with_unit(gold)
    resp_parsed = parse_number_with_unit(response)
    if gold_parsed is None or resp_parsed is None:
        return False
    if gold_parsed[1] == "" and unit_hint:
        # the gold's surface form omits its unit; graders read it with the
        # question's declared unit attached
        hinted = parse_number_with_unit(f"{gold} {unit_hint}")
        if hinted is not None:
            gold_parsed = hinted
    gold_value, gold_unit = gold_parsed
    resp_value, resp_unit = resp_parsed
    if not resp_unit and (gold_unit or unit_hint):
        # unitless response: accept it against the gold's magnitude both
        # in SI terms and at the gold's displayed scale
        gold_display = _displayed_value(gold)
        if _close(resp_value, gold_display, rel_tol):
            return True
    if gold_unit and resp_unit and gold_unit != resp_unit:
        return False
    return _close(resp_value, gold_value, rel_tol)


def _displayed_value(text: str) -> float:
    from repro.judge.normalize import numbers_in

    numbers = numbers_in(text)
    return numbers[0] if numbers else float("nan")


def _close(a: float, b: float, rel_tol: float) -> bool:
    if math.isnan(a) or math.isnan(b):
        return False
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=1e-12)


def text_equivalent(gold: str, response: str,
                    aliases: tuple = ()) -> bool:
    """Normalised-text match against the gold or any alias.

    A containment rule accepts verbose responses ("it is a half adder")
    when the normalised gold appears as a whole phrase, provided the gold
    is long enough to be unambiguous.
    """
    norm_response = normalize_text(response)
    stripped_response = normalize_text(strip_leadin(response))
    candidates = [gold, *aliases]
    for candidate in candidates:
        norm_gold = normalize_text(candidate)
        if not norm_gold:
            continue
        if norm_gold in (norm_response, stripped_response):
            return True
        if len(norm_gold) >= 4 and contains_phrase(norm_response, norm_gold):
            return True
    return False


def boolean_equivalent(gold: str, response: str) -> bool:
    """Boolean-expression equivalence via exhaustive truth tables.

    Falls back to normalised text comparison when either side fails to
    parse (e.g. prose answers).
    """
    # strip leading "Q+ =" style prefixes handled by the parser itself
    if equivalent_text(gold, response):
        return True
    return normalize_text(gold) == normalize_text(response)


def choice_equivalent(question: Question, response: str) -> bool:
    """Does an MC response designate the correct option?

    Accepts the option letter in common phrasings, the full option text,
    or any registered alias of the gold answer.
    """
    letter = extract_option_letter(response)
    if letter is not None:
        # bare letters always designate options; benchmark questions whose
        # option *texts* are single letters align text with position
        return letter == question.gold_letter
    gold_text = question.choices[question.correct_choice]
    if text_equivalent(gold_text, response, question.answer.aliases):
        # guard: the response must not equally match a distractor
        for index, choice in enumerate(question.choices):
            if index != question.correct_choice and \
                    normalize_text(choice) == normalize_text(response):
                return False
        return True
    # numeric options ("4.4" vs "4.40 ns") compare numerically
    spec = question.answer
    if spec.kind in (AnswerKind.NUMERIC, AnswerKind.CHOICE):
        if numeric_equivalent(gold_text, response, spec.rel_tol, spec.unit):
            for index, choice in enumerate(question.choices):
                if index != question.correct_choice and numeric_equivalent(
                        choice, response, spec.rel_tol, spec.unit):
                    return False  # ambiguous between options
            return True
    if spec.kind is AnswerKind.BOOLEAN_EXPR:
        return boolean_equivalent(gold_text, response)
    return False


def answers_equivalent(question: Question, response: str) -> bool:
    """Top-level equivalence: dispatch on the question's answer kind."""
    if not response or not response.strip():
        return False
    spec: AnswerSpec = question.answer
    if question.is_multiple_choice:
        return choice_equivalent(question, response)
    if response == spec.text and normalize_text(response):
        # reflexive fast path: a non-MC response that *is* the gold
        # surface form verbatim is equivalent by definition — every
        # kind's decision procedure below answers True for gold-vs-gold
        # — so skip the parse/normalise pipeline entirely.  (MC stays
        # on the full path: its distractor-ambiguity guard can veto.)
        return True
    gold = spec.text
    if spec.kind is AnswerKind.NUMERIC:
        if numeric_equivalent(gold, response, spec.rel_tol, spec.unit):
            return True
        return text_equivalent(gold, response, spec.aliases)
    if spec.kind is AnswerKind.BOOLEAN_EXPR:
        if boolean_equivalent(gold, response):
            return True
        return text_equivalent(gold, response, spec.aliases)
    return text_equivalent(gold, response, spec.aliases)
