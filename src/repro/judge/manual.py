"""Manual-check registry: annotator verdict overrides keyed by question.

The paper's evaluation escalates certain (question, response) pairs to
human annotators.  The registry stores those verdicts; exact responses
take precedence over per-question blanket rules.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.judge.normalize import normalize_text


class ManualCheckRegistry:
    """Verdict overrides recorded by annotators."""

    def __init__(self) -> None:
        self._exact: Dict[Tuple[str, str], bool] = {}
        self._rules: Dict[str, Callable[[str], Optional[bool]]] = {}

    def record(self, qid: str, response: str, correct: bool) -> None:
        """Record a verdict for one exact (question, response) pair."""
        self._exact[(qid, normalize_text(response))] = correct

    def record_rule(self, qid: str,
                    rule: Callable[[str], Optional[bool]]) -> None:
        """Register a per-question rule: response -> verdict or ``None``."""
        self._rules[qid] = rule

    def lookup(self, qid: str, response: str) -> Optional[bool]:
        """The recorded verdict, if any."""
        key = (qid, normalize_text(response))
        if key in self._exact:
            return self._exact[key]
        rule = self._rules.get(qid)
        if rule is not None:
            return rule(response)
        return None

    def __len__(self) -> int:
        return len(self._exact) + len(self._rules)
