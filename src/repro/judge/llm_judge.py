"""The hybrid evaluation flow: auto-judge plus manual-check escalation.

The paper's evaluation (Section IV) prompts GPT-4 with a system prompt to
return a binary equivalence verdict, and escalates questions that need the
original prompt/visual context to human annotators.  Offline, the
"GPT-4 judge" is :class:`AutoJudge`, whose decision procedure is the
deterministic equivalence engine in :mod:`repro.judge.equivalence`; the
manual path is an explicit registry of per-question verdict overrides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.prompts import JUDGE_SYSTEM_PROMPT, judge_prompt
from repro.core.question import Question
from repro.judge.equivalence import answers_equivalent
from repro.judge.manual import ManualCheckRegistry


@dataclass(frozen=True)
class Verdict:
    """Outcome of judging one response."""

    correct: bool
    method: str            # "auto" or "manual"
    rationale: str = ""


class AutoJudge:
    """Binary-equivalence judge with the paper's YES/NO contract.

    ``transcript`` retains the (system, user, verdict) triples that a real
    GPT-4 deployment would log, so the prompt plumbing is exercised and
    inspectable in tests.
    """

    def __init__(self, keep_transcript: bool = False):
        self.keep_transcript = keep_transcript
        self.transcript: list = []

    def judge(self, question: Question, response: str) -> Verdict:
        correct = answers_equivalent(question, response)
        if self.keep_transcript:
            self.transcript.append({
                "system": JUDGE_SYSTEM_PROMPT,
                "user": judge_prompt(question.gold_text, response),
                "verdict": "YES" if correct else "NO",
            })
        return Verdict(correct=correct, method="auto",
                       rationale="equivalence engine")


class HybridJudge:
    """Auto-evaluation with manual-check overrides, as in the paper.

    Questions flagged ``requires_manual_check`` (or with a registered
    override) are resolved from the :class:`ManualCheckRegistry`; all
    others go through the auto judge.
    """

    def __init__(self, manual: Optional[ManualCheckRegistry] = None,
                 keep_transcript: bool = False):
        self.auto = AutoJudge(keep_transcript=keep_transcript)
        self.manual = manual or ManualCheckRegistry()

    def judge(self, question: Question, response: str) -> Verdict:
        manual_verdict = self.manual.lookup(question.qid, response)
        if manual_verdict is not None:
            return Verdict(correct=manual_verdict, method="manual",
                           rationale="annotator override")
        if question.answer.requires_manual_check:
            # unresolved manual questions default to a strict auto check
            auto = self.auto.judge(question, response)
            return Verdict(correct=auto.correct, method="manual",
                           rationale="manual-flagged, auto fallback")
        return self.auto.judge(question, response)
