"""Tests for the in-order pipeline timing model."""

import pytest
from hypothesis import given, strategies as st

from repro.arch.pipeline import (
    BypassConfig,
    Instr,
    Op,
    Pipeline,
    alu,
    branch,
    critical_path_frequency_mhz,
    frequency_after_bypass,
    load,
    load_use_stall_cycles,
    pipeline_speedup_ideal,
    speedup,
    store,
)


class TestInstr:
    def test_load_requires_destination(self):
        with pytest.raises(ValueError):
            Instr(Op.LOAD)

    def test_helpers(self):
        assert alu("r1", "r2").dst == "r1"
        assert load("r1").op is Op.LOAD
        assert store("r1").dst is None
        assert branch("r1").op is Op.BRANCH


class TestIndependentCode:
    def test_ideal_cpi_approaches_one(self):
        trace = [alu(f"r{i}") for i in range(50)]
        result = Pipeline().run(trace)
        assert result.stall_cycles == 0
        assert result.cpi == pytest.approx(1.0, abs=0.1)

    def test_empty_trace_raises(self):
        with pytest.raises(ValueError):
            Pipeline().run([])


class TestHazards:
    def test_back_to_back_alu_no_stall_with_forwarding(self):
        trace = [alu("r1"), alu("r2", "r1")]
        result = Pipeline(BypassConfig.full()).run(trace)
        assert result.stall_cycles == 0

    def test_load_use_one_bubble_with_forwarding(self):
        assert load_use_stall_cycles(BypassConfig.full()) == 1

    def test_load_use_two_bubbles_without_mem_bypass(self):
        config = BypassConfig(ex_to_ex=True, mem_to_ex=False)
        assert load_use_stall_cycles(config) == 2

    def test_no_forwarding_at_all(self):
        config = BypassConfig(ex_to_ex=False, mem_to_ex=False)
        trace = [alu("r1"), alu("r2", "r1")]
        result = Pipeline(config).run(trace)
        assert result.stall_cycles == 2  # wait for WB write-before-read

    def test_independent_instruction_hides_bubble(self):
        trace = [load("r1"), alu("r9"), alu("r2", "r1")]
        result = Pipeline(BypassConfig.full()).run(trace)
        assert result.stall_cycles == 0

    def test_paper_bypass_example_saves_two_cycles(self):
        trace = [load("r1"), alu("r2", "r1"), alu("r3", "r2"), store("r3"),
                 load("r4"), alu("r5", "r4"), alu("r6", "r5", "r3"),
                 store("r6")]
        without = Pipeline(BypassConfig(ex_to_ex=True, mem_to_ex=False))
        with_path = Pipeline(BypassConfig.full())
        saved = without.run(trace).cycles - with_path.run(trace).cycles
        assert saved == 2

    def test_branch_penalty_adds_cycles(self):
        trace = [alu("r1"), branch("r1"), alu("r2")]
        base = Pipeline(branch_penalty=0).run(trace, taken_branches=1)
        penalised = Pipeline(branch_penalty=3).run(trace, taken_branches=1)
        assert penalised.cycles - base.cycles == 3


class TestIronLaw:
    def test_speedup(self):
        assert speedup(2.0, 1.0) == pytest.approx(2.0)
        assert speedup(2.0, 1.0, 1.0, 0.5) == pytest.approx(1.0)

    def test_speedup_validation(self):
        with pytest.raises(ValueError):
            speedup(0.0, 1.0)

    def test_frequency_after_bypass(self):
        assert frequency_after_bypass(1000.0, 0.1) == pytest.approx(909.09,
                                                                    rel=1e-3)

    def test_ideal_pipeline_speedup(self):
        assert pipeline_speedup_ideal(5) == 5.0

    def test_critical_path_frequency(self):
        assert critical_path_frequency_mhz([1.0, 2.0, 1.5]) == \
            pytest.approx(500.0)
        assert critical_path_frequency_mhz([2.0], latch_overhead_ns=0.5) \
            == pytest.approx(400.0)


@given(st.lists(st.sampled_from(["alu", "load"]), min_size=1, max_size=30))
def test_more_bypassing_never_hurts(ops):
    """Full forwarding is always at least as fast as none."""
    trace = []
    for index, kind in enumerate(ops):
        srcs = (f"r{index - 1}",) if index else ()
        if kind == "load":
            trace.append(Instr(Op.LOAD, f"r{index}", srcs and (srcs[0],) or ("sp",)))
        else:
            trace.append(Instr(Op.ALU, f"r{index}", srcs))
    fast = Pipeline(BypassConfig.full()).run(trace).cycles
    slow = Pipeline(BypassConfig(ex_to_ex=False, mem_to_ex=False)).run(trace).cycles
    assert fast <= slow


@given(st.integers(1, 40))
def test_cpi_at_least_one_for_any_dependent_chain(n):
    trace = [alu("r0")] + [alu(f"r{i}", f"r{i - 1}") for i in range(1, n)]
    result = Pipeline().run(trace)
    assert result.cpi >= 1.0
