"""Tests for the cache-telemetry substrate (repro.core.perfstats)."""

import json
import threading

import pytest

from repro.core.perfstats import (
    JSON_VALUE_CODEC,
    CacheStats,
    LruCache,
    SpillStore,
    delta,
    disable_spill,
    enable_spill,
    get_cache,
    merge_counters,
    register,
    snapshot,
    spill_root,
    total,
)


class TestCacheStats:
    def test_counters_accumulate(self):
        stats = CacheStats("x")
        stats.record_hit()
        stats.record_hit(2)
        stats.record_miss()
        stats.record_eviction(3)
        assert stats.snapshot() == {"hits": 3, "misses": 1, "evictions": 3}

    def test_hit_rate(self):
        stats = CacheStats("x")
        assert stats.hit_rate() == 0.0
        stats.record_hit(3)
        stats.record_miss()
        assert stats.hit_rate() == pytest.approx(0.75)

    def test_reset(self):
        stats = CacheStats("x")
        stats.record_hit()
        stats.reset()
        assert stats.snapshot() == {"hits": 0, "misses": 0, "evictions": 0}


class TestLruCache:
    def test_get_put_roundtrip(self):
        cache = LruCache(capacity=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.snapshot() == {"hits": 1, "misses": 1,
                                          "evictions": 0}

    def test_capacity_evicts_least_recent(self):
        cache = LruCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh a's recency
        cache.put("c", 3)       # evicts b
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.stats.snapshot()["evictions"] == 1

    def test_peek_and_contains_leave_counters_alone(self):
        cache = LruCache(capacity=2)
        cache.put("a", 1)
        assert cache.peek("a") == 1
        assert cache.peek("zzz") is None
        assert "a" in cache
        assert cache.stats.snapshot() == {"hits": 0, "misses": 0,
                                          "evictions": 0}

    def test_get_or_create_runs_factory_once_per_key(self):
        cache = LruCache(capacity=4)
        calls = []
        value = cache.get_or_create("k", lambda: calls.append(1) or 42)
        again = cache.get_or_create("k", lambda: calls.append(1) or 42)
        assert value == again == 42
        assert len(calls) == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            LruCache(capacity=0)

    def test_reset_clears_entries_and_counters(self):
        cache = LruCache(capacity=4)
        cache.put("a", 1)
        cache.get("a")
        cache.reset()
        assert len(cache) == 0
        assert cache.stats.snapshot() == {"hits": 0, "misses": 0,
                                          "evictions": 0}

    def test_thread_hammer(self):
        """8 threads interleaving put/get never corrupt the cache."""
        cache = LruCache(capacity=64)
        errors = []

        def worker(seed):
            try:
                for i in range(500):
                    key = (seed * i) % 100
                    cache.put(key, key * 2)
                    got = cache.get(key)
                    assert got is None or got == key * 2
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,))
                   for s in range(1, 9)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 64


class TestRegistry:
    def test_named_cache_registers_itself(self):
        cache = LruCache(capacity=4, name="test-registry-probe")
        assert get_cache("test-registry-probe") is cache
        assert "test-registry-probe" in snapshot()

    def test_snapshot_includes_size(self):
        cache = LruCache(capacity=4, name="test-registry-size")
        cache.put("a", 1)
        assert snapshot()["test-registry-size"]["size"] == 1

    def test_reregistration_last_wins(self):
        first = LruCache(capacity=4)
        second = LruCache(capacity=4)
        register("test-registry-dup", first)
        register("test-registry-dup", second)
        assert get_cache("test-registry-dup") is second

    def test_builtin_caches_registered(self):
        # importing the substrate registers the pipeline caches
        import repro.models.encoder  # noqa: F401
        import repro.visual  # noqa: F401
        import repro.core.benchmark  # noqa: F401

        names = set(snapshot())
        assert {"render", "legibility", "perception", "dataset"} <= names


class TestSpillStore:
    def test_round_trip_and_content_addressing(self, tmp_path):
        store = SpillStore(tmp_path, "probe", *JSON_VALUE_CODEC)
        key = ("legibility", 1.5, "abc")
        assert store.get(key) is None
        store.put(key, 0.75)
        assert store.get(key) == 0.75
        # the path is a pure function of the key: a second store over
        # the same root (another process, conceptually) sees the entry
        sibling = SpillStore(tmp_path, "probe", *JSON_VALUE_CODEC)
        assert sibling.get(key) == 0.75
        assert sibling.path_for(key) == store.path_for(key)

    def test_existing_entries_are_never_rewritten(self, tmp_path):
        store = SpillStore(tmp_path, "probe", *JSON_VALUE_CODEC)
        store.put("k", 1)
        before = store.path_for("k").stat().st_mtime_ns
        store.put("k", 2)  # ignored: entries are pure functions of keys
        assert store.get("k") == 1
        assert store.path_for("k").stat().st_mtime_ns == before

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        store = SpillStore(tmp_path, "probe", *JSON_VALUE_CODEC)
        store.put("k", 5)
        store.path_for("k").write_text("{torn", encoding="utf-8")
        assert store.get("k", "fallback") == "fallback"

    def test_undecodable_entry_degrades_to_miss(self, tmp_path):
        def explode(payload):
            raise ValueError("bad payload")

        store = SpillStore(tmp_path, "probe", JSON_VALUE_CODEC[0], explode)
        store.put("k", 5)
        assert store.get("k") is None

    def test_entries_are_json(self, tmp_path):
        store = SpillStore(tmp_path, "probe", *JSON_VALUE_CODEC)
        store.put(("a", 1), {"x": 1.5})
        payload = json.loads(
            store.path_for(("a", 1)).read_text(encoding="utf-8"))
        assert payload == {"x": 1.5}

    def test_corrupt_entry_is_quarantined_and_counted(self, tmp_path):
        stats = CacheStats("probe")
        store = SpillStore(tmp_path, "probe", *JSON_VALUE_CODEC,
                           stats=stats)
        store.put("k", 5)
        store.path_for("k").write_text("{torn", encoding="utf-8")
        assert store.get("k", "fallback") == "fallback"
        assert stats.spill_corrupt == 1
        # the bad file was evicted, so the next put rebuilds it...
        assert not store.path_for("k").exists()
        store.put("k", 5)
        assert store.get("k") == 5
        # ...and a missing entry is a plain miss, not a quarantine
        assert store.get("other") is None
        assert stats.spill_corrupt == 1


class TestSpillTier:
    def test_memory_miss_falls_through_and_promotes(self, tmp_path):
        cache = LruCache(capacity=4, spill_codec=JSON_VALUE_CODEC)
        cache.attach_spill(SpillStore(tmp_path, "t", *JSON_VALUE_CODEC))
        cache.put("a", 1)          # write-through
        cache.clear()              # drop memory, keep disk
        assert cache.get("a") == 1  # served from disk, promoted
        assert cache.peek("a") == 1  # now back in memory
        assert cache.stats.snapshot() == {
            "hits": 1, "misses": 0, "evictions": 0,
            "spill_hits": 1, "spill_misses": 0}

    def test_spill_miss_counts_once(self, tmp_path):
        cache = LruCache(capacity=4, spill_codec=JSON_VALUE_CODEC)
        cache.attach_spill(SpillStore(tmp_path, "t", *JSON_VALUE_CODEC))
        assert cache.get("nope") is None
        assert cache.stats.snapshot() == {
            "hits": 0, "misses": 1, "evictions": 0,
            "spill_hits": 0, "spill_misses": 1}

    def test_corrupt_disk_entry_surfaces_in_snapshot(self, tmp_path):
        cache = LruCache(capacity=4, spill_codec=JSON_VALUE_CODEC)
        store = SpillStore(tmp_path, "t", *JSON_VALUE_CODEC,
                           stats=cache.stats)
        cache.attach_spill(store)
        cache.put("a", 1)
        cache.clear()
        store.path_for("a").write_text("not json", encoding="utf-8")
        assert cache.get("a") is None  # quarantined, degrades to miss
        assert cache.stats.snapshot() == {
            "hits": 0, "misses": 1, "evictions": 0,
            "spill_hits": 0, "spill_misses": 1, "spill_corrupt": 1}

    def test_snapshot_stays_stable_without_spill_traffic(self):
        """Spill counters must not appear for spill-free configurations
        (run manifests pin the exact counter shape)."""
        cache = LruCache(capacity=4)
        cache.put("a", 1)
        cache.get("a")
        assert set(cache.stats.snapshot()) == {"hits", "misses",
                                               "evictions"}

    def test_detach_leaves_disk_entries(self, tmp_path):
        cache = LruCache(capacity=4, spill_codec=JSON_VALUE_CODEC)
        store = SpillStore(tmp_path, "t", *JSON_VALUE_CODEC)
        cache.attach_spill(store)
        cache.put("a", 1)
        cache.detach_spill()
        cache.clear()
        assert cache.spill is None
        assert cache.get("a") is None      # memory-only lookup now
        assert store.get("a") == 1          # disk entry untouched

    def test_enable_spill_attaches_codec_capable_caches(self, tmp_path):
        name = "test-spill-enable-probe"
        capable = LruCache(capacity=4, name=name,
                           spill_codec=JSON_VALUE_CODEC)
        incapable = LruCache(capacity=4, name=name + "-nocodec")
        try:
            attached = enable_spill(tmp_path)
            assert name in attached
            assert name + "-nocodec" not in attached
            assert capable.spill is not None
            assert incapable.spill is None
            assert spill_root() == str(tmp_path)
        finally:
            disable_spill()
        assert capable.spill is None
        assert spill_root() is None


class TestMergeCounters:
    def test_counters_add_and_size_takes_max(self):
        into = {"c": {"hits": 2, "size": 5}}
        merge_counters(into, {"c": {"hits": 3, "misses": 1, "size": 4},
                              "d": {"hits": 7}})
        assert into == {"c": {"hits": 5, "misses": 1, "size": 5},
                        "d": {"hits": 7}}

    def test_returns_into_for_chaining(self):
        into = {}
        assert merge_counters(into, {"c": {"hits": 1}}) is into


class TestDeltaAndTotal:
    def test_delta_subtracts_counters_keeps_size(self):
        before = {"c": {"hits": 2, "misses": 1, "evictions": 0, "size": 3}}
        after = {"c": {"hits": 5, "misses": 1, "evictions": 2, "size": 4}}
        moved = delta(before, after)
        assert moved == {"c": {"hits": 3, "misses": 0, "evictions": 2,
                               "size": 4}}

    def test_delta_handles_new_cache(self):
        moved = delta({}, {"c": {"hits": 2, "misses": 0, "evictions": 0,
                                 "size": 1}})
        assert moved["c"]["hits"] == 2

    def test_total_sums_one_field(self):
        counters = {"a": {"hits": 2}, "b": {"hits": 3}}
        assert total(counters, "hits") == 5
        assert total(counters, "misses") == 0
