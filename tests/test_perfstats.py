"""Tests for the cache-telemetry substrate (repro.core.perfstats)."""

import threading

import pytest

from repro.core.perfstats import (
    CacheStats,
    LruCache,
    delta,
    get_cache,
    register,
    snapshot,
    total,
)


class TestCacheStats:
    def test_counters_accumulate(self):
        stats = CacheStats("x")
        stats.record_hit()
        stats.record_hit(2)
        stats.record_miss()
        stats.record_eviction(3)
        assert stats.snapshot() == {"hits": 3, "misses": 1, "evictions": 3}

    def test_hit_rate(self):
        stats = CacheStats("x")
        assert stats.hit_rate() == 0.0
        stats.record_hit(3)
        stats.record_miss()
        assert stats.hit_rate() == pytest.approx(0.75)

    def test_reset(self):
        stats = CacheStats("x")
        stats.record_hit()
        stats.reset()
        assert stats.snapshot() == {"hits": 0, "misses": 0, "evictions": 0}


class TestLruCache:
    def test_get_put_roundtrip(self):
        cache = LruCache(capacity=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.snapshot() == {"hits": 1, "misses": 1,
                                          "evictions": 0}

    def test_capacity_evicts_least_recent(self):
        cache = LruCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh a's recency
        cache.put("c", 3)       # evicts b
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.stats.snapshot()["evictions"] == 1

    def test_peek_and_contains_leave_counters_alone(self):
        cache = LruCache(capacity=2)
        cache.put("a", 1)
        assert cache.peek("a") == 1
        assert cache.peek("zzz") is None
        assert "a" in cache
        assert cache.stats.snapshot() == {"hits": 0, "misses": 0,
                                          "evictions": 0}

    def test_get_or_create_runs_factory_once_per_key(self):
        cache = LruCache(capacity=4)
        calls = []
        value = cache.get_or_create("k", lambda: calls.append(1) or 42)
        again = cache.get_or_create("k", lambda: calls.append(1) or 42)
        assert value == again == 42
        assert len(calls) == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            LruCache(capacity=0)

    def test_reset_clears_entries_and_counters(self):
        cache = LruCache(capacity=4)
        cache.put("a", 1)
        cache.get("a")
        cache.reset()
        assert len(cache) == 0
        assert cache.stats.snapshot() == {"hits": 0, "misses": 0,
                                          "evictions": 0}

    def test_thread_hammer(self):
        """8 threads interleaving put/get never corrupt the cache."""
        cache = LruCache(capacity=64)
        errors = []

        def worker(seed):
            try:
                for i in range(500):
                    key = (seed * i) % 100
                    cache.put(key, key * 2)
                    got = cache.get(key)
                    assert got is None or got == key * 2
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,))
                   for s in range(1, 9)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 64


class TestRegistry:
    def test_named_cache_registers_itself(self):
        cache = LruCache(capacity=4, name="test-registry-probe")
        assert get_cache("test-registry-probe") is cache
        assert "test-registry-probe" in snapshot()

    def test_snapshot_includes_size(self):
        cache = LruCache(capacity=4, name="test-registry-size")
        cache.put("a", 1)
        assert snapshot()["test-registry-size"]["size"] == 1

    def test_reregistration_last_wins(self):
        first = LruCache(capacity=4)
        second = LruCache(capacity=4)
        register("test-registry-dup", first)
        register("test-registry-dup", second)
        assert get_cache("test-registry-dup") is second

    def test_builtin_caches_registered(self):
        # importing the substrate registers the pipeline caches
        import repro.models.encoder  # noqa: F401
        import repro.visual  # noqa: F401
        import repro.core.benchmark  # noqa: F401

        names = set(snapshot())
        assert {"render", "legibility", "perception", "dataset"} <= names


class TestDeltaAndTotal:
    def test_delta_subtracts_counters_keeps_size(self):
        before = {"c": {"hits": 2, "misses": 1, "evictions": 0, "size": 3}}
        after = {"c": {"hits": 5, "misses": 1, "evictions": 2, "size": 4}}
        moved = delta(before, after)
        assert moved == {"c": {"hits": 3, "misses": 0, "evictions": 2,
                               "size": 4}}

    def test_delta_handles_new_cache(self):
        moved = delta({}, {"c": {"hits": 2, "misses": 0, "evictions": 0,
                                 "size": 1}})
        assert moved["c"]["hits"] == 2

    def test_total_sums_one_field(self):
        counters = {"a": {"hits": 2}, "b": {"hits": 3}}
        assert total(counters, "hits") == 5
        assert total(counters, "misses") == 0
