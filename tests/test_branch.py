"""Tests for branch predictors."""

import pytest
from hypothesis import given, strategies as st

from repro.arch.branch import (
    GsharePredictor,
    OneBitPredictor,
    StaticPredictor,
    TwoBitPredictor,
    accuracy,
    loop_branch_outcomes,
    mispredict_penalty_cpi,
    run_predictor,
)


class TestStatic:
    def test_always_taken(self):
        predictor = StaticPredictor(True)
        outcomes = [True, True, False]
        correct, _ = run_predictor(predictor, outcomes)
        assert correct == 2


class TestOneBit:
    def test_mispredicts_twice_per_loop(self):
        # classic result: a loop branch costs 2 mispredicts per execution
        predictor = OneBitPredictor(initial_taken=False)
        outcomes = loop_branch_outcomes(iterations=5, trips=2)
        correct, flags = run_predictor(predictor, outcomes)
        # trip 1: initial miss + exit miss; trip 2: re-entry miss + exit
        assert len(outcomes) - correct == 4

    def test_tracks_last_outcome(self):
        predictor = OneBitPredictor()
        predictor.update(0, True)
        assert predictor.predict(0) is True
        predictor.update(0, False)
        assert predictor.predict(0) is False


class TestTwoBit:
    def test_counter_saturates(self):
        predictor = TwoBitPredictor(initial=3)
        for _ in range(5):
            predictor.update(0, True)
        assert predictor.counter(0) == 3
        for _ in range(5):
            predictor.update(0, False)
        assert predictor.counter(0) == 0

    def test_hysteresis_survives_one_exit(self):
        predictor = TwoBitPredictor(initial=3)
        predictor.update(0, False)  # loop exit
        assert predictor.predict(0) is True  # still predicts taken

    def test_paper_loop_accuracy(self):
        predictor = TwoBitPredictor(initial=1)
        outcomes = loop_branch_outcomes(iterations=5, trips=2)
        correct, _ = run_predictor(predictor, outcomes)
        assert correct == 7  # 70% over 10 branches

    def test_invalid_initial_rejected(self):
        with pytest.raises(ValueError):
            TwoBitPredictor(initial=4)

    def test_beats_one_bit_on_loops(self):
        outcomes = loop_branch_outcomes(iterations=10, trips=5)
        two_bit = accuracy(TwoBitPredictor(initial=3), outcomes)
        one_bit = accuracy(OneBitPredictor(initial_taken=True), outcomes)
        assert two_bit >= one_bit


class TestGshare:
    def test_learns_alternating_pattern(self):
        predictor = GsharePredictor(history_bits=4)
        outcomes = [True, False] * 40
        correct, flags = run_predictor(predictor, outcomes)
        # after warm-up the alternation is perfectly predictable
        assert all(flags[-20:])

    def test_history_bits_validated(self):
        with pytest.raises(ValueError):
            GsharePredictor(history_bits=0)


class TestHelpers:
    def test_loop_outcomes_shape(self):
        outcomes = loop_branch_outcomes(iterations=4, trips=2)
        assert outcomes == [True, True, True, False] * 2

    def test_loop_outcomes_validation(self):
        with pytest.raises(ValueError):
            loop_branch_outcomes(0)

    def test_mispredict_cpi(self):
        assert mispredict_penalty_cpi(1.0, 0.2, 0.1, 15) == \
            pytest.approx(1.3)

    def test_mispredict_cpi_validation(self):
        with pytest.raises(ValueError):
            mispredict_penalty_cpi(1.0, 2.0, 0.1, 15)


@given(st.lists(st.booleans(), min_size=1, max_size=100))
def test_accuracy_bounded(outcomes):
    for predictor in (StaticPredictor(), OneBitPredictor(),
                      TwoBitPredictor(), GsharePredictor()):
        value = accuracy(predictor, outcomes)
        assert 0.0 <= value <= 1.0


@given(st.lists(st.booleans(), min_size=4, max_size=100))
def test_constant_stream_learned_by_two_bit(outcomes):
    """On an all-taken stream the 2-bit predictor converges within 2."""
    predictor = TwoBitPredictor(initial=0)
    correct, flags = run_predictor(predictor, [True] * len(outcomes))
    assert all(flags[2:])
