"""Property-based and unit tests for the async provider seam: the
continuous batcher's exactly-once/capacity/homogeneity invariants under
arbitrary arrival-drain interleavings (hypothesis), token-bucket
pacing, and hedged-request semantics."""

import asyncio
import itertools
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.faults import TransientModelError
from repro.models import (
    NO_CHOICE,
    WITH_CHOICE,
    AsyncCallScheduler,
    ContinuousBatcher,
    HedgePolicy,
    TokenBucket,
)


class _RecordingAsyncProvider:
    """Echo provider: answers after a scripted number of event-loop
    yields, recording every dispatched batch for invariant checks."""

    def __init__(self, name, delays):
        self.name = name
        self.calls = []
        self._delays = delays

    def config_fingerprint(self):
        """Constant fingerprint; batching keys on identity, not this."""
        return "f" * 64

    async def answer_batch_async(self, questions, setting,
                                 resolution_factor=1, use_raster=True):
        """Yield ``next(delays)`` times, then echo tagged answers."""
        for _ in range(next(self._delays)):
            await asyncio.sleep(0)
        self.calls.append((list(questions), setting,
                           resolution_factor, use_raster))
        return [f"{self.name}:{q}:{setting}:{resolution_factor}"
                for q in questions]


CONTEXTS = [(WITH_CHOICE, 1, False), (NO_CHOICE, 2, True)]


class TestContinuousBatcherProperties:
    """The satellite property test: under arbitrary interleavings of
    arrivals and drains, every submitted unit of work is answered
    exactly once, no dispatched batch exceeds capacity, and batches
    are never heterogeneous across providers (or contexts)."""

    @settings(deadline=None, max_examples=60)
    @given(
        max_batch_size=st.integers(min_value=1, max_value=4),
        max_in_flight=st.integers(min_value=1, max_value=3),
        subs=st.lists(
            st.tuples(st.integers(0, 2), st.integers(0, 1),
                      st.integers(0, 3)),
            min_size=1, max_size=24),
        delays=st.lists(st.integers(0, 4), min_size=1, max_size=24),
    )
    def test_exactly_once_capacity_homogeneity(
            self, max_batch_size, max_in_flight, subs, delays):
        delay_iter = itertools.cycle(delays)
        providers = [_RecordingAsyncProvider(f"p{i}", delay_iter)
                     for i in range(3)]
        batcher = ContinuousBatcher(max_batch_size=max_batch_size,
                                    max_in_flight=max_in_flight)

        async def submit_one(idx, provider_idx, context_idx, pre_delay):
            for _ in range(pre_delay):
                await asyncio.sleep(0)
            setting, factor, raster = CONTEXTS[context_idx]
            answer = await batcher.submit(
                providers[provider_idx], f"q{idx}", setting, factor,
                use_raster=raster)
            return idx, provider_idx, context_idx, answer

        async def main():
            return await asyncio.gather(*[
                submit_one(i, p, c, d)
                for i, (p, c, d) in enumerate(subs)])

        results = asyncio.run(main())

        # Exactly once, each with its own provider/context answer.
        assert len(results) == len(subs)
        for idx, p_idx, c_idx, answer in results:
            setting, factor, _ = CONTEXTS[c_idx]
            assert answer == f"p{p_idx}:q{idx}:{setting}:{factor}"
        dispatched = [q for provider in providers
                      for batch, _, _, _ in provider.calls
                      for q in batch]
        assert sorted(dispatched) == sorted(
            f"q{i}" for i in range(len(subs)))

        # Capacity and homogeneity per dispatched batch.
        for p_idx, provider in enumerate(providers):
            for batch, setting, factor, raster in provider.calls:
                assert 1 <= len(batch) <= max_batch_size
                for question in batch:
                    sub_provider, sub_context, _ = subs[
                        int(question[1:])]
                    assert sub_provider == p_idx
                    assert CONTEXTS[sub_context] == (
                        setting, factor, raster)

        # The window drained completely and never overfilled.
        assert batcher.in_flight == 0
        assert batcher.pending_count() == 0
        assert batcher.peak_in_flight <= max_in_flight


class TestContinuousBatcherUnit:
    """Deterministic (non-property) batcher behaviors."""

    def test_rolling_refill_overlaps_calls(self):
        provider = _RecordingAsyncProvider("p", itertools.cycle([3]))
        batcher = ContinuousBatcher(max_batch_size=2, max_in_flight=2)

        async def main():
            return await asyncio.gather(*[
                batcher.submit(provider, f"q{i}", WITH_CHOICE)
                for i in range(8)])

        answers = asyncio.run(main())
        assert len(answers) == 8
        assert batcher.peak_in_flight == 2
        assert batcher.refills > 0
        # Early arrivals dispatch eagerly (possibly as singletons);
        # once the window is full, drained slots refill with full
        # batches — never more batches than submissions.
        assert 4 <= batcher.batches <= 8
        assert batcher.batched_questions == 8

    def test_dispatch_error_reaches_every_cobatched_waiter(self):
        class _FailingProvider:
            """Async provider whose dispatch always raises."""

            name = "failing"

            def config_fingerprint(self):
                """Constant fingerprint."""
                return "a" * 64

            async def answer_batch_async(self, questions, setting,
                                         resolution_factor=1,
                                         use_raster=True):
                """Fail after one yield so both waiters co-batch."""
                await asyncio.sleep(0)
                raise TransientModelError("boom")

        batcher = ContinuousBatcher(max_batch_size=4, max_in_flight=1)
        provider = _FailingProvider()

        async def main():
            return await asyncio.gather(
                *[batcher.submit(provider, f"q{i}", WITH_CHOICE)
                  for i in range(3)],
                return_exceptions=True)

        outcomes = asyncio.run(main())
        assert len(outcomes) == 3
        assert all(isinstance(o, TransientModelError) for o in outcomes)
        assert batcher.in_flight == 0

    def test_sync_provider_adapts_transparently(self):
        class _SyncEcho:
            """Sync-only provider; the batcher must adapt it."""

            name = "sync-echo"

            def config_fingerprint(self):
                """Constant fingerprint."""
                return "b" * 64

            def answer_batch(self, questions, setting,
                             resolution_factor=1, use_raster=True):
                """Echo the questions."""
                return list(questions)

        batcher = ContinuousBatcher(max_batch_size=4)
        answers = asyncio.run(asyncio.wait_for(
            batcher.submit(_SyncEcho(), "q0", WITH_CHOICE), timeout=10))
        assert answers == "q0"

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ContinuousBatcher(max_batch_size=0)
        with pytest.raises(ValueError):
            ContinuousBatcher(max_in_flight=0)


class TestTokenBucket:
    """Client-side pacing: deterministic refill math on a scripted
    clock, and awaited acquisition through the injectable sleep."""

    def test_burst_then_refill(self):
        clock = {"now": 0.0}
        bucket = TokenBucket(2.0, burst=2, clock=lambda: clock["now"])
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        assert bucket.wait_time() == pytest.approx(0.5)
        clock["now"] = 0.5  # one token refilled at 2/s
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        assert bucket.granted == 3
        assert bucket.rejected == 2

    def test_burst_caps_accumulation(self):
        clock = {"now": 0.0}
        bucket = TokenBucket(10.0, burst=3, clock=lambda: clock["now"])
        clock["now"] = 100.0  # idle forever; still only ``burst`` tokens
        for _ in range(3):
            assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_async_acquire_sleeps_exact_deficit(self):
        clock = {"now": 0.0}
        waits = []

        async def fake_sleep(seconds):
            waits.append(seconds)
            clock["now"] += seconds

        bucket = TokenBucket(4.0, burst=1, clock=lambda: clock["now"])

        async def main():
            for _ in range(3):
                await bucket.acquire(sleep=fake_sleep)

        asyncio.run(main())
        assert bucket.granted == 3
        assert waits == [pytest.approx(0.25), pytest.approx(0.25)]
        assert bucket.waited_s == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(0.0)
        with pytest.raises(ValueError):
            TokenBucket(1.0, burst=0)


class _StragglerProvider:
    """First call sleeps a long wall-clock interval; later calls are
    instant — the canonical hedging victim."""

    name = "straggler"

    def __init__(self, straggle_s=0.5):
        self.calls = 0
        self.straggle_s = straggle_s

    def config_fingerprint(self):
        """Constant fingerprint."""
        return "c" * 64

    async def answer_batch_async(self, questions, setting,
                                 resolution_factor=1, use_raster=True):
        """Sleep long on the first call only, then echo."""
        self.calls += 1
        if self.calls == 1:
            await asyncio.sleep(self.straggle_s)
        return list(questions)


class TestHedgedRequests:
    """First-success-wins duplication of straggling calls."""

    def test_hedge_policy_validation(self):
        with pytest.raises(ValueError):
            HedgePolicy(-0.1)
        with pytest.raises(ValueError):
            HedgePolicy(0.5, max_hedges=0)

    def test_hedge_wins_over_straggler(self):
        provider = _StragglerProvider(straggle_s=0.5)
        scheduler = AsyncCallScheduler(hedge=HedgePolicy(after_s=0.05))
        start = time.monotonic()
        answers = asyncio.run(
            scheduler.call(provider, ["q0"], WITH_CHOICE))
        elapsed = time.monotonic() - start
        assert answers == ["q0"]
        assert provider.calls == 2
        assert scheduler.hedges_launched == 1
        assert scheduler.hedge_wins == 1
        assert elapsed < 0.4  # the hedge returned, not the straggler

    def test_fast_call_never_hedged(self):
        provider = _StragglerProvider(straggle_s=0.0)
        scheduler = AsyncCallScheduler(hedge=HedgePolicy(after_s=0.5))
        answers = asyncio.run(
            scheduler.call(provider, ["q0"], WITH_CHOICE))
        assert answers == ["q0"]
        assert provider.calls == 1
        assert scheduler.hedges_launched == 0

    def test_all_copies_failing_keeps_unhedged_semantics(self):
        class _AlwaysFailing:
            """Every copy fails fast with the same transient error."""

            name = "always-failing"

            def config_fingerprint(self):
                """Constant fingerprint."""
                return "d" * 64

            async def answer_batch_async(self, questions, setting,
                                         resolution_factor=1,
                                         use_raster=True):
                """Raise immediately."""
                raise TransientModelError("copy failed")

        scheduler = AsyncCallScheduler(hedge=HedgePolicy(after_s=0.01))
        with pytest.raises(TransientModelError, match="copy failed"):
            asyncio.run(scheduler.call(
                _AlwaysFailing(), ["q0"], WITH_CHOICE))
        assert scheduler.hedge_wins == 0


class TestSchedulerPacing:
    """The scheduler awaits per-provider token buckets before
    dispatching — pacing, not rejection, on the client side."""

    def test_calls_paced_at_configured_rate(self):
        clock = {"now": 0.0}

        async def fake_sleep(seconds):
            clock["now"] += seconds

        scheduler = AsyncCallScheduler(rate_limit_per_s=2.0,
                                       rate_burst=1,
                                       clock=lambda: clock["now"],
                                       async_sleep=fake_sleep)
        provider = _RecordingAsyncProvider("p", itertools.cycle([0]))

        async def main():
            for i in range(4):
                await scheduler.call(provider, [f"q{i}"], WITH_CHOICE)

        asyncio.run(main())
        assert scheduler.calls == 4
        bucket = scheduler.bucket_for("p")
        assert bucket.granted == 4
        # burst of 1, then three waits of 0.5 s each at 2/s
        assert clock["now"] == pytest.approx(1.5)

    def test_buckets_are_per_provider(self):
        scheduler = AsyncCallScheduler(rate_limit_per_s=5.0)
        assert scheduler.bucket_for("a") is scheduler.bucket_for("a")
        assert scheduler.bucket_for("a") is not scheduler.bucket_for("b")

    def test_no_rate_limit_means_no_bucket(self):
        scheduler = AsyncCallScheduler()
        assert scheduler.bucket_for("a") is None
