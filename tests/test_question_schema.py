"""Unit tests for the core question schema."""

import pytest

from repro.core.question import (
    AnswerKind,
    AnswerSpec,
    CATEGORY_COUNTS,
    CATEGORY_MC_COUNTS,
    Category,
    Question,
    QuestionType,
    TOTAL_MULTIPLE_CHOICE,
    TOTAL_QUESTIONS,
    TOTAL_SHORT_ANSWER,
    VISUAL_TYPE_COUNTS,
    VisualContent,
    VisualType,
    format_choices,
    make_mc_question,
    make_sa_question,
)


def _visual():
    return VisualContent(VisualType.SCHEMATIC, "a test schematic")


def _mc(**overrides):
    defaults = dict(
        qid="t-01",
        category=Category.DIGITAL,
        prompt="What is shown?",
        visual=_visual(),
        choices=("a", "b", "c", "d"),
        correct=1,
    )
    defaults.update(overrides)
    return make_mc_question(**defaults)


class TestConstants:
    def test_category_counts_sum_to_total(self):
        assert sum(CATEGORY_COUNTS.values()) == TOTAL_QUESTIONS

    def test_mc_sa_split(self):
        assert TOTAL_MULTIPLE_CHOICE + TOTAL_SHORT_ANSWER == TOTAL_QUESTIONS

    def test_mc_counts_bounded_by_category_counts(self):
        for category, mc in CATEGORY_MC_COUNTS.items():
            assert 0 <= mc <= CATEGORY_COUNTS[category]

    def test_mc_counts_sum(self):
        assert sum(CATEGORY_MC_COUNTS.values()) == TOTAL_MULTIPLE_CHOICE

    def test_visual_counts_sum_to_144(self):
        # Table I's visual counts sum to 144 over 142 questions: two
        # questions carry a second visual.
        assert sum(VISUAL_TYPE_COUNTS.values()) == 144


class TestVisualContent:
    def test_rejects_nonpositive_dimensions(self):
        with pytest.raises(ValueError):
            VisualContent(VisualType.TABLE, "x", width=0)

    def test_rejects_nonpositive_legibility(self):
        with pytest.raises(ValueError):
            VisualContent(VisualType.TABLE, "x", legibility_scale=0)


class TestQuestionValidation:
    def test_mc_requires_four_choices(self):
        with pytest.raises(ValueError, match="4"):
            _mc(choices=("a", "b", "c"))

    def test_mc_requires_distinct_choices(self):
        with pytest.raises(ValueError, match="distinct"):
            _mc(choices=("a", "a", "c", "d"))

    def test_mc_requires_valid_correct_index(self):
        with pytest.raises(ValueError):
            Question(
                qid="t", category=Category.DIGITAL,
                question_type=QuestionType.MULTIPLE_CHOICE,
                prompt="p", visual=_visual(),
                answer=AnswerSpec(AnswerKind.CHOICE, "a"),
                choices=("a", "b", "c", "d"), correct_choice=4)

    def test_sa_rejects_choices(self):
        with pytest.raises(ValueError, match="choices"):
            Question(
                qid="t", category=Category.DIGITAL,
                question_type=QuestionType.SHORT_ANSWER,
                prompt="p", visual=_visual(),
                answer=AnswerSpec(AnswerKind.TEXT, "x"),
                choices=("a", "b", "c", "d"))

    def test_difficulty_bounds(self):
        with pytest.raises(ValueError, match="difficulty"):
            _mc(difficulty=1.5)

    def test_empty_prompt_rejected(self):
        with pytest.raises(ValueError):
            _mc(prompt="")

    def test_empty_gold_rejected(self):
        with pytest.raises(ValueError):
            AnswerSpec(AnswerKind.TEXT, "")


class TestQuestionAccessors:
    def test_gold_text_mc(self):
        question = _mc()
        assert question.gold_text == "b"

    def test_gold_letter(self):
        assert _mc().gold_letter == "B"

    def test_gold_letter_raises_for_sa(self):
        question = make_sa_question(
            "t-02", Category.ANALOG, "p", _visual(),
            AnswerSpec(AnswerKind.TEXT, "x"))
        with pytest.raises(ValueError):
            question.gold_letter

    def test_stable_hash_is_deterministic(self):
        assert _mc().stable_hash() == _mc().stable_hash()

    def test_stable_hash_differs_by_qid(self):
        assert _mc().stable_hash() != _mc(qid="t-99").stable_hash()

    def test_all_visuals_includes_extras(self):
        import dataclasses

        question = dataclasses.replace(_mc(), extra_visuals=(_visual(),))
        assert len(question.all_visuals) == 2


class TestSerialization:
    def test_round_trip(self):
        question = _mc()
        restored = Question.from_json(question.to_json())
        assert restored.qid == question.qid
        assert restored.choices == question.choices
        assert restored.correct_choice == question.correct_choice
        assert restored.category is question.category
        assert restored.visual.visual_type is question.visual.visual_type

    def test_round_trip_sa(self):
        question = make_sa_question(
            "t-03", Category.PHYSICAL, "p", _visual(),
            AnswerSpec(AnswerKind.NUMERIC, "4.2", unit="ns",
                       aliases=("4.2 ns",)))
        restored = Question.from_json(question.to_json())
        assert restored.answer.unit == "ns"
        assert restored.answer.aliases == ("4.2 ns",)

    def test_round_trip_extra_visuals(self):
        import dataclasses

        question = dataclasses.replace(_mc(), extra_visuals=(_visual(),))
        restored = Question.from_json(question.to_json())
        assert len(restored.extra_visuals) == 1


def test_format_choices():
    text = format_choices(["w", "x", "y", "z"])
    assert text.splitlines() == ["A) w", "B) x", "C) y", "D) z"]
