"""Tests for the evaluation harness itself (modes, judges, consistency)."""

import pytest

from repro.core.harness import EvaluationHarness, run_table2
from repro.core.question import Category
from repro.judge import HybridJudge, ManualCheckRegistry
from repro.models import NO_CHOICE, WITH_CHOICE, build_model


class TestHarnessModes:
    def test_analytic_and_raster_agree_at_native(self, chipvqa):
        """The fast analytic perception mode must produce the same outcome
        plan as raster-grounded perception at native resolution."""
        model = build_model("llava-34b")
        analytic = EvaluationHarness(use_raster=False)
        raster = EvaluationHarness(use_raster=True)
        digital = chipvqa.by_category(Category.DIGITAL)
        result_a = analytic.evaluate(model, digital, WITH_CHOICE)
        result_b = raster.evaluate(model, digital, WITH_CHOICE)
        assert result_a.pass_at_1() == result_b.pass_at_1()

    def test_result_metadata(self, chipvqa):
        harness = EvaluationHarness()
        result = harness.evaluate(build_model("fuyu-8b"), chipvqa,
                                  WITH_CHOICE)
        assert result.model_name == "fuyu-8b"
        assert result.dataset_name == "chipvqa"
        assert result.setting == WITH_CHOICE
        assert len(result) == 142

    def test_every_record_has_a_response_or_refusal(self, chipvqa):
        harness = EvaluationHarness()
        result = harness.evaluate(build_model("kosmos-2"), chipvqa,
                                  WITH_CHOICE)
        # weak model: refusals allowed (empty), but records exist for all
        assert len(result) == len(chipvqa)
        assert any(r.response for r in result.records)

    def test_manual_override_changes_outcome(self, chipvqa):
        model = build_model("llava-7b")
        plain = EvaluationHarness().zero_shot_standard(model)
        # find a question the model got wrong and bless its response
        wrong = next(r for r in plain.records if not r.correct)
        registry = ManualCheckRegistry()
        registry.record(wrong.qid, wrong.response, True)
        blessed = EvaluationHarness(
            judge=HybridJudge(manual=registry)).zero_shot_standard(model)
        assert blessed.correct_count() == plain.correct_count() + 1
        assert blessed.manual_check_count() >= 1

    def test_run_table2_structure(self):
        results = run_table2([build_model("paligemma")])
        assert set(results) == {"paligemma"}
        assert set(results["paligemma"]) == {WITH_CHOICE, NO_CHOICE}

    def test_resolution_factor_reaches_model(self, chipvqa):
        harness = EvaluationHarness(use_raster=True)
        model = build_model("gpt-4o")
        digital = chipvqa.by_category(Category.DIGITAL)
        native = harness.evaluate(model, digital, WITH_CHOICE, 1)
        degraded = harness.evaluate(model, digital, WITH_CHOICE, 16)
        assert degraded.pass_at_1() < native.pass_at_1()
        # perception recorded per record drops too
        mean_native = sum(r.perception for r in native.records) / len(native)
        mean_deg = sum(r.perception for r in degraded.records) / len(degraded)
        assert mean_deg < mean_native


class TestRendering:
    def test_table2_row_values_in_range(self):
        results = run_table2([build_model("phi3-vision")])
        from repro.core.report import CATEGORY_ORDER

        row = results["phi3-vision"][WITH_CHOICE].row(CATEGORY_ORDER)
        assert len(row) == 6
        assert all(0.0 <= v <= 1.0 for v in row)

    def test_render_table3_smoke(self):
        from repro.core.report import render_table3

        results = run_table2([build_model("gpt-4o")])
        text = render_table3(results["gpt-4o"], results["gpt-4o"])
        assert text.count("0.") >= 4
