"""Tests for the evaluation harness itself (modes, judges, consistency)."""

import pytest

from repro.core.harness import EvaluationHarness, run_table2
from repro.core.question import Category
from repro.judge import HybridJudge, ManualCheckRegistry
from repro.models import NO_CHOICE, WITH_CHOICE, build_model


class TestHarnessModes:
    def test_analytic_and_raster_agree_at_native(self, chipvqa):
        """The fast analytic perception mode must produce the same outcome
        plan as raster-grounded perception at native resolution."""
        model = build_model("llava-34b")
        analytic = EvaluationHarness(use_raster=False)
        raster = EvaluationHarness(use_raster=True)
        digital = chipvqa.by_category(Category.DIGITAL)
        result_a = analytic.evaluate(model, digital, WITH_CHOICE)
        result_b = raster.evaluate(model, digital, WITH_CHOICE)
        assert result_a.pass_at_1() == result_b.pass_at_1()

    def test_result_metadata(self, chipvqa):
        harness = EvaluationHarness()
        result = harness.evaluate(build_model("fuyu-8b"), chipvqa,
                                  WITH_CHOICE)
        assert result.model_name == "fuyu-8b"
        assert result.dataset_name == "chipvqa"
        assert result.setting == WITH_CHOICE
        assert len(result) == 142

    def test_every_record_has_a_response_or_refusal(self, chipvqa):
        harness = EvaluationHarness()
        result = harness.evaluate(build_model("kosmos-2"), chipvqa,
                                  WITH_CHOICE)
        # weak model: refusals allowed (empty), but records exist for all
        assert len(result) == len(chipvqa)
        assert any(r.response for r in result.records)

    def test_manual_override_changes_outcome(self, chipvqa):
        model = build_model("llava-7b")
        plain = EvaluationHarness().zero_shot_standard(model)
        # find a question the model got wrong and bless its response
        wrong = next(r for r in plain.records if not r.correct)
        registry = ManualCheckRegistry()
        registry.record(wrong.qid, wrong.response, True)
        blessed = EvaluationHarness(
            judge=HybridJudge(manual=registry)).zero_shot_standard(model)
        assert blessed.correct_count() == plain.correct_count() + 1
        assert blessed.manual_check_count() >= 1

    def test_run_table2_structure(self):
        results = run_table2([build_model("paligemma")])
        assert set(results) == {"paligemma"}
        assert set(results["paligemma"]) == {WITH_CHOICE, NO_CHOICE}

    def test_resolution_factor_reaches_model(self, chipvqa):
        harness = EvaluationHarness(use_raster=True)
        model = build_model("gpt-4o")
        digital = chipvqa.by_category(Category.DIGITAL)
        native = harness.evaluate(model, digital, WITH_CHOICE, 1)
        degraded = harness.evaluate(model, digital, WITH_CHOICE, 16)
        assert degraded.pass_at_1() < native.pass_at_1()
        # perception recorded per record drops too
        mean_native = sum(r.perception for r in native.records) / len(native)
        mean_deg = sum(r.perception for r in degraded.records) / len(degraded)
        assert mean_deg < mean_native


class TestResolutionStudyConfig:
    """Regression: resolution_study must reuse the caller's harness —
    subclass behaviour, judge state and all — rather than constructing a
    fresh EvaluationHarness per call."""

    def test_study_runs_through_the_callers_harness(self):
        class VetoHarness(EvaluationHarness):
            """Marks every answer wrong; only observable if the study
            actually evaluates through *this* instance."""

            def __init__(self):
                super().__init__()
                self.judged = 0

            def judge_answer(self, question, answer):
                self.judged += 1
                record = super().judge_answer(question, answer)
                return type(record)(
                    qid=record.qid, category=record.category,
                    response=record.response, correct=False,
                    judge_method=record.judge_method,
                    perception=record.perception)

        harness = VetoHarness()
        study = harness.resolution_study(build_model("gpt-4o"),
                                         factors=(1, 16))
        assert harness.judged > 0
        assert all(result.pass_at_1() == 0.0 for result in study.values())

    def test_study_forwards_manual_judge_overrides(self, chipvqa):
        model = build_model("gpt-4o")
        plain = EvaluationHarness().resolution_study(model, factors=(1,))
        wrong = next(r for r in plain[1].records if not r.correct)
        registry = ManualCheckRegistry()
        registry.record(wrong.qid, wrong.response, True)
        blessed = EvaluationHarness(
            judge=HybridJudge(manual=registry)).resolution_study(
                model, factors=(1,))
        assert blessed[1].correct_count() == plain[1].correct_count() + 1

    def test_study_forces_raster_regardless_of_harness_mode(self):
        """The paper's study is about image quality: raster perception
        stays on per unit even for an analytic-mode harness, without
        flipping that harness's own configuration."""
        harness = EvaluationHarness(use_raster=False)
        study = harness.resolution_study(build_model("gpt-4o"),
                                         factors=(1, 16))
        assert study[16].pass_at_1() < study[1].pass_at_1()
        assert harness.use_raster is False  # caller config untouched

    def test_study_parallel_factors_match_serial(self):
        model = build_model("gpt-4o")
        harness = EvaluationHarness()
        serial = harness.resolution_study(model, factors=(1, 8, 16))
        parallel = harness.resolution_study(model, factors=(1, 8, 16),
                                            workers=3)
        assert {f: r.pass_at_1() for f, r in serial.items()} == \
            {f: r.pass_at_1() for f, r in parallel.items()}

    def test_evaluate_use_raster_override(self, chipvqa):
        """evaluate() takes a per-call perception-mode override instead
        of forcing callers to build a second harness."""
        harness = EvaluationHarness(use_raster=False)
        digital = chipvqa.by_category(Category.DIGITAL)
        model = build_model("gpt-4o")
        degraded = harness.evaluate(model, digital, WITH_CHOICE,
                                    resolution_factor=16, use_raster=True)
        analytic = harness.evaluate(model, digital, WITH_CHOICE,
                                    resolution_factor=16, use_raster=False)
        raster_harness = EvaluationHarness(use_raster=True)
        assert degraded.pass_at_1() == raster_harness.evaluate(
            model, digital, WITH_CHOICE, resolution_factor=16).pass_at_1()
        assert analytic.pass_at_1() != degraded.pass_at_1()


class TestRendering:
    def test_table2_row_values_in_range(self):
        results = run_table2([build_model("phi3-vision")])
        from repro.core.report import CATEGORY_ORDER

        row = results["phi3-vision"][WITH_CHOICE].row(CATEGORY_ORDER)
        assert len(row) == 6
        assert all(0.0 <= v <= 1.0 for v in row)

    def test_render_table3_smoke(self):
        from repro.core.report import render_table3

        results = run_table2([build_model("gpt-4o")])
        text = render_table3(results["gpt-4o"], results["gpt-4o"])
        assert text.count("0.") >= 4
