"""Tests for gate-level netlists, simulation and timing queries."""

import pytest
from hypothesis import given, strategies as st

from repro.digital.expr import equivalent, parse
from repro.digital.gates import (
    GATE_DELAYS,
    Netlist,
    adder_output_value,
    decoder2to4,
    full_adder,
    half_adder,
    mux2,
    ripple_carry_adder,
)


class TestNetlistConstruction:
    def test_duplicate_names_rejected(self):
        netlist = Netlist(["A"])
        netlist.add_gate("X", "NOT", ["A"])
        with pytest.raises(ValueError, match="duplicate"):
            netlist.add_gate("X", "NOT", ["A"])

    def test_unknown_input_rejected(self):
        netlist = Netlist(["A"])
        with pytest.raises(ValueError, match="unknown"):
            netlist.add_gate("X", "NOT", ["Z"])

    def test_unknown_gate_type_rejected(self):
        netlist = Netlist(["A", "B"])
        with pytest.raises(ValueError):
            netlist.add_gate("X", "FROB", ["A", "B"])

    def test_not_arity_enforced(self):
        netlist = Netlist(["A", "B"])
        with pytest.raises(ValueError):
            netlist.add_gate("X", "NOT", ["A", "B"])

    def test_duplicate_primary_inputs_rejected(self):
        with pytest.raises(ValueError):
            Netlist(["A", "A"])


class TestSimulation:
    def test_missing_input_raises(self):
        netlist = Netlist(["A", "B"])
        netlist.add_gate("X", "AND", ["A", "B"])
        with pytest.raises(ValueError, match="missing"):
            netlist.output("X", {"A": True})

    @pytest.mark.parametrize("gate,table", [
        ("AND", {(0, 0): 0, (0, 1): 0, (1, 0): 0, (1, 1): 1}),
        ("OR", {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 1}),
        ("NAND", {(0, 0): 1, (0, 1): 1, (1, 0): 1, (1, 1): 0}),
        ("NOR", {(0, 0): 1, (0, 1): 0, (1, 0): 0, (1, 1): 0}),
        ("XOR", {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 0}),
        ("XNOR", {(0, 0): 1, (0, 1): 0, (1, 0): 0, (1, 1): 1}),
    ])
    def test_two_input_gates(self, gate, table):
        netlist = Netlist(["A", "B"])
        netlist.add_gate("F", gate, ["A", "B"])
        for (a, b), expected in table.items():
            assert netlist.output("F", {"A": bool(a), "B": bool(b)}) \
                == bool(expected)

    def test_truth_table_rows(self):
        rows = half_adder().truth_table("SUM")
        assert [out for _, out in rows] == [0, 1, 1, 0]

    def test_minterms(self):
        assert half_adder().minterms("CARRY") == [3]


class TestLibraryCircuits:
    def test_half_adder(self):
        netlist = half_adder()
        values = netlist.evaluate({"A": True, "B": True})
        assert values["SUM"] is False and values["CARRY"] is True

    def test_full_adder_all_rows(self):
        netlist = full_adder()
        for a in (0, 1):
            for b in (0, 1):
                for cin in (0, 1):
                    values = netlist.evaluate(
                        {"A": bool(a), "B": bool(b), "CIN": bool(cin)})
                    total = a + b + cin
                    assert int(values["SUM"]) == total % 2
                    assert int(values["COUT"]) == total // 2

    def test_mux2_selects(self):
        netlist = mux2()
        assert netlist.output("OUT", {"S": False, "A": True, "B": False})
        assert not netlist.output("OUT", {"S": True, "A": True, "B": False})

    def test_decoder_one_hot(self):
        netlist = decoder2to4()
        for a1 in (0, 1):
            for a0 in (0, 1):
                values = netlist.evaluate({"A1": bool(a1), "A0": bool(a0)})
                active = [values[f"Y{i}"] for i in range(4)]
                assert sum(active) == 1
                assert active[2 * a1 + a0]

    def test_to_expr_matches_simulation(self):
        netlist = mux2()
        expr = netlist.to_expr("OUT")
        assert equivalent(expr, parse("S'A + SB"))


class TestRippleCarryAdder:
    @given(st.integers(0, 15), st.integers(0, 15), st.integers(0, 1))
    def test_adds_correctly_4bit(self, a, b, cin):
        netlist = ripple_carry_adder(4)
        assert adder_output_value(netlist, 4, a, b, cin) == a + b + cin

    def test_width_validation(self):
        with pytest.raises(ValueError):
            ripple_carry_adder(0)

    def test_carry_chain_depth_grows_linearly(self):
        lvl4 = ripple_carry_adder(4).level("C4")
        lvl8 = ripple_carry_adder(8).level("C8")
        assert lvl8 - lvl4 == 8  # two levels per extra slice


class TestTiming:
    def test_arrival_time_uses_slowest_input(self):
        netlist = Netlist(["A", "B"])
        netlist.add_gate("N", "NOT", ["A"])
        netlist.add_gate("F", "AND", ["N", "B"])
        expected = GATE_DELAYS["NOT"] + GATE_DELAYS["AND"]
        assert netlist.arrival_time("F") == pytest.approx(expected)

    def test_critical_path_nodes(self):
        netlist = Netlist(["A", "B", "C"])
        netlist.add_gate("S", "XOR", ["A", "B"])  # slow gate
        netlist.add_gate("F", "AND", ["S", "C"])
        assert netlist.critical_path("F") == ["A", "S", "F"] or \
            netlist.critical_path("F") == ["B", "S", "F"]

    def test_level_of_primary_input_is_zero(self):
        netlist = Netlist(["A"])
        assert netlist.level("A") == 0

    def test_gate_count(self):
        assert full_adder().gate_count() == 5
