"""Tests for image export and contact sheets."""

import numpy as np
import pytest

from repro.core.dataset import Dataset
from repro.visual.export import (
    contact_sheet,
    export_dataset_figures,
    load_pgm,
    save_pgm,
    side_by_side,
)


class TestPgm:
    def test_round_trip(self, tmp_path):
        image = np.arange(48, dtype=np.uint8).reshape(6, 8)
        path = save_pgm(tmp_path / "x.pgm", image)
        restored = load_pgm(path)
        assert (restored == image).all()

    def test_rejects_color(self, tmp_path):
        with pytest.raises(ValueError):
            save_pgm(tmp_path / "x.pgm",
                     np.zeros((4, 4, 3), dtype=np.uint8))

    def test_rejects_wrong_dtype(self, tmp_path):
        with pytest.raises(ValueError):
            save_pgm(tmp_path / "x.pgm", np.zeros((4, 4), dtype=np.int32))

    def test_load_rejects_non_pgm(self, tmp_path):
        path = tmp_path / "bad.pgm"
        path.write_bytes(b"P6 2 2 255\n" + bytes(12))
        with pytest.raises(ValueError):
            load_pgm(path)


class TestComposition:
    def test_side_by_side_width(self):
        a = np.zeros((4, 5), dtype=np.uint8)
        b = np.zeros((6, 7), dtype=np.uint8)
        combined = side_by_side([a, b], gap=3)
        assert combined.shape == (6, 5 + 3 + 7)

    def test_side_by_side_empty_raises(self):
        with pytest.raises(ValueError):
            side_by_side([])

    def test_contact_sheet_shape(self, chipvqa):
        questions = list(chipvqa)[:6]
        sheet = contact_sheet(questions, columns=3)
        assert sheet.ndim == 2
        assert (sheet < 255).any()

    def test_contact_sheet_validation(self, chipvqa):
        with pytest.raises(ValueError):
            contact_sheet([], columns=2)
        with pytest.raises(ValueError):
            contact_sheet(list(chipvqa)[:2], columns=0)


class TestDatasetExport:
    def test_export_with_limit(self, chipvqa, tmp_path):
        written = export_dataset_figures(chipvqa, tmp_path, limit=3)
        assert len(written) == 3
        for path in written:
            image = load_pgm(path)
            assert image.size > 0
