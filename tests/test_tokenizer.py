"""Unit and property tests for the deterministic word-piece tokenizer."""

import pytest
from hypothesis import given, strategies as st

from repro.tokenizer import WordPieceTokenizer, default_tokenizer


@pytest.fixture(scope="module")
def tok():
    return WordPieceTokenizer()


class TestBasics:
    def test_empty_string(self, tok):
        assert tok.tokenize("") == []
        assert tok.count("") == 0

    def test_whitespace_only(self, tok):
        assert tok.count("   \t\n") == 0

    def test_simple_sentence(self, tok):
        pieces = tok.tokenize("What is the voltage across RL?")
        assert pieces[0] == "what"
        assert "?" in pieces

    def test_punctuation_separate_tokens(self, tok):
        assert tok.count("a,b") == 3

    def test_numbers_tokenize(self, tok):
        pieces = tok.tokenize("R1 = 4700")
        assert "=" in pieces

    def test_case_insensitive(self, tok):
        assert tok.count("VOLTAGE") == tok.count("voltage")

    def test_known_word_single_token(self, tok):
        assert tok.tokenize("voltage") == ["voltage"]

    def test_unknown_word_multiple_pieces(self, tok):
        pieces = tok.tokenize("xylophonist")
        assert len(pieces) > 1
        assert all(p.startswith("##") for p in pieces[1:])

    def test_deterministic(self, tok):
        text = "Compute the Elmore delay of the RC ladder shown."
        assert tok.tokenize(text) == tok.tokenize(text)

    def test_extra_vocab(self):
        custom = WordPieceTokenizer(extra_vocab=["zzyzx"])
        assert custom.tokenize("zzyzx") == ["zzyzx"]

    def test_default_tokenizer_is_shared(self):
        assert default_tokenizer() is default_tokenizer()


class TestWordMemoization:
    def test_memoized_output_unchanged(self):
        """The per-word cache must not change tokenization: a warmed
        tokenizer agrees with a fresh one on every prompt word."""
        corpus = [
            "What is the voltage across RL?",
            "Compute the Elmore delay of the RC ladder shown.",
            "What is the voltage across RL?",  # repeats hit the cache
            "xylophonist xylophonist 4700 kohm",
        ]
        warmed = WordPieceTokenizer()
        for text in corpus:
            warmed.tokenize(text)  # warm the word cache
        for text in corpus:
            assert warmed.tokenize(text) == \
                WordPieceTokenizer().tokenize(text)

    def test_repeated_words_populate_cache_once(self):
        tok = WordPieceTokenizer()
        tok.tokenize("clock clock clock signal")
        assert len(tok._word_cache) == 2  # 'clock' and 'signal'

    def test_cache_is_bounded(self):
        tok = WordPieceTokenizer()
        tok.word_cache_limit = 8
        for i in range(100):
            tok.tokenize(f"word{i}")
        assert len(tok._word_cache) <= 8
        # eviction never changes results
        assert tok.tokenize("word0") == WordPieceTokenizer().tokenize("word0")


class TestDetokenize:
    def test_round_trip_words(self, tok):
        text = "the clock signal"
        assert tok.detokenize(tok.tokenize(text)) == text

    def test_continuations_rejoin(self, tok):
        pieces = tok.tokenize("xylophonist")
        assert tok.detokenize(pieces) == "xylophonist"


@given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126),
               max_size=200))
def test_every_ascii_string_tokenizes(text):
    tok = default_tokenizer()
    pieces = tok.tokenize(text)
    assert isinstance(pieces, list)
    # token count is bounded by character count (no token is empty)
    assert len(pieces) <= len(text)


@given(st.lists(st.sampled_from(
    ["voltage", "clock", "the", "delay", "cache", "etch"]),
    min_size=1, max_size=20))
def test_word_sequences_round_trip(words):
    tok = default_tokenizer()
    text = " ".join(words)
    assert tok.detokenize(tok.tokenize(text)) == text


@given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz ", min_size=1,
               max_size=100))
def test_count_is_additive_over_concatenation_bound(text):
    # Splitting into halves can only change the count at the boundary word.
    tok = default_tokenizer()
    mid = len(text) // 2
    combined = tok.count(text)
    parts = tok.count(text[:mid]) + tok.count(text[mid:])
    assert combined <= parts + 2
