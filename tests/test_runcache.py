"""Tests for the content-keyed run cache: key coverage (mutating any
input component yields a new key) and hit-rate accounting."""

import dataclasses
import random

import pytest

from repro.core.question import Category
from repro.core.runcache import (
    RunCache,
    cohort_digest,
    question_digest,
    question_key,
)
from repro.core.runner import ParallelRunner, WorkUnit
from repro.core.transforms import to_short_answer
from repro.models import (
    NO_CHOICE,
    WITH_CHOICE,
    RemoteStubProvider,
    build_model,
)


@pytest.fixture(scope="module")
def question(chipvqa):
    return chipvqa.by_category(Category.DIGITAL)[0]


def _key(question, **overrides):
    params = dict(model_name="gpt-4o", question=question,
                  setting=WITH_CHOICE, resolution_factor=1,
                  use_raster=False, cohort="c0")
    params.update(overrides)
    return question_key(**params)


class TestKeyCoverage:
    def test_key_is_stable(self, question):
        assert _key(question) == _key(question)

    def test_model_identity_changes_key(self, question):
        assert _key(question) != _key(question, model_name="llava-7b")

    def test_setting_changes_key(self, question):
        assert _key(question) != _key(question, setting=NO_CHOICE)

    def test_resolution_factor_changes_key(self, question):
        assert _key(question) != _key(question, resolution_factor=16)

    def test_perception_mode_changes_key(self, question):
        assert _key(question) != _key(question, use_raster=True)

    def test_cohort_changes_key(self, question):
        assert _key(question) != _key(question, cohort="c1")

    def test_provider_fingerprint_changes_key(self, question):
        assert _key(question) != _key(
            question, provider_fingerprint="deadbeef")

    def test_question_content_changes_key(self, question):
        """Property-style: mutating any serialised question field —
        not just the qid — produces a new key."""
        rng = random.Random(7)
        mutations = [
            dataclasses.replace(question, qid=question.qid + "-x"),
            dataclasses.replace(question, prompt=question.prompt + " ?"),
            dataclasses.replace(
                question,
                difficulty=round(rng.uniform(0, 1), 3)
                if round(rng.uniform(0, 1), 3) != question.difficulty
                else 0.123),
            dataclasses.replace(question, topics=question.topics + ("new",)),
            dataclasses.replace(question, explanation="edited"),
            to_short_answer(question),  # answer spec + choices change
        ]
        base = _key(question)
        keys = [_key(mutant) for mutant in mutations]
        assert base not in keys
        assert len(set(keys)) == len(keys)

    def test_question_digest_tracks_content(self, question):
        same = dataclasses.replace(question)
        assert question_digest(same) == question_digest(question)
        edited = dataclasses.replace(question, prompt="other")
        assert question_digest(edited) != question_digest(question)

    def test_cohort_digest_order_independent(self, chipvqa):
        digital = list(chipvqa.by_category(Category.DIGITAL))
        assert cohort_digest(digital) == cohort_digest(reversed(digital))
        assert cohort_digest(digital) != cohort_digest(digital[:-1])


class TestRunCache:
    def test_get_put_and_counters(self, question):
        cache = RunCache()
        key = _key(question)
        assert cache.get(key) is None
        assert (cache.hits, cache.misses) == (0, 1)
        sentinel = object()
        cache.put(key, sentinel)
        assert cache.get(key) is sentinel
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate() == 0.5
        assert len(cache) == 1
        assert key in cache

    def test_peek_does_not_count(self, question):
        cache = RunCache()
        assert cache.peek(_key(question)) is None
        assert (cache.hits, cache.misses) == (0, 0)
        assert cache.hit_rate() == 0.0

    def test_clear(self, question):
        cache = RunCache()
        cache.put(_key(question), object())
        cache.get(_key(question))
        cache.clear()
        assert len(cache) == 0
        assert (cache.hits, cache.misses) == (0, 0)


class TestHitRateMatchesReuse:
    def test_run_stats_hit_rate_equals_actual_reuse(self, chipvqa):
        """Evaluating the same unit twice in one run must report exactly
        half the lookups as hits — in both the cache's own counters and
        the runner's RunStats."""
        digital = chipvqa.by_category(Category.DIGITAL)
        cache = RunCache()
        runner = ParallelRunner(cache=cache)
        unit = WorkUnit(model=build_model("gpt-4o"), dataset=digital,
                        setting=WITH_CHOICE)
        first = runner.run([unit])
        second = runner.run([unit])
        n = len(digital)
        assert first.stats.cache_misses == n
        assert first.stats.cache_hits == 0
        assert second.stats.cache_hits == n
        assert second.stats.cache_misses == 0
        assert second.stats.cache_hit_rate() == 1.0
        # global cache counters agree with the per-run telemetry
        assert cache.hits == n
        assert cache.misses == n
        assert cache.hit_rate() == 0.5

    def test_different_models_never_share_entries(self, chipvqa):
        digital = chipvqa.by_category(Category.DIGITAL)
        cache = RunCache()
        runner = ParallelRunner(cache=cache)
        units = [WorkUnit(model=build_model(name), dataset=digital,
                          setting=WITH_CHOICE)
                 for name in ("gpt-4o", "llava-7b")]
        outcome = runner.run(units)
        assert outcome.stats.cache_hits == 0
        assert len(cache) == 2 * len(digital)

    def test_subset_shares_cohort_with_full_collection(self, chipvqa):
        """The per-category cohort key lets the full collection and its
        category subset reuse each other's records (quota context is
        identical), while an arbitrary slice must not."""
        digital = chipvqa.by_category(Category.DIGITAL)
        cache = RunCache()
        runner = ParallelRunner(cache=cache)
        model = build_model("gpt-4o")
        runner.run([WorkUnit(model=model, dataset=chipvqa,
                             setting=WITH_CHOICE)])
        subset_run = runner.run([WorkUnit(model=model, dataset=digital,
                                          setting=WITH_CHOICE)])
        assert subset_run.stats.cache_hits == len(digital)
        assert subset_run.stats.cache_misses == 0

        half = digital.filter(
            lambda q: q.qid <= sorted(x.qid for x in digital)[17],
            name="chipvqa/dig-half")
        half_run = runner.run([WorkUnit(model=model, dataset=half,
                                        setting=WITH_CHOICE)])
        # different cohort => no reuse: a half-category quota differs
        assert half_run.stats.cache_hits == 0


class TestProviderAliasing:
    """Regression: the cache keys on provider *configuration*, not just
    the display name (the pre-provider keys used the name alone, so a
    remote stub wrapping ``gpt-4o`` would silently serve the local
    model's verdicts)."""

    def test_differently_configured_providers_never_alias(self, chipvqa):
        digital = chipvqa.by_category(Category.DIGITAL)
        local = build_model("gpt-4o")
        remote = RemoteStubProvider(build_model("gpt-4o"), seed=3)
        # same display name, different serving configuration
        assert local.name == remote.name
        assert local.config_fingerprint() != remote.config_fingerprint()
        cache = RunCache()
        runner = ParallelRunner(cache=cache)
        runner.run([WorkUnit(model=local, dataset=digital,
                             setting=WITH_CHOICE)])
        second = runner.run([WorkUnit(model=remote, dataset=digital,
                                      setting=WITH_CHOICE)])
        assert second.stats.cache_hits == 0
        assert len(cache) == 2 * len(digital)

    def test_identically_configured_builds_share_entries(self, chipvqa):
        """Fingerprints are content-addressed: two independent builds of
        the same zoo entry are the same provider to the cache."""
        digital = chipvqa.by_category(Category.DIGITAL)
        first, second = build_model("gpt-4o"), build_model("gpt-4o")
        assert first is not second
        assert (first.config_fingerprint()
                == second.config_fingerprint())
        cache = RunCache()
        runner = ParallelRunner(cache=cache)
        runner.run([WorkUnit(model=first, dataset=digital,
                             setting=WITH_CHOICE)])
        replay = runner.run([WorkUnit(model=second, dataset=digital,
                                      setting=WITH_CHOICE)])
        assert replay.stats.cache_hits == len(digital)
        assert replay.stats.cache_misses == 0
