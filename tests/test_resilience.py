"""Tests for the resilience layer: circuit breaker, deadlines and
watchdog, question-level quarantine, resume-rejection counters — plus
the retry/boundary edge cases they compose with."""

import pytest

from repro.core import results_io
from repro.core.faults import (
    CompositeBoundary,
    FaultBoundary,
    PermanentError,
    PoisonedQuestions,
    RecordingBoundary,
    TransientModelError,
)
from repro.core.question import Category
from repro.core.resilience import (
    QUARANTINED_METHOD,
    AdmissionPolicy,
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    DeadlineExceeded,
    QuarantinePolicy,
    Watchdog,
    count_quarantined,
    quarantined_record,
)
from repro.core.runner import (
    ParallelRunner,
    RetryPolicy,
    WorkUnit,
    read_manifest,
)
from repro.models import WITH_CHOICE, build_model


class FakeClock:
    """A manually-advanced monotonic clock for deadline tests."""

    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _model_units(chipvqa, model_name="gpt-4o",
                 categories=(Category.DIGITAL, Category.ANALOG,
                             Category.ARCHITECTURE, Category.PHYSICAL)):
    """Several units of the *same* model (distinct category subsets)."""
    model = build_model(model_name)
    return [WorkUnit(model=model, dataset=chipvqa.by_category(category),
                     setting=WITH_CHOICE) for category in categories]


def _units(chipvqa, model_names=("gpt-4o", "llava-7b", "kosmos-2"),
           category=Category.DIGITAL):
    subset = chipvqa.by_category(category)
    return [WorkUnit(model=build_model(name), dataset=subset,
                     setting=WITH_CHOICE) for name in model_names]


class _ModelDown(FaultBoundary):
    """Every crossing of the named model's units fails."""

    def __init__(self, model_slug, error=PermanentError):
        self.model_slug = model_slug
        self.error = error

    def check(self, unit_id, qid):
        if unit_id.startswith(self.model_slug):
            raise self.error(f"{self.model_slug} is down")


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3)
        assert breaker.allow("m")
        breaker.record_failure("m")
        breaker.record_failure("m")
        assert breaker.allow("m")
        assert breaker.record_failure("m") is True  # the opening trip
        assert not breaker.allow("m")
        assert breaker.state("m") == "open"
        assert breaker.open_keys() == ["m"]
        with pytest.raises(CircuitOpenError, match="circuit open"):
            breaker.check("m")

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure("m")
        breaker.record_success("m")
        breaker.record_failure("m")
        assert breaker.allow("m")  # never two in a row

    def test_keys_are_independent(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure("bad")
        assert not breaker.allow("bad")
        assert breaker.allow("good")

    def test_fast_fail_counting_and_snapshot(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure("m", "PermanentError: down")
        breaker.record_fast_fail("m")
        breaker.record_fast_fail("m")
        assert breaker.fast_fail_count("m") == 2
        assert breaker.fast_fail_count() == 2
        snap = breaker.as_dict()
        assert snap["open"] == ["m"]
        assert snap["fast_fails"] == {"m": 2}

    def test_reset_closes_circuit(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure("m")
        breaker.reset("m")
        assert breaker.allow("m")

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_s=-1.0)


class TestHalfOpenBreaker:
    def test_cooldown_admits_exactly_one_trial(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=5.0,
                                 clock=clock)
        breaker.record_failure("m", "down")
        assert breaker.state("m") == "open"
        assert not breaker.allow("m")
        clock.advance(4.9)
        assert not breaker.allow("m")  # still cooling
        clock.advance(0.1)
        assert breaker.state("m") == "half_open"
        assert breaker.allow("m")       # the single trial probe
        assert not breaker.allow("m")   # one probe at a time
        assert breaker.state("m") == "half_open"

    def test_successful_trial_closes_the_circuit(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=1.0,
                                 clock=clock)
        breaker.record_failure("m")
        clock.advance(1.0)
        assert breaker.allow("m")
        breaker.record_success("m")
        assert breaker.state("m") == "closed"
        assert breaker.allow("m")
        assert breaker.open_keys() == []

    def test_failed_trial_rearms_the_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=5.0,
                                 clock=clock)
        breaker.record_failure("m", "down")
        clock.advance(5.0)
        assert breaker.allow("m")
        # the trial fails: back to fully open, cooldown restarted
        assert breaker.record_failure("m", "still down") is False
        assert breaker.state("m") == "open"
        assert not breaker.allow("m")
        clock.advance(4.9)
        assert not breaker.allow("m")
        clock.advance(0.1)
        assert breaker.allow("m")  # next probe after the fresh cooldown

    def test_without_cooldown_the_circuit_never_half_opens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, clock=clock)
        breaker.record_failure("m")
        clock.advance(10_000.0)
        assert breaker.state("m") == "open"
        assert not breaker.allow("m")

    def test_snapshot_keys_appear_only_when_configured(self):
        plain = CircuitBreaker(failure_threshold=1)
        plain.record_failure("m")
        snap = plain.as_dict()
        assert "cooldown_s" not in snap and "half_open" not in snap

        clock = FakeClock()
        probing = CircuitBreaker(failure_threshold=1, cooldown_s=2.0,
                                 clock=clock)
        probing.record_failure("m", "down")
        clock.advance(2.0)
        assert probing.allow("m")
        snap = probing.as_dict()
        assert snap["cooldown_s"] == 2.0
        assert snap["half_open"] == ["m"]
        assert snap["open"] == ["m"]


class TestBreakerInRunner:
    def test_fast_fails_remaining_units_of_open_model(self, chipvqa,
                                                      tmp_path):
        units = _model_units(chipvqa)
        spy = RecordingBoundary()
        boundary = CompositeBoundary(spy, _ModelDown("gpt-4o"))
        breaker = CircuitBreaker(failure_threshold=2)
        runner = ParallelRunner(workers=1, run_dir=tmp_path,
                                fault_boundary=boundary, breaker=breaker,
                                sleep=lambda d: None)
        outcome = runner.run(units)
        # all four units failed, but only the first two crossed the
        # boundary: the breaker opened and fast-failed the rest
        assert set(outcome.failures) == {u.unit_id for u in units}
        assert spy.units_evaluated() == [units[0].unit_id,
                                         units[1].unit_id]
        manifest = read_manifest(tmp_path)
        statuses = [u["status"] for u in manifest["units"]]
        assert statuses == ["failed", "failed", "fast_failed",
                            "fast_failed"]
        assert manifest["totals"]["fast_failed"] == 2
        assert manifest["breaker"]["open"] == ["gpt-4o"]
        for unit_id in (units[2].unit_id, units[3].unit_id):
            assert "CircuitOpenError" in outcome.failures[unit_id]

    def test_fast_fail_spends_no_retry_budget(self, chipvqa):
        units = _model_units(chipvqa)
        sleeps = []
        runner = ParallelRunner(
            workers=1,
            fault_boundary=_ModelDown("gpt-4o", error=TransientModelError),
            breaker=CircuitBreaker(failure_threshold=1),
            retry=RetryPolicy(max_attempts=4, base_delay=0.1),
            sleep=sleeps.append)
        outcome = runner.run(units)
        assert len(outcome.failures) == len(units)
        # only the first unit burned backoff; the rest fast-failed
        assert len(sleeps) == 3

    def test_healthy_models_unaffected_by_open_circuit(self, chipvqa):
        units = _units(chipvqa)
        runner = ParallelRunner(
            workers=1, fault_boundary=_ModelDown("llava-7b"),
            breaker=CircuitBreaker(failure_threshold=1),
            sleep=lambda d: None)
        outcome = runner.run(units)
        assert set(outcome.failures) == {units[1].unit_id}
        assert set(outcome.results) == {units[0].unit_id,
                                        units[2].unit_id}


class TestDeadline:
    def test_expiry_and_remaining(self):
        clock = FakeClock()
        deadline = Deadline(2.0, clock=clock)
        assert not deadline.expired
        assert deadline.remaining() == pytest.approx(2.0)
        clock.advance(1.5)
        assert deadline.remaining() == pytest.approx(0.5)
        clock.advance(1.0)
        assert deadline.expired
        assert deadline.remaining() == 0.0
        with pytest.raises(DeadlineExceeded, match="deadline"):
            deadline.check("unit-x", "q-1")

    def test_validation(self):
        with pytest.raises(ValueError):
            Deadline(-1.0)

    def test_deadline_exceeded_is_not_transient(self):
        assert not issubclass(DeadlineExceeded, TransientModelError)


class _SlowUnit(FaultBoundary):
    """Advance a fake clock on every crossing of one unit."""

    def __init__(self, unit_id, clock, per_question):
        self.unit_id = unit_id
        self.clock = clock
        self.per_question = per_question

    def check(self, unit_id, qid):
        if unit_id == self.unit_id:
            self.clock.advance(self.per_question)


class TestDeadlineInRunner:
    def test_overdue_unit_times_out_others_complete(self, chipvqa,
                                                    tmp_path):
        units = _units(chipvqa)
        clock = FakeClock()
        victim = units[1].unit_id
        runner = ParallelRunner(
            workers=1, run_dir=tmp_path,
            fault_boundary=_SlowUnit(victim, clock, per_question=3.0),
            deadline_s=5.0, clock=clock, sleep=lambda d: None)
        outcome = runner.run(units)
        assert set(outcome.failures) == {victim}
        assert "DeadlineExceeded" in outcome.failures[victim]
        manifest = read_manifest(tmp_path)
        statuses = {u["unit_id"]: u["status"] for u in manifest["units"]}
        assert statuses[victim] == "timed_out"
        assert sorted(statuses.values()) == ["completed", "completed",
                                             "timed_out"]
        assert manifest["totals"]["timed_out"] == 1
        # the timed-out unit wrote no checkpoint
        assert not (tmp_path / f"{victim}.jsonl").exists()

    def test_overdue_unit_skips_retry_backoff(self, chipvqa):
        """Once overdue, a transient fault must not trigger more
        backoff sleeps: the deadline check fires before the sleep."""
        units = _units(chipvqa, ("gpt-4o",))
        clock = FakeClock()
        unit_id = units[0].unit_id

        class _SlowFlake(FaultBoundary):
            """Burn the clock, then keep failing transiently."""

            def check(self, inner_unit_id, qid):
                clock.advance(10.0)
                raise TransientModelError("still flapping")

        sleeps = []
        runner = ParallelRunner(
            workers=1, fault_boundary=_SlowFlake(),
            retry=RetryPolicy(max_attempts=5, base_delay=0.1),
            deadline_s=5.0, clock=clock, sleep=sleeps.append)
        outcome = runner.run(units)
        assert "DeadlineExceeded" in outcome.failures[unit_id]
        assert sleeps == []

    def test_breaker_counts_timeouts(self, chipvqa):
        """Deadline timeouts feed the circuit breaker like any other
        unit failure."""
        units = _model_units(chipvqa,
                             categories=(Category.DIGITAL,
                                         Category.ANALOG,
                                         Category.ARCHITECTURE))
        clock = FakeClock()

        class _AllSlow(FaultBoundary):
            def check(self, unit_id, qid):
                clock.advance(10.0)

        breaker = CircuitBreaker(failure_threshold=2)
        runner = ParallelRunner(
            workers=1, fault_boundary=_AllSlow(), breaker=breaker,
            deadline_s=5.0, clock=clock, sleep=lambda d: None)
        outcome = runner.run(units)
        assert len(outcome.failures) == 3
        assert not breaker.allow("gpt-4o")
        assert "CircuitOpenError" in outcome.failures[units[2].unit_id]


class _StatsStub:
    """Duck-typed stand-in for UnitStats in watchdog unit tests."""

    def __init__(self):
        self.status = "pending"
        self.error = None


class TestWatchdog:
    def test_sweep_marks_overdue_units(self):
        clock = FakeClock()
        fired = []
        watchdog = Watchdog(clock=clock, on_timeout=fired.append)
        healthy, wedged = _StatsStub(), _StatsStub()
        watchdog.register("healthy", Deadline(10.0, clock=clock), healthy)
        watchdog.register("wedged", Deadline(1.0, clock=clock), wedged)
        assert watchdog.sweep() == []
        clock.advance(2.0)
        assert watchdog.sweep() == ["wedged"]
        assert wedged.status == "timed_out"
        assert "overdue" in wedged.error
        assert healthy.status == "pending"
        assert fired == ["wedged"]
        assert watchdog.timed_out == ["wedged"]
        # marked once, not again on the next pass
        assert watchdog.sweep() == []

    def test_unregistered_unit_is_not_marked(self):
        clock = FakeClock()
        watchdog = Watchdog(clock=clock)
        stats = _StatsStub()
        watchdog.register("u", Deadline(1.0, clock=clock), stats)
        watchdog.unregister("u")
        clock.advance(5.0)
        assert watchdog.sweep() == []
        assert stats.status == "pending"

    def test_daemon_thread_lifecycle(self):
        watchdog = Watchdog(interval=0.005)
        watchdog.start()
        watchdog.start()  # idempotent
        assert watchdog._thread is not None
        watchdog.stop()
        assert watchdog._thread is None
        watchdog.stop()  # idempotent

    def test_validation(self):
        with pytest.raises(ValueError):
            Watchdog(interval=0.0)

    def test_runner_tears_watchdog_down(self, chipvqa):
        runner = ParallelRunner(workers=1, deadline_s=60.0)
        outcome = runner.run(_units(chipvqa, ("gpt-4o",)))
        assert not outcome.failures
        assert runner._watchdog is None


class TestQuarantinePolicy:
    def test_admit_budget(self):
        assert QuarantinePolicy().admit(10 ** 6)
        bounded = QuarantinePolicy(max_per_unit=2)
        assert bounded.admit(0) and bounded.admit(1)
        assert not bounded.admit(2)
        assert not QuarantinePolicy(max_per_unit=0).admit(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            QuarantinePolicy(max_per_unit=-1)

    def test_quarantined_record_is_deterministic(self, chipvqa):
        question = chipvqa.by_category(Category.DIGITAL)[0]
        record = quarantined_record(question)
        assert record.qid == question.qid
        assert record.category == question.category
        assert record.correct is False
        assert record.judge_method == QUARANTINED_METHOD
        assert record.response == ""
        assert record.perception == 0.0
        assert record == quarantined_record(question)
        assert count_quarantined([record]) == 1


class TestQuarantineInRunner:
    def test_poison_question_salvages_rest_of_unit(self, chipvqa,
                                                   tmp_path):
        units = _units(chipvqa)
        qids = [q.qid for q in chipvqa.by_category(Category.DIGITAL)]
        poison_key = f"{units[1].unit_id}::{qids[3]}"
        runner = ParallelRunner(
            workers=1, run_dir=tmp_path,
            fault_boundary=PoisonedQuestions({poison_key}),
            quarantine=QuarantinePolicy(), sleep=lambda d: None)
        outcome = runner.run(units)
        # the poisoned unit completed — salvaged around one question
        assert not outcome.failures
        salvaged = outcome.result_for(units[1])
        assert salvaged.quarantined_count() == 1
        bad = [r for r in salvaged.records if r.qid == qids[3]][0]
        assert bad.judge_method == QUARANTINED_METHOD and not bad.correct
        # the other records match the clean evaluation
        clean = ParallelRunner(workers=1).run(units)
        for mine, ref in zip(salvaged.records,
                             clean.result_for(units[1]).records):
            if mine.qid != qids[3]:
                assert mine == ref
        # counts flow into the manifest and the checkpoint
        manifest = read_manifest(tmp_path)
        per_unit = {u["unit_id"]: u for u in manifest["units"]}
        assert per_unit[units[1].unit_id]["quarantined"] == 1
        assert manifest["totals"]["quarantined"] == 1
        reloaded = results_io.load(tmp_path / f"{units[1].unit_id}.jsonl")
        assert reloaded.quarantined_count() == 1
        assert outcome.result_for(units[1]).telemetry["quarantined"] == 1.0

    def test_without_policy_permanent_fault_fails_unit(self, chipvqa):
        units = _units(chipvqa, ("gpt-4o",))
        qid = chipvqa.by_category(Category.DIGITAL)[0].qid
        runner = ParallelRunner(
            fault_boundary=PoisonedQuestions({qid}), sleep=lambda d: None)
        outcome = runner.run(units)
        assert set(outcome.failures) == {units[0].unit_id}

    def test_budget_exceeded_fails_unit_as_poisoned(self, chipvqa):
        units = _units(chipvqa, ("gpt-4o",))
        qids = [q.qid for q in chipvqa.by_category(Category.DIGITAL)]
        runner = ParallelRunner(
            fault_boundary=PoisonedQuestions(set(qids[:3])),
            quarantine=QuarantinePolicy(max_per_unit=2),
            sleep=lambda d: None)
        outcome = runner.run(units)
        assert set(outcome.failures) == {units[0].unit_id}
        assert "PermanentError" in outcome.failures[units[0].unit_id]

    def test_quarantine_artifacts_deterministic_across_workers(
            self, chipvqa, tmp_path):
        units = _units(chipvqa)
        qids = [q.qid for q in chipvqa.by_category(Category.DIGITAL)]
        poison = {qids[1], f"{units[2].unit_id}::{qids[5]}"}

        def run(workers, run_dir):
            runner = ParallelRunner(
                workers=workers, run_dir=run_dir,
                fault_boundary=PoisonedQuestions(poison),
                quarantine=QuarantinePolicy(), sleep=lambda d: None)
            assert not runner.run(units).failures

        run(1, tmp_path / "serial")
        run(8, tmp_path / "parallel")
        serial = {p.name: p.read_bytes()
                  for p in sorted((tmp_path / "serial").glob("*.jsonl"))}
        parallel = {p.name: p.read_bytes()
                    for p in sorted((tmp_path / "parallel").glob("*.jsonl"))}
        assert serial == parallel


class TestResumeRejectionCounters:
    def test_corrupt_checkpoint_counted_and_reevaluated(self, chipvqa,
                                                        tmp_path):
        units = _units(chipvqa)
        ParallelRunner(workers=1, run_dir=tmp_path).run(units)
        reference = {p.name: p.read_bytes()
                     for p in sorted(tmp_path.glob("*.jsonl"))}
        victim = tmp_path / f"{units[1].unit_id}.jsonl"
        victim.write_bytes(
            victim.read_bytes().replace(b'"correct"', b'"cXrrect"', 1))
        outcome = ParallelRunner(workers=1, run_dir=tmp_path).run(units)
        assert not outcome.failures
        assert outcome.stats.corrupt_checkpoints == 1
        assert outcome.stats.stale_checkpoints == 0
        manifest = read_manifest(tmp_path)
        per_unit = {u["unit_id"]: u for u in manifest["units"]}
        assert per_unit[units[1].unit_id]["corrupt_checkpoints"] == 1
        assert manifest["totals"]["corrupt_checkpoints"] == 1
        # the damaged checkpoint was re-evaluated back to reference bytes
        assert {p.name: p.read_bytes()
                for p in sorted(tmp_path.glob("*.jsonl"))} == reference

    def test_stale_checkpoint_counted(self, chipvqa, tmp_path):
        units = _units(chipvqa, ("gpt-4o",))
        ParallelRunner(workers=1, run_dir=tmp_path).run(units)
        path = tmp_path / f"{units[0].unit_id}.jsonl"
        # a *valid* file whose record count disagrees with the dataset
        shrunk = results_io.load(path)
        shrunk.records.pop()
        results_io.save(shrunk, path)
        outcome = ParallelRunner(workers=1, run_dir=tmp_path).run(units)
        assert not outcome.failures
        assert outcome.stats.stale_checkpoints == 1
        assert outcome.stats.corrupt_checkpoints == 0


class TestRetryPolicyBounds:
    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            RetryPolicy().delay(0)
        with pytest.raises(ValueError):
            RetryPolicy().delay(-3)

    def test_large_attempts_stay_capped(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.05,
                             multiplier=2.0, max_delay=1.5)
        # no overflow, no runaway growth: the cap holds forever
        assert policy.delay(50) == 1.5
        assert policy.delay(500) == 1.5

    def test_zero_base_delay_never_sleeps(self):
        policy = RetryPolicy(base_delay=0.0, max_delay=10.0)
        assert [policy.delay(a) for a in (1, 2, 5)] == [0.0, 0.0, 0.0]

    def test_multiplier_one_is_constant_backoff(self):
        policy = RetryPolicy(base_delay=0.2, multiplier=1.0, max_delay=5.0)
        assert [policy.delay(a) for a in (1, 3, 9)] == [0.2, 0.2, 0.2]


class TestCompositeBoundary:
    def test_visits_all_in_order(self):
        first, second = RecordingBoundary(), RecordingBoundary()
        composite = CompositeBoundary(first, second)
        composite("u", "q1")
        composite("u", "q2")
        assert first.calls == [("u", "q1"), ("u", "q2")]
        assert second.calls == first.calls

    def test_short_circuits_on_first_fault(self):
        tail = RecordingBoundary()
        composite = CompositeBoundary(
            PoisonedQuestions({"bad-q"}), tail)
        composite("u", "ok-q")
        with pytest.raises(PermanentError):
            composite("u", "bad-q")
        # the boundary after the fault was not consulted for bad-q
        assert tail.calls == [("u", "ok-q")]

    def test_empty_composite_is_noop(self):
        CompositeBoundary()("u", "q")


class TestAdmissionPolicy:
    """The composed admission seam both runs and the service gate on."""

    def test_empty_policy_admits_everything(self):
        policy = AdmissionPolicy()
        assert policy.refuse_unit("gpt-4o") is None
        assert policy.refuse_request(10 ** 6) is None
        assert policy.deadline() is None
        # no quarantine policy -> permanent faults keep failing units
        assert not policy.may_quarantine(0)
        assert policy.as_dict() == {}

    def test_cancellation_refuses_units(self):
        cancelled = {"flag": False}
        policy = AdmissionPolicy(cancelled=lambda: cancelled["flag"])
        assert policy.refuse_unit("gpt-4o") is None
        cancelled["flag"] = True
        refusal = policy.refuse_unit("gpt-4o")
        assert refusal is not None and "JobCancelled" in refusal

    def test_cancellation_outranks_breaker(self):
        """A cancelled run must not spend breaker bookkeeping on units
        it will never evaluate."""
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure("gpt-4o", "down")
        policy = AdmissionPolicy(breaker=breaker, cancelled=lambda: True)
        refusal = policy.refuse_unit("gpt-4o")
        assert "JobCancelled" in refusal
        assert breaker.as_dict()["fast_fails"] == {}

    def test_breaker_refusal_counts_fast_fail(self):
        breaker = CircuitBreaker(failure_threshold=1)
        policy = AdmissionPolicy(breaker=breaker)
        policy.record_failure("gpt-4o", "down")
        refusal = policy.refuse_unit("gpt-4o")
        assert "CircuitOpenError" in refusal
        assert breaker.as_dict()["fast_fails"] == {"gpt-4o": 1}

    def test_refuse_request_bounds_backlog(self):
        policy = AdmissionPolicy(max_pending=2)
        assert policy.refuse_request(1) is None
        refusal = policy.refuse_request(2)
        assert "queue full" in refusal and "max_pending 2" in refusal

    def test_deadline_minted_per_unit(self):
        clock = FakeClock()
        policy = AdmissionPolicy(deadline_s=5.0)
        deadline = policy.deadline(clock=clock)
        assert deadline.remaining() == 5.0
        clock.advance(6.0)
        assert deadline.expired

    def test_validation(self):
        with pytest.raises(ValueError, match="deadline_s"):
            AdmissionPolicy(deadline_s=-1.0)
        with pytest.raises(ValueError, match="max_pending"):
            AdmissionPolicy(max_pending=0)

    def test_as_dict_round_trip(self):
        policy = AdmissionPolicy(breaker=CircuitBreaker(3),
                                 quarantine=QuarantinePolicy(),
                                 deadline_s=2.0, max_pending=8)
        data = policy.as_dict()
        assert data["deadline_s"] == 2.0
        assert data["max_pending"] == 8
        assert data["breaker"]["failure_threshold"] == 3
