"""Tests for answer normalisation and the equivalence judge."""

import pytest
from hypothesis import given, strategies as st

from repro.core.question import (
    AnswerKind,
    AnswerSpec,
    Category,
    VisualContent,
    VisualType,
    make_mc_question,
    make_sa_question,
)
from repro.judge import (
    AutoJudge,
    HybridJudge,
    ManualCheckRegistry,
    answers_equivalent,
    boolean_equivalent,
    extract_option_letter,
    normalize_text,
    numeric_equivalent,
    parse_number_with_unit,
    text_equivalent,
)
from repro.judge.normalize import contains_phrase, strip_leadin


class TestNormalize:
    def test_case_and_whitespace(self):
        assert normalize_text("  The   ANSWER ") == "the answer"

    def test_punctuation_stripped(self):
        assert normalize_text("half adder.") == "half adder"

    def test_strip_leadin(self):
        assert strip_leadin("The answer is 42") == "42"
        assert strip_leadin("approximately 3.3 nm") == "3.3 nm"
        assert strip_leadin("42") == "42"

    def test_contains_phrase_word_boundaries(self):
        assert contains_phrase("it is a half adder circuit", "half adder")
        assert not contains_phrase("33.3 nm", "3.3 nm")
        assert not contains_phrase("0.7 bits", "7 bits")
        assert not contains_phrase("16000 nm", "1600 nm")


class TestOptionLetter:
    @pytest.mark.parametrize("response,expected", [
        ("B", "B"),
        ("b", "B"),
        ("(c)", "C"),
        ("D)", "D"),
        ("A) the first option", "A"),
        ("The answer is C.", "C"),
        ("Option B", "B"),
        ("answer: d", "D"),
    ])
    def test_extraction(self, response, expected):
        assert extract_option_letter(response) == expected

    @pytest.mark.parametrize("response", [
        "The adder", "42", "", "Because of B's behaviour in general",
    ])
    def test_non_letters(self, response):
        assert extract_option_letter(response) is None


class TestNumberParsing:
    @pytest.mark.parametrize("text,value,unit", [
        ("4.7 kOhm", 4700.0, "ohm"),
        ("3.3 nm", 3.3e-9, "m"),
        ("100 MHz", 1e8, "hz"),
        ("-3 dB", -3.0, "db"),
        ("50%", 50.0, "%"),
        ("2.5", 2.5, ""),
        ("1,000 Hz", 1000.0, "hz"),
        ("5.5 minutes", 330.0, "s"),
        ("4 MiB", 4 * 2 ** 20, "b"),
        ("1e6 Hz", 1e6, "hz"),
    ])
    def test_parse(self, text, value, unit):
        parsed = parse_number_with_unit(text)
        assert parsed is not None
        assert parsed[0] == pytest.approx(value)
        assert parsed[1] == unit

    def test_no_number_returns_none(self):
        assert parse_number_with_unit("an adder") is None


class TestNumericEquivalence:
    def test_same_value_different_prefix(self):
        assert numeric_equivalent("4.7 kOhm", "4700 Ohm")

    def test_tolerance(self):
        assert numeric_equivalent("100", "101", rel_tol=0.02)
        assert not numeric_equivalent("100", "110", rel_tol=0.02)

    def test_unitless_response_accepted_at_display_scale(self):
        assert numeric_equivalent("5.5 minutes", "5.5", unit_hint="minutes")

    def test_wrong_unit_rejected(self):
        assert not numeric_equivalent("5 V", "5 A")

    def test_garbage_rejected(self):
        assert not numeric_equivalent("5 V", "no idea")


class TestTextEquivalence:
    def test_alias_match(self):
        assert text_equivalent("Half adder", "half-adder",
                               aliases=("half-adder",))

    def test_containment_of_long_gold(self):
        assert text_equivalent("half adder", "it is a half adder circuit")

    def test_short_gold_requires_exact(self):
        assert not text_equivalent("B", "suburb")
        assert text_equivalent("B", "b")

    def test_leadin_stripped(self):
        assert text_equivalent("D2", "The answer is D2.")


class TestBooleanEquivalence:
    def test_reordered_terms(self):
        assert boolean_equivalent("S + R'Q", "R'Q + S")

    def test_factored_form(self):
        assert boolean_equivalent("AB + AC", "A(B + C)")

    def test_wrong_function(self):
        assert not boolean_equivalent("A + B", "AB")

    def test_prose_falls_back_to_text(self):
        assert boolean_equivalent("the or gate", "THE OR GATE")


def _mc_question():
    return make_mc_question(
        "j-1", Category.DIGITAL, "Pick.",
        VisualContent(VisualType.TABLE, "t"),
        ("4.6", "4.4", "3.0", "6.0"), 0,
        answer_kind=AnswerKind.NUMERIC, unit="ns")


def _sa_question(kind=AnswerKind.NUMERIC, text="5.5", unit="minutes",
                 aliases=()):
    return make_sa_question(
        "j-2", Category.MANUFACTURING, "How long?",
        VisualContent(VisualType.LAYOUT, "l"),
        AnswerSpec(kind, text, unit=unit, aliases=aliases))


class TestAnswersEquivalent:
    def test_mc_letter(self):
        assert answers_equivalent(_mc_question(), "A")
        assert not answers_equivalent(_mc_question(), "B")

    def test_mc_full_text(self):
        assert answers_equivalent(_mc_question(), "4.6")

    def test_mc_numeric_with_unit(self):
        assert answers_equivalent(_mc_question(), "4.6 ns")

    def test_mc_ambiguous_distractor_match_rejected(self):
        # "4.4" matches a distractor exactly -> wrong
        assert not answers_equivalent(_mc_question(), "4.4 ns")

    def test_empty_response_incorrect(self):
        assert not answers_equivalent(_mc_question(), "")
        assert not answers_equivalent(_mc_question(), "   ")

    def test_sa_numeric(self):
        question = _sa_question()
        assert answers_equivalent(question, "5.5 minutes")
        assert answers_equivalent(question, "5.5")
        assert answers_equivalent(question, "330 seconds")
        assert not answers_equivalent(question, "6.5 minutes")

    def test_sa_boolean(self):
        question = _sa_question(kind=AnswerKind.BOOLEAN_EXPR,
                                text="JQ' + K'Q", unit="")
        assert answers_equivalent(question, "K'Q + JQ'")
        assert not answers_equivalent(question, "JQ + K'Q'")

    def test_sa_text_alias(self):
        question = _sa_question(kind=AnswerKind.TEXT, text="Topology B",
                                unit="", aliases=("B", "the chain topology"))
        assert answers_equivalent(question, "B")
        assert answers_equivalent(question, "I would pick the chain topology")


class TestJudges:
    def test_auto_judge_verdict(self):
        judge = AutoJudge(keep_transcript=True)
        verdict = judge.judge(_mc_question(), "A")
        assert verdict.correct and verdict.method == "auto"
        assert judge.transcript[-1]["verdict"] == "YES"

    def test_hybrid_manual_override(self):
        manual = ManualCheckRegistry()
        manual.record("j-1", "weird phrasing", True)
        judge = HybridJudge(manual=manual)
        verdict = judge.judge(_mc_question(), "weird phrasing")
        assert verdict.correct and verdict.method == "manual"

    def test_hybrid_manual_rule(self):
        manual = ManualCheckRegistry()
        manual.record_rule("j-1", lambda r: True if "four point six" in r
                           else None)
        judge = HybridJudge(manual=manual)
        assert judge.judge(_mc_question(), "four point six ns").correct
        assert not judge.judge(_mc_question(), "nonsense").correct

    def test_manual_flag_routes_to_manual_method(self):
        question = make_sa_question(
            "j-3", Category.PHYSICAL, "p",
            VisualContent(VisualType.LAYOUT, "l"),
            AnswerSpec(AnswerKind.TEXT, "yes",
                       requires_manual_check=True))
        verdict = HybridJudge().judge(question, "yes")
        assert verdict.method == "manual"

    def test_registry_len(self):
        manual = ManualCheckRegistry()
        manual.record("a", "x", True)
        manual.record_rule("b", lambda r: None)
        assert len(manual) == 2


@given(st.text(max_size=60))
def test_judge_never_crashes_on_arbitrary_response(response):
    judge = AutoJudge()
    for question in (_mc_question(), _sa_question()):
        verdict = judge.judge(question, response)
        assert isinstance(verdict.correct, bool)


@given(st.floats(-1e6, 1e6).filter(lambda x: abs(x) > 1e-3))
def test_numeric_self_equivalence(value):
    text = f"{value:.6g}"
    assert numeric_equivalent(text, text)
