"""Tests for the command-line interface."""

import pytest

import repro.cli
from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "142" in out

    def test_list_models(self, capsys):
        assert main(["list-models"]) == 0
        out = capsys.readouterr().out
        assert "gpt-4o" in out and "paligemma" in out

    def test_evaluate(self, capsys):
        assert main(["evaluate", "--model", "kosmos-2"]) == 0
        out = capsys.readouterr().out
        assert "pass@1" in out

    def test_evaluate_challenge(self, capsys):
        assert main(["evaluate", "--model", "kosmos-2",
                     "--challenge"]) == 0
        assert "no_choice" in capsys.readouterr().out

    def test_table2_subset(self, capsys):
        assert main(["table2", "--models", "kosmos-2", "paligemma"]) == 0
        out = capsys.readouterr().out
        assert "kosmos-2" in out

    def test_resolution(self, capsys):
        assert main(["resolution", "--factors", "1", "16"]) == 0
        out = capsys.readouterr().out
        assert "16x" in out

    def test_resolution_parallel_workers(self, capsys):
        assert main(["resolution", "--factors", "1", "16",
                     "--workers", "2"]) == 0
        assert "16x" in capsys.readouterr().out

    def test_table2_parallel_with_checkpoints(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        assert main(["table2", "--models", "kosmos-2", "paligemma",
                     "--workers", "4", "--run-dir", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "kosmos-2" in out
        assert "run artifacts" in out
        checkpoints = sorted(p.name for p in run_dir.glob("*.jsonl"))
        assert len(checkpoints) == 4  # 2 models x 2 settings
        assert (run_dir / "manifest.json").exists()
        # a second invocation resumes from the checkpoints
        assert main(["table2", "--models", "kosmos-2", "paligemma",
                     "--run-dir", str(run_dir)]) == 0
        import json

        manifest = json.loads(
            (run_dir / "manifest.json").read_text(encoding="utf-8"))
        assert manifest["totals"]["resumed"] == 4

    def test_resolution_bad_category(self):
        with pytest.raises(SystemExit):
            main(["resolution", "--category", "Quantum"])

    def test_table2_cache_stats(self, capsys):
        assert main(["table2", "--models", "kosmos-2",
                     "--cache-stats"]) == 0
        out = capsys.readouterr().out
        assert "hit rate" in out
        assert "perception" in out and "render" in out

    def test_resolution_cache_stats(self, capsys):
        assert main(["resolution", "--factors", "1", "8",
                     "--cache-stats"]) == 0
        out = capsys.readouterr().out
        assert "legibility" in out and "hit rate" in out

    def test_composition(self, capsys):
        assert main(["composition"]) == 0
        assert "Digital Design" in capsys.readouterr().out

    def test_compare(self, capsys):
        assert main(["compare", "gpt-4o", "kosmos-2"]) == 0
        assert "McNemar" in capsys.readouterr().out

    def test_export_dataset(self, tmp_path, capsys):
        out = tmp_path / "chipvqa.jsonl"
        assert main(["export-dataset", "--out", str(out)]) == 0
        assert out.exists()
        assert len(out.read_text().splitlines()) == 142

    def test_export_figures(self, tmp_path, capsys):
        assert main(["export-figures", "--out", str(tmp_path),
                     "--limit", "2"]) == 0
        assert len(list(tmp_path.glob("*.pgm"))) == 2

    def test_show_question(self, capsys):
        assert main(["show", "dig-08"]) == 0
        out = capsys.readouterr().out
        assert "worked solution" in out
        assert "4.6" in out

    def test_show_unknown_qid(self):
        with pytest.raises(SystemExit):
            main(["show", "nope-99"])

    def test_show_with_figure(self, tmp_path, capsys):
        path = tmp_path / "fig.pgm"
        assert main(["show", "mfg-01", "--figure", str(path)]) == 0
        assert path.exists()


class TestBackendFlags:
    def test_table2_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table2", "--backend", "gpu"])

    def test_table2_backend_matches_default(self, capsys):
        """Selecting a backend explicitly changes execution only, not
        the published table."""
        assert main(["table2", "--models", "kosmos-2"]) == 0
        default_out = capsys.readouterr().out
        for backend in ("serial", "thread"):
            assert main(["table2", "--models", "kosmos-2",
                         "--backend", backend, "--workers", "2"]) == 0
            out = capsys.readouterr().out
            assert "kosmos-2" in out
            table = [line for line in out.splitlines()
                     if "kosmos-2" in line]
            assert table == [line for line in default_out.splitlines()
                             if "kosmos-2" in line]

    def test_resolution_accepts_backend(self, capsys):
        assert main(["resolution", "--factors", "1", "16",
                     "--backend", "thread", "--workers", "2"]) == 0
        assert "16x" in capsys.readouterr().out

    def test_workers_clamped_to_cpu_count(self, capsys, monkeypatch):
        monkeypatch.setattr(repro.cli.os, "cpu_count", lambda: 2)
        assert main(["table2", "--models", "kosmos-2",
                     "--workers", "8"]) == 0
        out = capsys.readouterr().out
        assert ("warning: --workers 8 exceeds this machine's 2 CPU(s); "
                "using 2") in out
        assert "kosmos-2" in out

    def test_workers_within_cpu_count_stay_silent(self, capsys,
                                                  monkeypatch):
        monkeypatch.setattr(repro.cli.os, "cpu_count", lambda: 8)
        assert main(["table2", "--models", "kosmos-2",
                     "--workers", "2"]) == 0
        assert "warning:" not in capsys.readouterr().out


class TestProviderFlags:
    def test_table2_rejects_unknown_provider(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["table2", "--provider", "quantum"])

    def test_table2_remote_provider_matches_local(self, capsys):
        """A healthy remote stub changes transport only, not the table."""
        assert main(["table2", "--models", "kosmos-2"]) == 0
        local_out = capsys.readouterr().out
        assert main(["table2", "--models", "kosmos-2",
                     "--provider", "remote"]) == 0
        assert capsys.readouterr().out == local_out

    def test_table2_batched_provider_matches_local(self, capsys):
        assert main(["table2", "--models", "kosmos-2"]) == 0
        local_out = capsys.readouterr().out
        assert main(["table2", "--models", "kosmos-2",
                     "--provider", "batched", "--batch-size", "4"]) == 0
        assert capsys.readouterr().out == local_out

    def test_table2_flaky_remote_recovers_via_retry(self, tmp_path,
                                                    capsys):
        """Injected transient failures are absorbed by the runner's
        retry path; the sweep still completes with full artifacts."""
        run_dir = tmp_path / "run"
        assert main(["table2", "--models", "kosmos-2",
                     "--provider", "remote", "--failure-rate", "1.0",
                     "--run-dir", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "kosmos-2" in out
        assert len(list(run_dir.glob("*.jsonl"))) == 2


class TestResilienceFlags:
    def test_table2_accepts_resilience_flags(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        assert main(["table2", "--models", "kosmos-2",
                     "--run-dir", str(run_dir), "--quarantine",
                     "--breaker", "3", "--deadline", "600"]) == 0
        out = capsys.readouterr().out
        assert "kosmos-2" in out
        # healthy run: none of the resilience warnings fire
        assert "warning:" not in out

    def test_table2_warns_about_corrupt_checkpoint(self, tmp_path,
                                                   capsys):
        run_dir = tmp_path / "run"
        assert main(["table2", "--models", "kosmos-2",
                     "--run-dir", str(run_dir)]) == 0
        capsys.readouterr()
        victim = sorted(run_dir.glob("*.jsonl"))[0]
        victim.write_bytes(
            victim.read_bytes().replace(b'"correct"', b'"cXrrect"', 1))
        assert main(["table2", "--models", "kosmos-2",
                     "--run-dir", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "warning: 1 corrupt checkpoint(s)" in out


class TestFleetFlags:
    def test_table2_nodes_matches_single_runner(self, tmp_path, capsys,
                                                monkeypatch):
        """A coordinated fleet changes execution only, not the table —
        and leaves commit-log + coordinator-manifest artifacts."""
        # Inline nodes are threads; let the fleet keep 2 nodes even on
        # a 1-CPU machine rather than being clamped down.
        monkeypatch.setattr(repro.cli.os, "cpu_count", lambda: 2)
        assert main(["table2", "--models", "kosmos-2", "paligemma"]) == 0
        solo_out = capsys.readouterr().out
        run_dir = tmp_path / "run"
        assert main(["table2", "--models", "kosmos-2", "paligemma",
                     "--nodes", "2", "--run-dir", str(run_dir),
                     "--cache-stats"]) == 0
        out = capsys.readouterr().out
        assert [line for line in out.splitlines() if "kosmos-2" in line] \
            == [line for line in solo_out.splitlines()
                if "kosmos-2" in line]
        assert "fleet counter" in out
        assert "nodes_lost" in out
        assert (run_dir / "commits.jsonl").exists()
        import json

        manifest = json.loads(
            (run_dir / "manifest.json").read_text(encoding="utf-8"))
        assert manifest["coordinator"]["nodes"] == 2
        assert manifest["coordinator"]["nodes_lost"] == 0
        # verify-run audits the commit log alongside the checkpoints
        assert main(["verify-run", str(run_dir)]) == 0
        assert "commits.jsonl" in capsys.readouterr().out

    def test_nodes_and_workers_are_exclusive(self):
        with pytest.raises(SystemExit, match="exclusive"):
            main(["table2", "--models", "kosmos-2",
                  "--nodes", "2", "--workers", "2"])

    def test_nodes_rejects_thread_backend(self):
        with pytest.raises(SystemExit, match="inline nodes"):
            main(["table2", "--models", "kosmos-2",
                  "--nodes", "2", "--backend", "thread"])

    def test_nodes_below_one_is_a_hard_error(self):
        """There is no fleet of zero nodes to substitute — unlike the
        --workers floor clamp, this is a configuration error."""
        with pytest.raises(SystemExit,
                           match=r"--nodes must be >= 1 \(got 0\)"):
            main(["table2", "--models", "kosmos-2", "--nodes", "0"])

    def test_nodes_negative_is_a_hard_error(self):
        with pytest.raises(SystemExit,
                           match=r"--nodes must be >= 1 \(got -3\)"):
            main(["table2", "--models", "kosmos-2", "--nodes=-3"])

    def test_nodes_clamped_to_cpu_count(self, capsys, monkeypatch):
        monkeypatch.setattr(repro.cli.os, "cpu_count", lambda: 2)
        assert main(["table2", "--models", "kosmos-2",
                     "--nodes", "8"]) == 0
        out = capsys.readouterr().out
        assert ("warning: --nodes 8 exceeds this machine's 2 CPU(s); "
                "using 2") in out
        assert "kosmos-2" in out

    def test_nodes_within_cpu_count_stay_silent(self, capsys,
                                                monkeypatch):
        monkeypatch.setattr(repro.cli.os, "cpu_count", lambda: 8)
        assert main(["table2", "--models", "kosmos-2",
                     "--nodes", "2"]) == 0
        assert "warning:" not in capsys.readouterr().out

    def test_breaker_cooldown_requires_breaker(self):
        with pytest.raises(SystemExit,
                           match="--breaker-cooldown requires --breaker"):
            main(["table2", "--models", "kosmos-2",
                  "--breaker-cooldown", "5"])

    def test_breaker_cooldown_with_breaker_accepted(self, capsys):
        assert main(["table2", "--models", "kosmos-2",
                     "--breaker", "3", "--breaker-cooldown", "5"]) == 0
        assert "kosmos-2" in capsys.readouterr().out


class TestMetricsOut:
    def test_table2_writes_prometheus_exposition(self, tmp_path, capsys):
        out_path = tmp_path / "metrics.prom"
        assert main(["table2", "--models", "kosmos-2",
                     "--metrics-out", str(out_path)]) == 0
        assert f"metrics -> {out_path}" in capsys.readouterr().out
        text = out_path.read_text(encoding="utf-8")
        assert 'repro_run_units{status="completed"} 2' in text
        assert "# TYPE repro_run_retries_total counter" in text
        # the perception caches ride along under a cache label
        assert 'repro_cache_hits{cache="' in text

    def test_scaled_path_writes_metrics_too(self, tmp_path, capsys):
        out_path = tmp_path / "metrics.prom"
        assert main(["table2", "--models", "kosmos-2",
                     "--limit", "8", "--metrics-out", str(out_path)]) == 0
        capsys.readouterr()
        assert "repro_run_units" in out_path.read_text(encoding="utf-8")


class TestVerifyRun:
    def _make_run(self, tmp_path):
        run_dir = tmp_path / "run"
        assert main(["table2", "--models", "kosmos-2",
                     "--run-dir", str(run_dir)]) == 0
        return run_dir

    def test_ok_run_exits_zero(self, tmp_path, capsys):
        run_dir = self._make_run(tmp_path)
        capsys.readouterr()
        assert main(["verify-run", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "verification OK" in out
        assert "2 ok" in out  # 1 model x 2 settings

    def test_flipped_byte_exits_one(self, tmp_path, capsys):
        run_dir = self._make_run(tmp_path)
        victim = sorted(run_dir.glob("*.jsonl"))[0]
        victim.write_bytes(
            victim.read_bytes().replace(b'"correct"', b'"cXrrect"', 1))
        capsys.readouterr()
        assert main(["verify-run", str(run_dir)]) == 1
        out = capsys.readouterr().out
        assert "verification FAILED" in out
        assert "corrupt" in out

    def test_missing_checkpoint_exits_one(self, tmp_path, capsys):
        run_dir = self._make_run(tmp_path)
        sorted(run_dir.glob("*.jsonl"))[0].unlink()
        capsys.readouterr()
        assert main(["verify-run", str(run_dir)]) == 1
        assert "missing" in capsys.readouterr().out

    def test_bad_directory_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["verify-run", str(tmp_path / "nope")])

    def test_empty_directory_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["verify-run", str(tmp_path)])
