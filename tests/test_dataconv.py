"""Tests for the data-converter models."""

import pytest
from hypothesis import given, strategies as st

from repro.analog import dataconv as dc


class TestFlash:
    def test_comparator_count(self):
        assert dc.flash_comparator_count(6) == 63
        assert dc.flash_comparator_count(1) == 1

    def test_flash_encode_extremes(self):
        assert dc.flash_encode(0.0, 1.0, 3) == 0
        assert dc.flash_encode(0.999, 1.0, 3) == 7

    @given(st.floats(0.0, 0.999), st.integers(1, 8))
    def test_flash_matches_ideal_quantizer(self, v_in, bits):
        code = dc.flash_encode(v_in, 1.0, bits)
        assert code == min(int(v_in * 2 ** bits), 2 ** bits - 1)


class TestSar:
    def test_cycles(self):
        assert dc.sar_cycles(10) == 10

    def test_steps_msb_first(self):
        steps = dc.sar_conversion_steps(1.8, 3.2, 8)
        assert steps[0][0] == 7
        assert steps[0][1] == pytest.approx(1.6)
        assert steps[0][2] is True

    def test_code_matches_quantizer(self):
        assert dc.sar_code(1.8, 3.2, 8) == int(1.8 / 3.2 * 256)

    @given(st.floats(0.0, 1.0), st.integers(2, 10))
    def test_sar_equals_flash(self, v_in, bits):
        v_ref = 1.0000001  # keep v_in strictly below full scale
        assert dc.sar_code(v_in, v_ref, bits) == \
            dc.flash_encode(v_in, v_ref, bits)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            dc.sar_code(5.0, 3.2, 8)


class TestPipeline:
    def test_one_bit_residue_low(self):
        assert dc.pipeline_residue(0.3, 1.0, 1) == pytest.approx(0.6)

    def test_one_bit_residue_high(self):
        assert dc.pipeline_residue(0.7, 1.0, 1) == pytest.approx(0.4)

    def test_stage_gain(self):
        assert dc.pipeline_stage_gain(2) == 4

    @given(st.floats(0.0, 0.999), st.integers(1, 3))
    def test_residue_stays_in_range(self, v_in, stage_bits):
        residue = dc.pipeline_residue(v_in, 1.0, stage_bits)
        assert -1e-9 <= residue <= 1.0 + 1e-9


class TestMetrics:
    def test_lsb(self):
        assert dc.lsb_size(2.048, 10) == pytest.approx(0.002)

    def test_sqnr(self):
        assert dc.ideal_sqnr_db(12) == pytest.approx(74.0, abs=0.1)

    def test_enob_inverts_sqnr(self):
        assert dc.enob_from_sndr(dc.ideal_sqnr_db(10)) == pytest.approx(10.0)

    def test_r2r_ladder(self):
        ladder = dc.R2RLadder(bits=8, v_ref=2.56)
        assert ladder.output(128) == pytest.approx(1.28)
        with pytest.raises(ValueError):
            ladder.output(256)

    def test_dnl_ideal_is_zero(self):
        assert dc.dnl_from_levels([0.0, 1.0, 2.0, 3.0]) == \
            pytest.approx([0.0, 0.0, 0.0])

    def test_dnl_detects_wide_step(self):
        dnl = dc.dnl_from_levels([0.0, 1.0, 2.5, 3.0, 4.0])
        assert max(dnl) == pytest.approx(0.5)
        assert min(dnl) == pytest.approx(-0.5)

    def test_nyquist(self):
        assert dc.nyquist_rate(20e3) == pytest.approx(40e3)
