"""Chaos harness tests: crash/torn-write/judge-fault injection, the
acceptance criterion that a run under the full fault stack converges to
artifacts byte-identical to a fault-free run — and the coordinator
chaos suite (node kill, heartbeat blackout, commit-log tear, shared-
store bit-flip), whose full-zoo scenarios carry the ``chaos`` marker
and must converge to the golden Table II digest."""

import pytest

from repro.core import results_io
from repro.core.coordinator import SweepCoordinator, audit_commit_log
from repro.core.executor import ProcessBackend
from repro.core.faults import (
    ChaosCheckpointWriter,
    CompositeBoundary,
    FlakyBoundary,
    GateBoundary,
    NodeCrashBoundary,
    PermanentError,
    PoisonedQuestions,
    SimulatedCrash,
    TransientModelError,
    WorkerKillBoundary,
)
from repro.core.harness import EvaluationHarness, run_table2
from repro.core.question import Category
from repro.core.resilience import QUARANTINED_METHOD, QuarantinePolicy
from repro.core.runner import ParallelRunner, RetryPolicy, WorkUnit
from repro.judge import FaultInjectingJudge, HybridJudge
from repro.models import (
    NO_CHOICE,
    WITH_CHOICE,
    RemoteStubProvider,
    build_model,
    build_zoo,
)
from tests.test_executor import GOLDEN_TABLE2_DIGEST, run_dir_digest


def _units(chipvqa, model_names=("gpt-4o", "llava-7b", "kosmos-2")):
    subset = chipvqa.by_category(Category.DIGITAL)
    return [WorkUnit(model=build_model(name), dataset=subset,
                     setting=WITH_CHOICE) for name in model_names]


class TestChaosCheckpointWriter:
    def test_crash_is_one_shot_and_leaves_torn_file(self, tmp_path):
        writer = ChaosCheckpointWriter(crash_on={"unit-a"})
        path = tmp_path / "unit-a.jsonl"
        payload = "x" * 100 + "\n"
        with pytest.raises(SimulatedCrash):
            writer(path, payload)
        # the torn prefix reached the *final* path — a non-atomic write
        torn = path.read_text(encoding="utf-8")
        assert 0 < len(torn) < len(payload)
        assert payload.startswith(torn)
        assert writer.crashes == ["unit-a"]
        assert not writer.pending()
        # second write of the same stem goes through atomically
        writer(path, payload)
        assert path.read_text(encoding="utf-8") == payload

    def test_tear_is_silent(self, tmp_path):
        writer = ChaosCheckpointWriter(tear_on={"unit-b"}, keep_fraction=0.3)
        path = tmp_path / "unit-b.jsonl"
        writer(path, "y" * 50)  # no exception: the run believes it landed
        assert path.read_text(encoding="utf-8") == "y" * 15
        assert writer.tears == ["unit-b"]
        writer(path, "y" * 50)
        assert path.read_text(encoding="utf-8") == "y" * 50

    def test_unscripted_stems_write_atomically(self, tmp_path):
        writer = ChaosCheckpointWriter(crash_on={"other"})
        path = tmp_path / "unit-c.jsonl"
        writer(path, "z\n")
        assert path.read_text(encoding="utf-8") == "z\n"
        assert writer.pending()

    def test_validation(self):
        with pytest.raises(ValueError):
            ChaosCheckpointWriter(keep_fraction=1.0)


class TestFaultInjectingJudge:
    def test_scripted_fault_then_delegate(self, chipvqa):
        question = chipvqa.by_category(Category.DIGITAL)[0]
        judge = FaultInjectingJudge(
            HybridJudge(),
            {question.qid: [TransientModelError("judge rate limit")]})
        assert not judge.exhausted()
        with pytest.raises(TransientModelError):
            judge.judge(question, "some response")
        assert judge.exhausted()
        verdict = judge.judge(question, "some response")
        assert verdict == HybridJudge().judge(question, "some response")

    def test_unscripted_questions_pass_through(self, chipvqa):
        q0, q1 = chipvqa.by_category(Category.DIGITAL)[:2]
        judge = FaultInjectingJudge(
            HybridJudge(), {q0.qid: [PermanentError("content filter")]})
        assert judge.judge(q1, "r") == HybridJudge().judge(q1, "r")

    def test_judge_faults_feed_runner_retry_and_quarantine(self, chipvqa):
        """Transient judge faults retry; permanent ones quarantine."""
        units = _units(chipvqa, ("gpt-4o",))
        qids = [q.qid for q in chipvqa.by_category(Category.DIGITAL)]
        judge = FaultInjectingJudge(HybridJudge(), {
            qids[0]: [TransientModelError("judge 429")],
            qids[2]: [PermanentError("judge content filter"),
                      PermanentError("judge content filter")],
        })
        runner = ParallelRunner(
            harness=EvaluationHarness(judge=judge),
            quarantine=QuarantinePolicy(), sleep=lambda d: None)
        outcome = runner.run(units)
        assert not outcome.failures
        result = outcome.result_for(units[0])
        assert outcome.stats.total_retries == 1
        assert result.quarantined_count() == 1
        bad = [r for r in result.records if r.qid == qids[2]][0]
        assert bad.judge_method == QUARANTINED_METHOD


class TestSimulatedCrashEscapes:
    def test_runner_does_not_absorb_crashes(self, chipvqa, tmp_path):
        units = _units(chipvqa, ("gpt-4o",))
        runner = ParallelRunner(
            run_dir=tmp_path,
            checkpoint_writer=ChaosCheckpointWriter(
                crash_on={units[0].unit_id}))
        with pytest.raises(SimulatedCrash):
            runner.run(units)
        # the kill left a torn artifact behind for resume to reject
        torn = tmp_path / f"{units[0].unit_id}.jsonl"
        assert torn.exists()
        with pytest.raises(ValueError):
            results_io.load(torn)


class TestWorkerProcessDeath:
    """Chaos at the process-backend layer: a worker process is SIGKILLed
    mid-unit, the pool is rebuilt, and the run still converges to
    artifacts byte-identical to a fault-free serial run."""

    def test_killed_worker_respawns_and_converges(self, chipvqa,
                                                  tmp_path):
        units = _units(chipvqa)
        subset = chipvqa.by_category(Category.DIGITAL)
        victim_unit = units[1].unit_id
        victim_qid = subset[2].qid
        boundary = WorkerKillBoundary(
            flag_path=tmp_path / "killed.flag",
            kill_on=f"{victim_unit}::{victim_qid}")

        # one worker means the victim is always alone in flight, so the
        # death is attributed to it (multi-unit flights cannot convict)
        chaos_dir = tmp_path / "chaos"
        runner = ParallelRunner(
            workers=1,
            backend=ProcessBackend(workers=1, max_respawns=2),
            run_dir=chaos_dir,
            fault_boundary=boundary)
        outcome = runner.run(units)

        # the kill latched exactly once: the respawned worker survives
        assert (tmp_path / "killed.flag").exists()
        assert not outcome.failures
        stats = runner.last_stats
        assert stats.unit(victim_unit).worker_respawns == 1
        for unit in units:
            assert stats.unit(unit.unit_id).status == "completed"
            assert len(outcome.results[unit.unit_id]) == len(subset)

        # byte-identical to a fault-free serial run, and auditable
        clean_dir = tmp_path / "clean"
        clean = ParallelRunner(workers=1, run_dir=clean_dir).run(units)
        assert not clean.failures
        for unit in units:
            name = f"{unit.unit_id}.jsonl"
            assert ((chaos_dir / name).read_bytes()
                    == (clean_dir / name).read_bytes())
        audit = results_io.verify_run(chaos_dir)
        assert audit.ok
        assert audit.counts()["ok"] == len(units)

    def test_killed_worker_checkpoints_survive_resume(self, chipvqa,
                                                      tmp_path):
        """A second launch over the post-kill run directory resumes
        every unit from checkpoints instead of re-evaluating."""
        units = _units(chipvqa, ("gpt-4o", "llava-7b"))
        subset = chipvqa.by_category(Category.DIGITAL)
        boundary = WorkerKillBoundary(
            flag_path=tmp_path / "killed.flag",
            kill_on=f"{units[0].unit_id}::{subset[0].qid}")
        run_dir = tmp_path / "run"
        first = ParallelRunner(
            workers=2, backend=ProcessBackend(workers=2),
            run_dir=run_dir, fault_boundary=boundary)
        assert not first.run(units).failures

        second = ParallelRunner(
            workers=2, backend=ProcessBackend(workers=2),
            run_dir=run_dir, fault_boundary=boundary)
        outcome = second.run(units)
        assert not outcome.failures
        assert second.last_stats.resumed == len(units)
        for unit in units:
            assert second.last_stats.unit(
                unit.unit_id).worker_respawns == 0


class TestChaosConvergence:
    """The acceptance criterion: a chaos run over the Table II sweep
    converges to artifacts byte-identical to a fault-free run (modulo
    deterministically-quarantined records), and ``verify-run`` vouches
    for the result."""

    def test_chaos_run_converges_to_clean_artifacts(self, chipvqa,
                                                    tmp_path):
        units = _units(chipvqa)
        qids = [q.qid for q in chipvqa.by_category(Category.DIGITAL)]
        poison_qid = qids[3]
        poison_unit = units[1].unit_id

        # the full fault stack: transient flakes + a permanently
        # poisoned (unit, question) + judge faults + a process kill
        # mid-checkpoint + a silent torn write
        boundary = CompositeBoundary(
            FlakyBoundary(rate=0.12, failures=1, seed=5),
            PoisonedQuestions({f"{poison_unit}::{poison_qid}"}))
        judge = FaultInjectingJudge(HybridJudge(), {
            qids[0]: [TransientModelError("judge rate limit")],
        })
        writer = ChaosCheckpointWriter(crash_on={units[0].unit_id},
                                       tear_on={units[2].unit_id})
        chaos_dir = tmp_path / "chaos"

        launches = 0
        outcome = None
        for _ in range(8):  # relaunch loop: each pass is a "process"
            launches += 1
            runner = ParallelRunner(
                harness=EvaluationHarness(judge=judge),
                workers=1, run_dir=chaos_dir,
                fault_boundary=boundary,
                quarantine=QuarantinePolicy(),
                retry=RetryPolicy(max_attempts=25, base_delay=0.0),
                sleep=lambda d: None,
                checkpoint_writer=writer)
            try:
                outcome = runner.run(units)
            except SimulatedCrash:
                continue  # the "process" died; relaunch resumes
            if (not writer.pending()
                    and outcome.stats.corrupt_checkpoints == 0
                    and outcome.stats.stale_checkpoints == 0):
                break
        else:
            pytest.fail("chaos run did not converge in 8 launches")

        # launch 1 crashes; 2 repairs the crash and tears unit 3;
        # 3 repairs the tear; 4 resumes everything cleanly
        assert launches == 4
        assert writer.crashes == [units[0].unit_id]
        assert writer.tears == [units[2].unit_id]
        assert not outcome.failures
        assert outcome.stats.resumed == len(units)

        # fault-free reference run
        clean_dir = tmp_path / "clean"
        clean = ParallelRunner(workers=1, run_dir=clean_dir).run(units)
        assert not clean.failures

        # crash-hit and tear-hit units converged to byte-identical files
        for unit in (units[0], units[2]):
            name = f"{unit.unit_id}.jsonl"
            assert ((chaos_dir / name).read_bytes()
                    == (clean_dir / name).read_bytes())

        # the poisoned unit differs only in its quarantined line
        chaos_lines = (chaos_dir / f"{poison_unit}.jsonl").read_text(
            encoding="utf-8").splitlines()
        clean_lines = (clean_dir / f"{poison_unit}.jsonl").read_text(
            encoding="utf-8").splitlines()
        assert len(chaos_lines) == len(clean_lines)
        differing = [i for i, (a, b) in
                     enumerate(zip(chaos_lines, clean_lines)) if a != b]
        assert len(differing) == 2  # the manifest checksum + one record
        assert differing[0] == 0    # line 0 is the manifest
        import json
        bad = json.loads(chaos_lines[differing[1]])
        assert bad["qid"] == poison_qid
        assert bad["judge_method"] == QUARANTINED_METHOD
        assert bad["correct"] is False
        quarantined = results_io.load(chaos_dir / f"{poison_unit}.jsonl")
        assert quarantined.quarantined_count() == 1

        # the converged artifacts verify...
        audit = results_io.verify_run(chaos_dir)
        assert audit.ok
        assert audit.counts()["ok"] == len(units)

        # ...and a single flipped byte is caught
        victim = chaos_dir / f"{units[2].unit_id}.jsonl"
        original = victim.read_bytes()
        victim.write_bytes(original.replace(b'"correct"', b'"cXrrect"', 1))
        broken = results_io.verify_run(chaos_dir)
        assert not broken.ok
        statuses = {f.name: f.status for f in broken.files}
        assert statuses[victim.name] == "corrupt"
        victim.write_bytes(original)
        assert results_io.verify_run(chaos_dir).ok


class TestAsyncChaosConvergence:
    """Chaos at the async-backend layer: transient transport faults
    and simulated-429 rate-limit rejections land mid-flight on the
    event loop, a crash and a silent torn write hit the checkpoint
    layer — and the relaunch loop still converges to artifacts
    byte-identical to a fault-free run, vouched by ``verify-run``."""

    def _stub_units(self, chipvqa, **stub_kwargs):
        """Three Table II units over fault-injecting remote stubs."""
        subset = chipvqa.by_category(Category.DIGITAL)
        units = []
        for name in ("gpt-4o", "llava-7b", "kosmos-2"):
            stub = RemoteStubProvider(build_model(name),
                                      sleep=lambda d: None,
                                      **stub_kwargs)
            units.append(WorkUnit(model=stub, dataset=subset,
                                  setting=WITH_CHOICE))
        return units

    def test_async_chaos_run_converges_to_clean_artifacts(
            self, chipvqa, tmp_path):
        # Server-side budget: burst of 1 with a scripted clock that
        # advances 20 ms per observation, so every retry loop must eat
        # a string of simulated 429s before the bucket refills.
        ticker = {"now": 0.0}

        def ticking_clock():
            ticker["now"] += 0.02
            return ticker["now"]

        units = self._stub_units(
            chipvqa, transient_rate=1.0, transient_failures=2, seed=7,
            rate_limit_per_s=10.0, rate_limit_burst=1,
            rate_clock=ticking_clock)
        writer = ChaosCheckpointWriter(crash_on={units[0].unit_id},
                                       tear_on={units[2].unit_id})
        chaos_dir = tmp_path / "chaos"

        launches = 0
        outcome = None
        for _ in range(8):  # relaunch loop: each pass is a "process"
            launches += 1
            # one in-flight unit keeps the crash/tear schedule
            # deterministic (the loop admits units in order)
            runner = ParallelRunner(
                workers=1, backend="async", run_dir=chaos_dir,
                retry=RetryPolicy(max_attempts=25, base_delay=0.0),
                sleep=lambda d: None,
                checkpoint_writer=writer)
            try:
                outcome = runner.run(units)
            except SimulatedCrash:
                continue  # the "process" died; relaunch resumes
            if (not writer.pending()
                    and outcome.stats.corrupt_checkpoints == 0
                    and outcome.stats.stale_checkpoints == 0):
                break
        else:
            pytest.fail("async chaos run did not converge in 8 launches")

        # launch 1 crashes; 2 repairs the crash and tears unit 3;
        # 3 repairs the tear; 4 resumes everything cleanly
        assert launches == 4
        assert writer.crashes == [units[0].unit_id]
        assert writer.tears == [units[2].unit_id]
        assert not outcome.failures
        assert outcome.stats.resumed == len(units)

        # the chaos actually happened mid-flight: every stub bounced
        # calls off the rate limiter and injected transient faults
        # beyond the 429s, all absorbed by the async retry path
        stubs = [unit.provider for unit in units]
        assert all(stub.rate_limited > 0 for stub in stubs)
        assert all(stub.faults_injected > stub.rate_limited
                   for stub in stubs)

        # fault-free reference run over the same models
        clean_units = self._stub_units(chipvqa)
        clean_dir = tmp_path / "clean"
        clean = ParallelRunner(workers=1, run_dir=clean_dir).run(
            clean_units)
        assert not clean.failures

        # every unit converged to byte-identical artifacts
        for unit in units:
            name = f"{unit.unit_id}.jsonl"
            assert ((chaos_dir / name).read_bytes()
                    == (clean_dir / name).read_bytes())

        # the converged artifacts verify...
        audit = results_io.verify_run(chaos_dir)
        assert audit.ok
        assert audit.counts()["ok"] == len(units)

        # ...and a single flipped byte is caught
        victim = chaos_dir / f"{units[1].unit_id}.jsonl"
        original = victim.read_bytes()
        victim.write_bytes(original.replace(b'"correct"', b'"cXrrect"', 1))
        broken = results_io.verify_run(chaos_dir)
        assert not broken.ok
        statuses = {f.name: f.status for f in broken.files}
        assert statuses[victim.name] == "corrupt"
        victim.write_bytes(original)
        assert results_io.verify_run(chaos_dir).ok


class TestProcessNodeSigkill:
    """A real SIGKILL of a process-mode node's worker group: the broken
    pool surfaces as a node death, the unit is stolen by the surviving
    node, and the artifacts stay byte-identical to a serial run."""

    def test_sigkilled_node_is_replaced_by_stealing(self, chipvqa,
                                                    tmp_path):
        units = _units(chipvqa, ("gpt-4o", "llava-7b"))
        subset = chipvqa.by_category(Category.DIGITAL)
        boundary = WorkerKillBoundary(
            flag_path=tmp_path / "killed.flag",
            kill_on=f"{units[0].unit_id}::{subset[1].qid}")
        fleet_dir = tmp_path / "fleet"
        coordinator = SweepCoordinator(
            nodes=2, node_backend="process", run_dir=fleet_dir,
            fault_boundary=boundary, lease_s=60.0)
        outcome = coordinator.run(units)
        assert (tmp_path / "killed.flag").exists()
        assert not outcome.failures
        counters = coordinator.last_stats.coordinator
        assert counters["nodes_lost"] == 1
        assert counters["units_stolen"] >= 1

        clean_dir = tmp_path / "clean"
        assert not ParallelRunner(workers=1,
                                  run_dir=clean_dir).run(units).failures
        for unit in units:
            name = f"{unit.unit_id}.jsonl"
            assert ((fleet_dir / name).read_bytes()
                    == (clean_dir / name).read_bytes())


@pytest.mark.chaos
class TestCoordinatorChaosConvergence:
    """The acceptance pin: each coordinator chaos scenario runs the
    full-zoo Table II sweep and must converge to the golden digest —
    artifacts byte-identical to every fault-free backend — with the
    fleet counters telling the story of what was survived."""

    def test_node_kill_mid_unit(self, chipvqa, tmp_path):
        # llava-7b with_choice is the first unit dispatched; killing
        # its node three questions in forces an early steal while the
        # rest of the queue is still deep.
        victim = WorkUnit(model="llava-7b", dataset=chipvqa,
                          setting=WITH_CHOICE)
        qid = chipvqa.by_category(Category.DIGITAL)[2].qid
        run_dir = tmp_path / "run"
        boundary = NodeCrashBoundary(
            flag_path=tmp_path / "crash.flag",
            crash_on=f"{victim.unit_id}::{qid}")
        coordinator = SweepCoordinator(nodes=3, run_dir=run_dir,
                                       fault_boundary=boundary)
        results = run_table2(build_zoo(), runner=coordinator)
        assert len(results) == 12
        counters = coordinator.last_stats.coordinator
        assert counters["nodes_lost"] == 1
        assert counters["units_stolen"] >= 1
        assert run_dir_digest(run_dir) == GOLDEN_TABLE2_DIGEST
        assert results_io.verify_run(run_dir).ok

    def test_heartbeat_blackout_mid_unit(self, chipvqa_challenge,
                                         tmp_path):
        # Gate the *last-dispatched* unit (gpt-4o no_choice): requeued
        # units go to the back of the queue, so wedging a unit the
        # healthy node can reach quickly keeps the steal well inside
        # the gate window.
        victim = WorkUnit(model="gpt-4o", dataset=chipvqa_challenge,
                          setting=NO_CHOICE)
        qid = chipvqa_challenge.by_category(Category.DIGITAL)[1].qid
        run_dir = tmp_path / "run"
        gate = GateBoundary(flag_path=tmp_path / "gate.flag",
                            block_on=f"{victim.unit_id}::{qid}",
                            max_block_s=2.0)
        coordinator = SweepCoordinator(
            nodes=2, run_dir=run_dir, fault_boundary=gate,
            lease_s=0.15, heartbeat_timeout_s=120.0, poll_interval=0.02)
        run_table2(build_zoo(), runner=coordinator)
        counters = coordinator.last_stats.coordinator
        assert counters["nodes_lost"] == 0
        assert counters["lease_expirations"] >= 1
        assert counters["units_stolen"] >= 1
        assert counters["duplicate_commits"] == 1
        assert run_dir_digest(run_dir) == GOLDEN_TABLE2_DIGEST
        # exactly-once despite the double execution
        assert audit_commit_log(run_dir / "commits.jsonl")[:2] == (24, 24)

    def test_commit_log_tear_between_launches(self, tmp_path):
        run_dir = tmp_path / "run"
        first = SweepCoordinator(nodes=2, run_dir=run_dir)
        run_table2(build_zoo(), runner=first)
        assert run_dir_digest(run_dir) == GOLDEN_TABLE2_DIGEST
        log_path = run_dir / "commits.jsonl"
        whole = log_path.read_text(encoding="utf-8")
        log_path.write_text(whole[:-40], encoding="utf-8")

        second = SweepCoordinator(nodes=2, run_dir=run_dir)
        run_table2(build_zoo(), runner=second)
        stats = second.last_stats
        assert stats.resumed == 24
        assert stats.coordinator["commit_repairs"] == 1
        assert audit_commit_log(log_path)[:2] == (24, 24)
        assert run_dir_digest(run_dir) == GOLDEN_TABLE2_DIGEST
        assert results_io.verify_run(run_dir).ok

    def test_store_bit_flip_between_launches(self, chipvqa, tmp_path):
        from repro.core.coordinator import ResultStore

        run_dir, store_dir = tmp_path / "run", tmp_path / "store"
        first = SweepCoordinator(nodes=2, run_dir=run_dir,
                                 store_dir=store_dir)
        run_table2(build_zoo(), runner=first)
        assert run_dir_digest(run_dir) == GOLDEN_TABLE2_DIGEST

        # flip one byte inside a shared-store entry, then lose the
        # matching checkpoint so resume is forced through the store
        victim = WorkUnit(model="gpt-4o", dataset=chipvqa,
                          setting=WITH_CHOICE)
        entry = ResultStore(store_dir).path_for(victim)
        blob = entry.read_bytes()
        entry.write_bytes(blob.replace(b"correct", b"cXrrect", 1))
        (run_dir / f"{victim.unit_id}.jsonl").unlink()

        second = SweepCoordinator(nodes=2, run_dir=run_dir,
                                  store_dir=store_dir)
        run_table2(build_zoo(), runner=second)
        stats = second.last_stats
        assert stats.coordinator["store_quarantined"] == 1
        assert stats.resumed == 23        # everything else untouched
        assert stats.completed == 1       # the victim was re-executed
        assert run_dir_digest(run_dir) == GOLDEN_TABLE2_DIGEST
        assert results_io.verify_run(run_dir).ok


class TestScaledSweepResume:
    """Satellite: kill a scaled multi-sample sweep mid-shard, relaunch
    over the same run directory, and the final ``sweep_summary.json``
    is byte-identical to an uninterrupted run's."""

    @pytest.fixture(autouse=True)
    def _pristine_provider_registry(self):
        """Undo the sample-salted provider registrations: other test
        modules assert the default registry's exact contents."""
        from repro.models.providers import default_registry

        before = dict(default_registry._factories)
        yield
        default_registry._factories.clear()
        default_registry._factories.update(before)

    def test_killed_scaled_sweep_resumes_to_identical_summary(
            self, tmp_path):
        from repro.core.sweep import run_scaled_table2

        def summarise(report, path):
            return results_io.write_summary(
                path, report.passk_summary(ks=(1, 2)))

        # uninterrupted reference sweep
        clean_dir = tmp_path / "clean"
        clean = run_scaled_table2(["gpt-4o"], total=60, seed=3,
                                  samples=2, shard_size=60,
                                  run_dir=clean_dir)
        clean_summary = summarise(clean, clean_dir / "sweep_summary.json")
        stems = sorted(p.stem for p in clean_dir.glob("*__*.jsonl"))
        assert len(stems) == 4  # 1 model x 2 settings x 2 samples

        # chaos sweep: the checkpoint writer kills the "process" while
        # a mid-shard unit's artifact is mid-write
        chaos_dir = tmp_path / "chaos"
        writer = ChaosCheckpointWriter(crash_on={stems[2]})
        report = None
        launches = 0
        for _ in range(4):  # relaunch loop: each pass is a "process"
            launches += 1
            runner = SweepCoordinator(nodes=2, run_dir=chaos_dir,
                                      checkpoint_writer=writer)
            try:
                report = run_scaled_table2(["gpt-4o"], total=60, seed=3,
                                           samples=2, shard_size=60,
                                           runner=runner)
            except SimulatedCrash:
                continue  # the sweep died mid-shard; relaunch resumes
            break
        else:
            pytest.fail("scaled sweep did not converge after kills")
        assert launches == 2
        assert writer.crashes == [stems[2]]

        chaos_summary = summarise(report,
                                  chaos_dir / "sweep_summary.json")
        assert (chaos_summary.read_bytes()
                == clean_summary.read_bytes())
        # and the run directory's checkpoints converged byte-for-byte
        assert run_dir_digest(chaos_dir) == run_dir_digest(clean_dir)

    def test_killed_prefetch_sweep_converges_byte_identical(
            self, tmp_path):
        """Same kill-and-relaunch drill with the prefetch pipeline on:
        overlapped shard builds must not perturb checkpoint bytes,
        commit order, or the summary artifact."""
        from repro.core.sweep import run_scaled_table2

        def summarise(report, path):
            return results_io.write_summary(
                path, report.passk_summary(ks=(1, 2)))

        clean_dir = tmp_path / "clean"
        clean = run_scaled_table2(["gpt-4o"], total=60, seed=3,
                                  samples=2, shard_size=20,
                                  run_dir=clean_dir)
        clean_summary = summarise(clean, clean_dir / "sweep_summary.json")
        stems = sorted(p.stem for p in clean_dir.glob("*__*.jsonl"))
        assert len(stems) == 12  # 1 model x 2 settings x 2 samples x 3

        chaos_dir = tmp_path / "chaos"
        writer = ChaosCheckpointWriter(crash_on={stems[5]})
        report = None
        for _ in range(4):
            runner = SweepCoordinator(nodes=2, run_dir=chaos_dir,
                                      checkpoint_writer=writer)
            try:
                report = run_scaled_table2(["gpt-4o"], total=60, seed=3,
                                           samples=2, shard_size=20,
                                           runner=runner, prefetch=2)
            except SimulatedCrash:
                continue  # prefetcher torn down with the "process"
            break
        else:
            pytest.fail("prefetch sweep did not converge after kills")
        assert writer.crashes == [stems[5]]

        chaos_summary = summarise(report,
                                  chaos_dir / "sweep_summary.json")
        assert (chaos_summary.read_bytes()
                == clean_summary.read_bytes())
        assert run_dir_digest(chaos_dir) == run_dir_digest(clean_dir)
