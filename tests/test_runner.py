"""Tests for the parallel evaluation runner: determinism, fault
tolerance (retry/backoff, permanent-failure isolation) and
checkpoint/resume."""

import json
from pathlib import Path

import pytest

from repro.core import perfstats, results_io
from repro.core.faults import (
    FlakyBoundary,
    LatencyBoundary,
    PermanentError,
    RecordingBoundary,
    ScriptedFaults,
    TransientModelError,
)
from repro.core.harness import EvaluationHarness, run_table2
from repro.core.question import Category
from repro.core.runcache import RunCache
from repro.core.runner import (
    ParallelRunner,
    RetryPolicy,
    WorkUnit,
    read_manifest,
)
from repro.models import WITH_CHOICE, build_model, build_zoo


def _units(chipvqa, model_names=("gpt-4o", "llava-7b", "kosmos-2"),
           category=Category.DIGITAL):
    subset = chipvqa.by_category(category)
    return [WorkUnit(model=build_model(name), dataset=subset,
                     setting=WITH_CHOICE) for name in model_names]


def _checkpoint_bytes(run_dir):
    return {p.name: p.read_bytes()
            for p in sorted(Path(run_dir).glob("*.jsonl"))}


class TestWorkUnit:
    def test_unit_id_is_filesystem_safe(self, chipvqa):
        unit = WorkUnit(model=build_model("gpt-4o"),
                        dataset=chipvqa.by_category(Category.DIGITAL),
                        setting=WITH_CHOICE, resolution_factor=16)
        assert "/" not in unit.unit_id
        assert unit.unit_id.endswith("__r16")
        assert "gpt-4o" in unit.unit_id

    def test_duplicate_unit_ids_rejected(self, chipvqa):
        units = _units(chipvqa, ("gpt-4o", "gpt-4o"))
        with pytest.raises(ValueError, match="duplicate"):
            ParallelRunner().run(units)


class TestRetryPolicy:
    def test_delays_grow_exponentially_and_cap(self):
        policy = RetryPolicy(max_attempts=6, base_delay=0.1,
                             multiplier=2.0, max_delay=0.5)
        delays = [policy.delay(a) for a in range(1, 6)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1)


class TestDeterminism:
    def test_serial_and_parallel_artifacts_byte_identical(self, chipvqa,
                                                          tmp_path):
        units = _units(chipvqa)
        serial = ParallelRunner(workers=1, run_dir=tmp_path / "serial")
        parallel = ParallelRunner(workers=8, run_dir=tmp_path / "parallel")
        out_serial = serial.run(units)
        out_parallel = parallel.run(units)
        assert not out_serial.failures and not out_parallel.failures
        bytes_serial = _checkpoint_bytes(tmp_path / "serial")
        bytes_parallel = _checkpoint_bytes(tmp_path / "parallel")
        assert bytes_serial.keys() == bytes_parallel.keys()
        assert bytes_serial == bytes_parallel

    def test_full_zoo_table2_parallel_matches_serial(self, tmp_path):
        """Acceptance: the 12-model sweep at workers=8 writes JSONL
        byte-identical to the serial path."""
        zoo = build_zoo()
        serial = run_table2(zoo, workers=1, run_dir=tmp_path / "w1")
        parallel = run_table2(zoo, workers=8, run_dir=tmp_path / "w8")
        assert _checkpoint_bytes(tmp_path / "w1") == \
            _checkpoint_bytes(tmp_path / "w8")
        for name, settings in serial.items():
            for setting, result in settings.items():
                assert parallel[name][setting].pass_at_1() == \
                    result.pass_at_1()

    def test_results_returned_in_unit_order(self, chipvqa):
        units = _units(chipvqa)
        outcome = ParallelRunner(workers=4).run(units)
        assert list(outcome.results) == [u.unit_id for u in units]


class TestFaultInjection:
    def test_transient_faults_retried_to_clean_artifacts(self, chipvqa,
                                                         tmp_path):
        """A run with injected transient failures converges to artifacts
        byte-identical to a fault-free run."""
        units = _units(chipvqa)
        clean = ParallelRunner(workers=2, run_dir=tmp_path / "clean")
        assert not clean.run(units).failures

        qids = [q.qid for q in chipvqa.by_category(Category.DIGITAL)]
        faults = ScriptedFaults({
            qids[0]: [TransientModelError("rate limit")],
            qids[5]: [TransientModelError("timeout"),
                      TransientModelError("timeout again")],
        })
        faulty = ParallelRunner(
            workers=2, run_dir=tmp_path / "faulty", fault_boundary=faults,
            retry=RetryPolicy(max_attempts=4, base_delay=0.001),
            sleep=lambda d: None)
        outcome = faulty.run(units)
        assert not outcome.failures
        assert faults.exhausted()
        assert _checkpoint_bytes(tmp_path / "clean") == \
            _checkpoint_bytes(tmp_path / "faulty")
        # each scripted fault hit every unit once (same qids per unit)
        assert outcome.stats.total_retries > 0

    def test_backoff_delays_are_exponential(self, chipvqa):
        recorded = []
        qid = chipvqa.by_category(Category.DIGITAL)[0].qid
        faults = ScriptedFaults({qid: [TransientModelError("1"),
                                       TransientModelError("2"),
                                       TransientModelError("3")]})
        runner = ParallelRunner(
            fault_boundary=faults,
            retry=RetryPolicy(max_attempts=5, base_delay=0.1,
                              multiplier=2.0, max_delay=10.0),
            sleep=recorded.append)
        outcome = runner.run(_units(chipvqa, ("gpt-4o",)))
        assert not outcome.failures
        assert recorded == [pytest.approx(0.1), pytest.approx(0.2),
                            pytest.approx(0.4)]

    def test_permanent_error_isolated_to_one_unit(self, chipvqa, tmp_path):
        units = _units(chipvqa)
        bad_qid = chipvqa.by_category(Category.DIGITAL)[3].qid
        # unit-scoped script: only the llava-7b unit is poisoned
        bad_unit = units[1].unit_id
        faults = ScriptedFaults({
            f"{bad_unit}::{bad_qid}": [PermanentError("content filter")],
        })
        runner = ParallelRunner(workers=2, run_dir=tmp_path,
                                fault_boundary=faults, sleep=lambda d: None)
        outcome = runner.run(units)
        assert set(outcome.failures) == {bad_unit}
        assert "PermanentError" in outcome.failures[bad_unit]
        # the two healthy units completed and checkpointed
        assert set(outcome.results) == {units[0].unit_id, units[2].unit_id}
        assert len(_checkpoint_bytes(tmp_path)) == 2
        with pytest.raises(RuntimeError, match="failed"):
            outcome.raise_on_failure()
        manifest = read_manifest(tmp_path)
        statuses = {u["unit_id"]: u["status"] for u in manifest["units"]}
        assert statuses[bad_unit] == "failed"
        assert sorted(statuses.values()) == ["completed", "completed",
                                             "failed"]

    def test_transient_exhaustion_fails_unit(self, chipvqa):
        qid = chipvqa.by_category(Category.DIGITAL)[0].qid
        faults = ScriptedFaults({
            qid: [TransientModelError(str(i)) for i in range(10)]})
        runner = ParallelRunner(fault_boundary=faults,
                                retry=RetryPolicy(max_attempts=3,
                                                  base_delay=0.001),
                                sleep=lambda d: None)
        outcome = runner.run(_units(chipvqa, ("gpt-4o",)))
        assert len(outcome.failures) == 1
        assert "persisted through 3 attempts" in next(
            iter(outcome.failures.values()))

    def test_flaky_boundary_converges_to_clean_run(self, chipvqa, tmp_path):
        """Pseudo-random flakes across many questions still converge."""
        units = _units(chipvqa)
        clean = ParallelRunner(workers=4, run_dir=tmp_path / "clean")
        clean.run(units)
        flaky = ParallelRunner(
            workers=4, run_dir=tmp_path / "flaky",
            fault_boundary=FlakyBoundary(rate=0.08, failures=1, seed=11),
            retry=RetryPolicy(max_attempts=20, base_delay=0.0),
            sleep=lambda d: None)
        outcome = flaky.run(units)
        assert not outcome.failures
        assert outcome.stats.total_retries > 0
        assert outcome.stats.cache_hits > 0  # retries reused cached records
        assert _checkpoint_bytes(tmp_path / "clean") == \
            _checkpoint_bytes(tmp_path / "flaky")


class TestCheckpointResume:
    def test_kill_and_resume_skips_finished_units(self, chipvqa, tmp_path):
        """Truncating one checkpoint mid-run simulates a kill; resume
        re-evaluates only the damaged unit."""
        units = _units(chipvqa)
        first = ParallelRunner(workers=1, run_dir=tmp_path)
        first.run(units)
        reference = _checkpoint_bytes(tmp_path)
        assert len(reference) == 3

        # tear the middle unit's checkpoint as an interrupted write would
        victim = tmp_path / f"{units[1].unit_id}.jsonl"
        torn = victim.read_text(encoding="utf-8").splitlines()[:-4]
        victim.write_text("\n".join(torn) + "\n", encoding="utf-8")

        spy = RecordingBoundary()
        resumed = ParallelRunner(workers=2, run_dir=tmp_path,
                                 fault_boundary=spy)
        outcome = resumed.run(units)
        assert not outcome.failures
        # only the damaged unit crossed the evaluation boundary
        assert spy.units_evaluated() == [units[1].unit_id]
        assert set(outcome.results) == {u.unit_id for u in units}
        assert _checkpoint_bytes(tmp_path) == reference
        manifest = read_manifest(tmp_path)
        statuses = {u["unit_id"]: u["status"] for u in manifest["units"]}
        assert statuses[units[0].unit_id] == "resumed"
        assert statuses[units[1].unit_id] == "completed"
        assert statuses[units[2].unit_id] == "resumed"

    def test_resume_rejects_mismatched_checkpoint(self, chipvqa, tmp_path):
        """A checkpoint for the same unit id but different content
        (wrong record count) is re-evaluated, not trusted."""
        units = _units(chipvqa, ("gpt-4o",))
        ParallelRunner(run_dir=tmp_path).run(units)
        path = tmp_path / f"{units[0].unit_id}.jsonl"
        # rewrite with one record dropped and the manifest count patched
        lines = path.read_text(encoding="utf-8").splitlines()
        head = json.loads(lines[0])
        head["records"] -= 1
        path.write_text(
            "\n".join([json.dumps(head, sort_keys=True)] + lines[1:-1]) + "\n",
            encoding="utf-8")
        spy = RecordingBoundary()
        outcome = ParallelRunner(run_dir=tmp_path,
                                 fault_boundary=spy).run(units)
        assert spy.units_evaluated() == [units[0].unit_id]
        assert not outcome.failures

    def test_no_resume_flag_reevaluates(self, chipvqa, tmp_path):
        units = _units(chipvqa, ("gpt-4o",))
        ParallelRunner(run_dir=tmp_path).run(units)
        spy = RecordingBoundary()
        ParallelRunner(run_dir=tmp_path, resume=False,
                       fault_boundary=spy).run(units)
        assert spy.units_evaluated() == [units[0].unit_id]

    def test_resumed_results_equal_fresh_results(self, chipvqa, tmp_path):
        units = _units(chipvqa)
        fresh = ParallelRunner(workers=2, run_dir=tmp_path).run(units)
        again = ParallelRunner(workers=2, run_dir=tmp_path).run(units)
        assert again.stats.resumed == 3
        for unit in units:
            assert again.result_for(unit).pass_at_1() == \
                fresh.result_for(unit).pass_at_1()


class TestTelemetry:
    def test_run_stats_in_manifest(self, chipvqa, tmp_path):
        units = _units(chipvqa)
        outcome = ParallelRunner(workers=2, run_dir=tmp_path).run(units)
        manifest = read_manifest(tmp_path)
        totals = manifest["totals"]
        assert totals["units"] == 3
        assert totals["completed"] == 3
        assert totals["failed"] == 0
        assert totals["cache_misses"] == sum(
            len(u.dataset) for u in units)
        assert totals["wall_time_s"] > 0
        per_unit = manifest["units"]
        assert all(u["wall_time_s"] > 0 for u in per_unit)
        assert all(u["attempts"] == 1 for u in per_unit)
        # queue depth counts down as units start
        assert sorted(u["queue_depth"] for u in per_unit) == [0, 1, 2]
        assert outcome.stats.as_dict()["completed"] == 3

    def test_in_memory_telemetry_attached_but_not_checkpointed(
            self, chipvqa, tmp_path):
        units = _units(chipvqa, ("gpt-4o",))
        outcome = ParallelRunner(run_dir=tmp_path).run(units)
        result = outcome.result_for(units[0])
        assert result.telemetry is not None
        assert result.telemetry["attempts"] == 1.0
        assert result.telemetry["wall_time_s"] > 0
        # the checkpoint on disk is canonical: no telemetry block
        reloaded = results_io.load(tmp_path / f"{units[0].unit_id}.jsonl")
        assert reloaded.telemetry is None

    def test_perf_cache_counters_in_manifest_and_telemetry(
            self, chipvqa, tmp_path):
        """The perception-substrate cache counters flow into the run
        manifest totals and into each result's telemetry block."""
        units = _units(chipvqa, ("gpt-4o", "llava-7b"))
        outcome = ParallelRunner(workers=2, run_dir=tmp_path).run(units)
        perf = outcome.stats.perf_caches
        assert {"render", "legibility", "perception", "dataset"} <= set(perf)
        for name, counters in perf.items():
            if name == perfstats.STAGE_TIMINGS_NAME:
                # stage wall clocks ride along in ns/calls shape
                assert any(key.endswith("_ns") for key in counters)
                continue
            assert {"hits", "misses", "evictions", "size"} <= set(counters)
        manifest = read_manifest(tmp_path)
        assert manifest["totals"]["perf_caches"] == perf
        result = outcome.result_for(units[0])
        assert "perf_cache_hits" in result.telemetry
        assert "perf_cache_misses" in result.telemetry
        # analytic perception still consults the perception cache
        total = (result.telemetry["perf_cache_hits"]
                 + result.telemetry["perf_cache_misses"])
        assert total > 0

    def test_cache_shared_across_identical_sweeps(self, chipvqa):
        cache = RunCache()
        units = _units(chipvqa, ("gpt-4o", "llava-7b"))
        runner = ParallelRunner(cache=cache)
        first = runner.run(units)
        second = runner.run(units)
        n = sum(len(u.dataset) for u in units)
        assert first.stats.cache_hits == 0
        assert second.stats.cache_hits == n
        assert second.stats.cache_misses == 0
        assert second.stats.cache_hit_rate() == 1.0


@pytest.mark.slow
class TestLatencyScaling:
    def test_workers_overlap_model_latency(self, chipvqa):
        """With per-call latency dominating (the real API regime), eight
        workers beat serial by well over 2x."""
        import time

        units = _units(chipvqa, ("gpt-4o", "llava-7b", "llava-13b",
                                 "kosmos-2", "paligemma", "fuyu-8b"))
        delay = 0.002

        def timed(workers):
            runner = ParallelRunner(
                workers=workers,
                fault_boundary=LatencyBoundary(per_question=delay))
            start = time.perf_counter()
            assert not runner.run(units).failures
            return time.perf_counter() - start

        serial = timed(1)
        parallel = timed(8)
        assert serial / parallel >= 2.0
