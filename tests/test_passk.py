"""Unit tests for the unbiased pass@k estimator and multi-sample results."""

import itertools
import math

import pytest

from repro.core.metrics import (
    EvalRecord,
    EvalResult,
    MultiSampleResult,
    pass_at_k,
)
from repro.core.question import Category


def brute_force_pass_at_k(n: int, c: int, k: int) -> float:
    """Exact pass@k by enumerating every k-subset of the n samples."""
    outcomes = [True] * c + [False] * (n - c)
    k = min(k, n)
    subsets = list(itertools.combinations(outcomes, k))
    return sum(any(subset) for subset in subsets) / len(subsets)


def test_matches_brute_force_enumeration():
    for n in range(1, 7):
        for c in range(n + 1):
            for k in range(1, n + 1):
                assert pass_at_k(n, c, k) == pytest.approx(
                    brute_force_pass_at_k(n, c, k), abs=1e-12), (n, c, k)


def test_degenerate_no_correct_samples():
    assert pass_at_k(10, 0, 1) == 0.0
    assert pass_at_k(10, 0, 10) == 0.0


def test_degenerate_all_correct_samples():
    assert pass_at_k(10, 10, 1) == 1.0
    assert pass_at_k(3, 3, 2) == 1.0


def test_k_larger_than_n_degrades_to_pass_at_n():
    # k > n clamps to k = n: the estimate is P(any sample correct) = 1
    # whenever c > 0.
    assert pass_at_k(3, 1, 10) == 1.0
    assert pass_at_k(3, 0, 10) == 0.0
    assert pass_at_k(5, 2, 99) == pass_at_k(5, 2, 5)


def test_pass_at_1_is_the_sample_mean():
    for n in range(1, 8):
        for c in range(n + 1):
            assert pass_at_k(n, c, 1) == pytest.approx(c / n)


def test_more_samples_cannot_hurt():
    # pass@k is monotone non-decreasing in k for fixed (n, c).
    for c in range(11):
        values = [pass_at_k(10, c, k) for k in range(1, 11)]
        assert values == sorted(values)


def test_exact_binomial_identity():
    n, c, k = 20, 7, 5
    expected = 1.0 - math.comb(n - c, k) / math.comb(n, k)
    assert pass_at_k(n, c, k) == pytest.approx(expected)


def test_invalid_arguments_raise():
    with pytest.raises(ValueError):
        pass_at_k(0, 0, 1)
    with pytest.raises(ValueError):
        pass_at_k(5, -1, 1)
    with pytest.raises(ValueError):
        pass_at_k(5, 6, 1)
    with pytest.raises(ValueError):
        pass_at_k(5, 2, 0)


# -- MultiSampleResult --------------------------------------------------------


def _sample(model, flags, responses=None):
    result = EvalResult(model_name=model, dataset_name="d",
                        setting="with_choice")
    for i, correct in enumerate(flags):
        response = (responses[i] if responses is not None
                    else ("right" if correct else "wrong"))
        result.add(EvalRecord(qid=f"q{i}", category=Category.DIGITAL,
                              response=response, correct=correct))
    return result


def _multi(flag_rows, responses=None):
    multi = MultiSampleResult(model_name="m", dataset_name="d",
                              setting="with_choice")
    for s, flags in enumerate(flag_rows):
        row_responses = responses[s] if responses is not None else None
        multi.add_sample(_sample(f"m+s{s}" if s else "m", flags,
                                 row_responses))
    return multi


def test_multi_sample_pass_at_k_aggregates_per_question():
    # q0 correct 3/3, q1 correct 1/3, q2 correct 0/3.
    multi = _multi([[True, True, False],
                    [True, False, False],
                    [True, False, False]])
    assert multi.sample_count == 3
    assert multi.question_count == 3
    expected_p1 = (1.0 + 1 / 3 + 0.0) / 3
    assert multi.pass_at_k(1) == pytest.approx(expected_p1)
    expected_p3 = (pass_at_k(3, 3, 3) + pass_at_k(3, 1, 3)
                   + pass_at_k(3, 0, 3)) / 3
    assert multi.pass_at_k(3) == pytest.approx(expected_p3)


def test_multi_sample_single_sample_matches_pass_at_1():
    flags = [True, False, True, True]
    multi = _multi([flags])
    assert multi.pass_at_k(1) == pytest.approx(
        multi.samples[0].pass_at_1())


def test_consensus_majority_vote():
    # q0: "a" wins 2-1 and is correct; q1: "x" wins 2-1 and is wrong.
    multi = _multi(
        [[True, False], [True, True], [False, False]],
        responses=[["a", "x"], ["a", "y"], ["b", "x"]])
    assert multi.consensus_at_k(3) == pytest.approx(0.5)


def test_consensus_tie_breaks_to_earliest_response():
    # 1-1 tie between "a" (sample 0, correct) and "b" (sample 1, wrong).
    multi = _multi([[True], [False]], responses=[["a"], ["b"]])
    assert multi.consensus_at_k(2) == pytest.approx(1.0)


def test_ragged_samples_rejected():
    multi = _multi([[True, False]])
    multi.add_sample(_sample("m+s1", [True]))
    with pytest.raises(ValueError):
        multi.pass_at_k(1)


def test_as_dict_is_json_shaped():
    import json

    multi = _multi([[True, False], [False, False]])
    payload = multi.as_dict(ks=(1, 2))
    round_tripped = json.loads(json.dumps(payload))
    assert round_tripped["samples"] == 2
    assert round_tripped["pass_at_k"]["1"] == pytest.approx(0.25)
