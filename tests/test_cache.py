"""Tests for the cache model: geometry, simulation, AMAT, three-C."""

import pytest
from hypothesis import given, strategies as st

from repro.arch.cache import (
    Cache,
    CacheGeometry,
    amat,
    amat_two_level,
    classify_misses,
)


class TestGeometry:
    def test_field_widths(self):
        g = CacheGeometry(32 * 1024, 64, 4)
        assert g.offset_bits == 6
        assert g.num_sets == 128
        assert g.index_bits == 7
        assert g.tag_bits == 32 - 7 - 6

    def test_direct_mapped(self):
        g = CacheGeometry(1024, 32, 1)
        assert g.num_sets == 32

    def test_fully_associative_has_no_index(self):
        g = CacheGeometry(1024, 32, 32)
        assert g.index_bits == 0

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            CacheGeometry(1000, 32, 2)

    def test_block_bigger_than_cache_rejected(self):
        with pytest.raises(ValueError):
            CacheGeometry(32, 64, 1)

    def test_decompose_reassembles(self):
        g = CacheGeometry(16 * 1024, 32, 2)
        address = 0xDEADBEEF
        tag, index, offset = g.decompose(address)
        rebuilt = (tag << (g.index_bits + g.offset_bits)) \
            | (index << g.offset_bits) | offset
        assert rebuilt == address & 0xFFFFFFFF or rebuilt == address

    def test_field_layout_covers_address(self):
        g = CacheGeometry(32 * 1024, 64, 4)
        layout = g.field_layout()
        total = sum(hi - lo + 1 for _, hi, lo in layout)
        assert total == 32


class TestSimulation:
    def test_first_access_misses(self):
        cache = Cache(CacheGeometry(1024, 32, 2))
        assert cache.access(0) is False
        assert cache.access(0) is True
        assert cache.miss_rate == pytest.approx(0.5)

    def test_block_granularity(self):
        cache = Cache(CacheGeometry(1024, 32, 2))
        cache.access(0)
        assert cache.access(31) is True  # same block
        assert cache.access(32) is False  # next block

    def test_lru_eviction(self):
        # direct-mapped-like: 2 ways, hammer 3 conflicting blocks
        g = CacheGeometry(64, 32, 2)  # one set, two ways
        cache = Cache(g)
        a, b, c = 0, 1024, 2048
        cache.access(a)
        cache.access(b)
        cache.access(a)       # a is now most-recent
        cache.access(c)       # evicts b (LRU)
        assert cache.access(a) is True
        assert cache.access(b) is False

    def test_fifo_differs_from_lru(self):
        g = CacheGeometry(64, 32, 2)
        fifo = Cache(g, policy="FIFO")
        a, b, c = 0, 1024, 2048
        fifo.access(a)
        fifo.access(b)
        fifo.access(a)        # does not refresh FIFO age
        fifo.access(c)        # evicts a (oldest)
        assert fifo.access(a) is False

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            Cache(CacheGeometry(64, 32, 2), policy="RANDOM")

    def test_miss_rate_requires_accesses(self):
        cache = Cache(CacheGeometry(64, 32, 2))
        with pytest.raises(ValueError):
            cache.miss_rate

    @given(st.lists(st.integers(0, 2 ** 20), min_size=1, max_size=200))
    def test_hits_plus_misses_equals_accesses(self, addresses):
        cache = Cache(CacheGeometry(4096, 64, 4))
        cache.run(addresses)
        assert cache.hits + cache.misses == len(addresses)

    @given(st.lists(st.integers(0, 2 ** 16), min_size=1, max_size=100))
    def test_repeating_a_trace_only_improves(self, addresses):
        first = Cache(CacheGeometry(4096, 64, 4))
        first.run(addresses)
        second = Cache(CacheGeometry(4096, 64, 4))
        second.run(addresses)
        second.run(addresses)
        assert second.hit_rate >= first.hit_rate - 1e-12


class TestAmat:
    def test_amat(self):
        assert amat(1.0, 0.05, 100.0) == pytest.approx(6.0)

    def test_amat_validation(self):
        with pytest.raises(ValueError):
            amat(1.0, 1.5, 100.0)

    def test_two_level(self):
        value = amat_two_level(1.0, 0.1, 10.0, 0.2, 100.0)
        assert value == pytest.approx(1.0 + 0.1 * (10.0 + 0.2 * 100.0))


class TestThreeC:
    def test_all_first_touches_are_compulsory(self):
        g = CacheGeometry(4096, 64, 4)
        addresses = [i * 64 for i in range(10)]
        counts = classify_misses(g, addresses)
        assert counts["compulsory"] == 10
        assert counts["capacity"] == 0
        assert counts["conflict"] == 0

    def test_conflict_misses_detected(self):
        # direct-mapped, two blocks mapping to the same set
        g = CacheGeometry(128, 32, 1)  # 4 sets
        a, b = 0, 128  # same index, different tags
        counts = classify_misses(g, [a, b, a, b, a, b])
        assert counts["conflict"] > 0

    def test_capacity_misses_detected(self):
        # fully associative cache that is simply too small
        g = CacheGeometry(128, 32, 4)  # 4 blocks total
        addresses = [i * 32 for i in range(8)] * 2
        counts = classify_misses(g, addresses)
        assert counts["capacity"] > 0
