"""Tests for NoC topology construction and metrics."""

import pytest

from repro.arch import topology as topo


class TestConstruction:
    def test_ring(self):
        graph = topo.ring(8)
        assert graph.number_of_nodes() == 8
        assert all(d == 2 for _, d in graph.degree())

    def test_mesh(self):
        graph = topo.mesh2d(3, 4)
        assert graph.number_of_nodes() == 12
        assert topo.link_count(graph) == 3 * 3 + 2 * 4

    def test_torus_regular_degree_four(self):
        graph = topo.torus2d(4, 4)
        assert all(d == 4 for _, d in graph.degree())

    def test_hypercube(self):
        graph = topo.hypercube(4)
        assert graph.number_of_nodes() == 16
        assert all(d == 4 for _, d in graph.degree())

    def test_crossbar_complete(self):
        graph = topo.crossbar(5)
        assert topo.link_count(graph) == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            topo.ring(2)
        with pytest.raises(ValueError):
            topo.hypercube(0)


class TestMetrics:
    def test_mesh_diameter_closed_form(self):
        for rows, cols in ((2, 2), (3, 3), (4, 4), (3, 5)):
            graph = topo.mesh2d(rows, cols)
            assert topo.diameter(graph) == topo.mesh_diameter(rows, cols)

    def test_torus_diameter_closed_form(self):
        for side in (3, 4, 5):
            graph = topo.torus2d(side, side)
            assert topo.diameter(graph) == topo.torus_diameter(side, side)

    def test_hypercube_diameter(self):
        for dim in (2, 3, 4):
            assert topo.diameter(topo.hypercube(dim)) == dim

    def test_crossbar_diameter_one(self):
        assert topo.diameter(topo.crossbar(6)) == 1

    def test_average_hops_less_than_diameter(self):
        graph = topo.mesh2d(4, 4)
        assert topo.average_hops(graph) < topo.diameter(graph)


class TestBisection:
    def test_ring_bisection_two(self):
        assert topo.bisection_width(topo.ring(8)) == 2

    def test_hypercube_bisection(self):
        assert topo.bisection_width(topo.hypercube(3)) == 4
        assert topo.bisection_width(topo.hypercube(4)) == 8

    def test_mesh_bisection(self):
        assert topo.bisection_width(topo.mesh2d(4, 4)) == 4

    def test_crossbar_bisection(self):
        assert topo.bisection_width(topo.crossbar(4)) == 4

    def test_odd_count_rejected(self):
        with pytest.raises(ValueError):
            topo.bisection_width(topo.ring(5))

    def test_large_known_topologies(self):
        assert topo.bisection_width(topo.ring(64)) == 2
        assert topo.bisection_width(topo.hypercube(5)) == 16
        assert topo.bisection_width(topo.crossbar(20)) == 100


class TestComparison:
    def test_compare_topologies_at_16(self):
        table = topo.compare_topologies(16)
        assert set(table) >= {"ring", "crossbar", "mesh", "hypercube"}
        assert table["crossbar"]["diameter"] == 1.0
        assert table["hypercube"]["diameter"] == 4.0
        assert table["ring"]["diameter"] == 8.0

    def test_dor_route_is_x_then_y(self):
        path = topo.dor_route((0, 0), (2, 2))
        assert path == [(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)]

    def test_dor_route_length_is_manhattan(self):
        path = topo.dor_route((3, 1), (0, 4))
        assert len(path) - 1 == 3 + 3
