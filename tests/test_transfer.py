"""Tests for transfer functions, Bode metrics and loop analysis."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.analog.transfer import (
    TransferFunction,
    decade_ratio,
    gbw_from_dc_gain,
    rc_lowpass_corner_hz,
    single_pole_phase_margin,
)


class TestConstruction:
    def test_dc_gain(self):
        tf = TransferFunction.from_poles_zeros(100.0, [1e3])
        assert tf.dc_gain() == pytest.approx(100.0)
        assert tf.dc_gain_db() == pytest.approx(40.0)

    def test_empty_polynomial_rejected(self):
        with pytest.raises(ValueError):
            TransferFunction((), (1.0,))

    def test_zero_denominator_rejected(self):
        with pytest.raises(ValueError):
            TransferFunction((1.0,), (0.0, 0.0))

    def test_negative_corner_rejected(self):
        with pytest.raises(ValueError):
            TransferFunction.from_poles_zeros(1.0, [-5.0])

    def test_integrator(self):
        tf = TransferFunction.integrator(1e6)
        assert abs(tf.at_jw(1e6)) == pytest.approx(1.0)


class TestFrequencyResponse:
    def test_pole_is_minus_3db(self):
        tf = TransferFunction.from_poles_zeros(1.0, [1000.0])
        assert tf.magnitude_db(1000.0) == pytest.approx(-3.0103, abs=1e-3)

    def test_single_pole_rolloff_20db_per_decade(self):
        tf = TransferFunction.from_poles_zeros(1.0, [10.0])
        drop = tf.magnitude_db(1e4) - tf.magnitude_db(1e5)
        assert drop == pytest.approx(20.0, abs=0.1)

    def test_zero_lifts_response(self):
        tf = TransferFunction.from_poles_zeros(1.0, [1e6], zeros=[100.0])
        assert tf.magnitude_db(1e4) > 30.0

    def test_phase_of_single_pole_at_corner(self):
        tf = TransferFunction.from_poles_zeros(1.0, [1000.0])
        assert tf.phase_deg(1000.0) == pytest.approx(-45.0, abs=1.0)

    def test_phase_far_above_two_poles(self):
        tf = TransferFunction.from_poles_zeros(1.0, [10.0, 100.0])
        assert tf.phase_deg(1e6) == pytest.approx(-180.0, abs=2.0)


class TestPolesZeros:
    def test_pole_frequencies(self):
        tf = TransferFunction.from_poles_zeros(1.0, [100.0, 1e4])
        assert tf.pole_frequencies() == pytest.approx([100.0, 1e4], rel=1e-6)

    def test_zero_count(self):
        tf = TransferFunction.from_poles_zeros(5.0, [1e3, 1e5], zeros=[1e4])
        assert len(tf.poles()) == 2
        assert len(tf.zeros()) == 1


class TestLoopMetrics:
    def test_unity_gain_frequency_single_pole(self):
        # GBW: A0 * wp = 1e3 * 1e3 = 1e6
        tf = TransferFunction.from_poles_zeros(1e3, [1e3])
        assert tf.unity_gain_frequency() == pytest.approx(1e6, rel=1e-2)

    def test_phase_margin_single_pole_is_90(self):
        tf = TransferFunction.from_poles_zeros(1e3, [1e3])
        assert tf.phase_margin_deg() == pytest.approx(90.0, abs=2.0)

    def test_phase_margin_two_close_poles_small(self):
        tf = TransferFunction.from_poles_zeros(1e3, [1e3, 1e3])
        assert tf.phase_margin_deg() < 20.0

    def test_phase_margin_helper(self):
        pm = single_pole_phase_margin(1e3, 1e4, second_pole_w=1e7)
        assert 45.0 < pm < 60.0

    def test_unity_gain_raises_below_unity(self):
        tf = TransferFunction.from_poles_zeros(0.5, [1e3])
        with pytest.raises(ValueError):
            tf.unity_gain_frequency()

    def test_closed_loop_reduces_dc_gain(self):
        tf = TransferFunction.from_poles_zeros(1000.0, [1e3])
        closed = tf.closed_loop(0.1)
        assert closed.dc_gain() == pytest.approx(1000.0 / 101.0, rel=1e-6)

    def test_cascade_multiplies_gain(self):
        a = TransferFunction.from_poles_zeros(10.0, [1e3])
        b = TransferFunction.from_poles_zeros(5.0, [1e6])
        assert a.cascade(b).dc_gain() == pytest.approx(50.0)


class TestHelpers:
    def test_rc_corner(self):
        assert rc_lowpass_corner_hz(1e3, 159.15e-9) == pytest.approx(
            1000.0, rel=1e-3)

    def test_rc_corner_validation(self):
        with pytest.raises(ValueError):
            rc_lowpass_corner_hz(0, 1e-9)

    def test_gbw(self):
        assert gbw_from_dc_gain(1e4, 100.0) == pytest.approx(1e6)

    def test_decade_ratio(self):
        assert decade_ratio(10.0, 1e4) == pytest.approx(3.0)


@given(st.floats(1.0, 1e4), st.floats(10.0, 1e8))
def test_dc_gain_invariant_under_pole_location(gain, pole):
    tf = TransferFunction.from_poles_zeros(gain, [pole])
    assert tf.dc_gain() == pytest.approx(gain, rel=1e-9)


@given(st.floats(10.0, 1e6))
def test_magnitude_monotone_decreasing_single_pole(pole):
    tf = TransferFunction.from_poles_zeros(100.0, [pole])
    mags = [abs(tf.at_jw(w)) for w in (1.0, 1e2, 1e4, 1e6, 1e8)]
    assert all(a >= b - 1e-12 for a, b in zip(mags, mags[1:]))
