"""End-to-end property: phrasing and judging stay consistent for random
questions, not just the 142 shipped ones."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.question import (
    AnswerKind,
    AnswerSpec,
    Category,
    VisualContent,
    VisualType,
    make_mc_question,
    make_sa_question,
)
from repro.judge import answers_equivalent
from repro.models.llm import LlmBackbone

_BACKBONES = [LlmBackbone("prop-a", 7.0, 0.5),
              LlmBackbone("prop-b", 70.0, 0.9)]


@st.composite
def numeric_mc_questions(draw):
    value = draw(st.floats(0.1, 9999.0).map(lambda v: round(v, 2)))
    unit = draw(st.sampled_from(["ns", "V", "kOhm", "mA", "um", ""]))
    factors = draw(st.permutations([2.0, 0.5, 10.0]))
    choices = [f"{value:g} {unit}".strip()] + [
        f"{value * f:g} {unit}".strip() for f in factors
    ]
    if len({c for c in choices}) != 4:
        # rounding collisions: perturb deterministically
        choices = [f"{value:g} {unit}".strip(),
                   f"{value * 3:g} {unit}".strip(),
                   f"{value * 7:g} {unit}".strip(),
                   f"{value * 13:g} {unit}".strip()]
    correct = draw(st.integers(0, 3))
    choices[0], choices[correct] = choices[correct], choices[0]
    qid = f"prop-{draw(st.integers(0, 10 ** 6))}"
    return make_mc_question(
        qid, Category.ANALOG, "Compute the value shown in the figure.",
        VisualContent(VisualType.SCHEMATIC, "s"),
        choices, correct, difficulty=0.5, topics=("prop",),
        answer_kind=AnswerKind.NUMERIC, unit=unit)


@settings(max_examples=80)
@given(numeric_mc_questions())
def test_mc_phrase_judge_consistency(question):
    """Correct phrasings judged correct; incorrect ones judged incorrect."""
    for backbone in _BACKBONES:
        assert answers_equivalent(
            question, backbone.phrase_correct(question)), \
            backbone.phrase_correct(question)
        assert not answers_equivalent(
            question, backbone.phrase_incorrect(question)), \
            backbone.phrase_incorrect(question)


@settings(max_examples=80)
@given(st.floats(0.1, 9999.0).map(lambda v: round(v, 3)),
       st.sampled_from(["ns", "V", "kOhm", "mA", ""]),
       st.integers(0, 10 ** 6))
def test_sa_phrase_judge_consistency(value, unit, salt):
    question = make_sa_question(
        f"prop-sa-{salt}", Category.PHYSICAL,
        "Compute the value shown in the figure.",
        VisualContent(VisualType.LAYOUT, "l"),
        AnswerSpec(AnswerKind.NUMERIC, f"{value:g} {unit}".strip(),
                   unit=unit))
    for backbone in _BACKBONES:
        assert answers_equivalent(question,
                                  backbone.phrase_correct(question))
        assert not answers_equivalent(question,
                                      backbone.phrase_incorrect(question))


@settings(max_examples=40)
@given(numeric_mc_questions())
def test_challenge_transform_preserves_consistency(question):
    from repro.core.transforms import to_short_answer

    recast = to_short_answer(question)
    for backbone in _BACKBONES:
        assert answers_equivalent(recast, backbone.phrase_correct(recast))
        assert not answers_equivalent(recast,
                                      backbone.phrase_incorrect(recast))
