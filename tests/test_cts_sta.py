"""Tests for clock-tree synthesis helpers and static timing analysis."""

import pytest
from hypothesis import given, strategies as st

from repro.physical import cts
from repro.physical.cts import ClockSink
from repro.physical.geometry import Point
from repro.physical.sta import TimingGraph, chain_graph


class TestSkew:
    def _sinks(self):
        return [ClockSink("a", Point(0, 0), 1.2),
                ClockSink("b", Point(1, 0), 1.5),
                ClockSink("c", Point(0, 1), 0.9)]

    def test_global_skew(self):
        assert cts.skew(self._sinks()) == pytest.approx(0.6)

    def test_local_skew_signed(self):
        sinks = self._sinks()
        assert cts.local_skew(sinks[0], sinks[1]) == pytest.approx(-0.3)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            cts.skew([])


class TestHTree:
    def test_levels(self):
        assert cts.h_tree_levels(1) == 0
        assert cts.h_tree_levels(4) == 1
        assert cts.h_tree_levels(64) == 3
        assert cts.h_tree_levels(65) == 4

    def test_wirelength_grows_with_levels(self):
        lengths = [cts.h_tree_wirelength(10.0, k) for k in range(4)]
        assert lengths == sorted(lengths)
        assert lengths[0] == 0.0

    def test_balanced_delay(self):
        delay = cts.h_tree_sink_delay_balanced(16.0, 2, 1.0)
        assert delay == pytest.approx(8.0 + 4.0)


class TestTimingChecks:
    def test_setup_slack(self):
        assert cts.setup_slack(10.0, 8.5, 0.5) == pytest.approx(1.0)

    def test_setup_slack_with_helpful_skew(self):
        tight = cts.setup_slack(10.0, 10.2, 0.5)
        helped = cts.setup_slack(10.0, 10.2, 0.5, capture_skew=1.0)
        assert tight < 0 < helped

    def test_hold_slack(self):
        assert cts.hold_slack(0.3, 0.1) == pytest.approx(0.2)
        assert cts.hold_slack(0.3, 0.1, capture_skew=0.4) == \
            pytest.approx(-0.2)

    def test_min_period(self):
        assert cts.min_period(8.5, 0.5) == pytest.approx(9.0)

    def test_useful_skew_gain(self):
        assert cts.useful_skew_gain([8.0, 5.0, 5.0]) == pytest.approx(2.0)

    def test_useful_skew_zero_when_balanced(self):
        assert cts.useful_skew_gain([5.0, 5.0]) == 0.0

    def test_buffers_needed(self):
        assert cts.buffers_needed(480.0, 50.0) == 10
        assert cts.buffers_needed(10.0, 50.0) == 1

    def test_elmore(self):
        assert cts.elmore_delay([100.0, 100.0], [0.01, 0.02]) == \
            pytest.approx(1.0 + 4.0)

    def test_elmore_mismatch_raises(self):
        with pytest.raises(ValueError):
            cts.elmore_delay([1.0], [1.0, 2.0])


class TestTimingGraph:
    def _diamond(self):
        graph = TimingGraph()
        graph.arc("in", "a", 1.0).arc("a", "out", 3.0)
        graph.arc("in", "b", 2.0).arc("b", "out", 1.0)
        return graph

    def test_arrival_times(self):
        arrivals = self._diamond().arrival_times()
        assert arrivals["out"] == pytest.approx(4.0)

    def test_critical_path(self):
        path, delay = self._diamond().critical_path()
        assert path == ["in", "a", "out"]
        assert delay == pytest.approx(4.0)

    def test_slacks_nonnegative_at_relaxed_period(self):
        slacks = self._diamond().slacks(10.0)
        assert min(slacks.values()) == pytest.approx(6.0)

    def test_worst_slack_zero_at_critical_period(self):
        graph = self._diamond()
        assert graph.worst_slack(4.0) == pytest.approx(0.0)

    def test_required_times_propagate_backwards(self):
        required = self._diamond().required_times(10.0)
        assert required["a"] == pytest.approx(7.0)
        assert required["in"] == pytest.approx(6.0)

    def test_min_clock_period_includes_overheads(self):
        graph = self._diamond()
        assert graph.min_clock_period(setup_time=0.5, clk_to_q=0.5) == \
            pytest.approx(5.0)

    def test_cycle_detection(self):
        graph = TimingGraph()
        graph.arc("a", "b", 1.0).arc("b", "a", 1.0)
        with pytest.raises(ValueError, match="cycle"):
            graph.arrival_times()

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            TimingGraph().arc("a", "b", -1.0)

    def test_chain_helper(self):
        graph = chain_graph([1.0, 2.0, 3.0])
        _, delay = graph.critical_path()
        assert delay == pytest.approx(6.0)

    @given(st.lists(st.floats(0.0, 10.0), min_size=1, max_size=10))
    def test_chain_delay_is_sum(self, delays):
        graph = chain_graph(delays)
        _, total = graph.critical_path()
        assert total == pytest.approx(sum(delays))

    @given(st.lists(st.floats(0.1, 5.0), min_size=2, max_size=8),
           st.floats(20.0, 40.0))
    def test_slack_decreases_along_critical_path_start(self, delays, period):
        graph = chain_graph(delays)
        slacks = graph.slacks(period)
        # every node on a pure chain has identical slack
        values = list(slacks.values())
        assert max(values) - min(values) < 1e-9
