"""Unit tests for the Dataset container."""

import pytest

from repro.core.dataset import Dataset, _percentile
from repro.core.question import (
    AnswerKind,
    AnswerSpec,
    Category,
    QuestionType,
    VisualContent,
    VisualType,
    make_mc_question,
    make_sa_question,
)


def _q(qid, category=Category.DIGITAL, mc=True, difficulty=0.5,
       prompt="What value results from the computation shown?"):
    visual = VisualContent(VisualType.TABLE, "a table")
    if mc:
        return make_mc_question(qid, category, prompt, visual,
                                ("1", "2", "3", "4"), 0,
                                difficulty=difficulty)
    return make_sa_question(qid, category, prompt, visual,
                            AnswerSpec(AnswerKind.NUMERIC, "1"),
                            difficulty=difficulty)


@pytest.fixture
def small():
    return Dataset([
        _q("a-1", Category.DIGITAL, True, 0.1),
        _q("a-2", Category.DIGITAL, False, 0.5),
        _q("a-3", Category.ANALOG, True, 0.9),
    ], name="small")


class TestContainer:
    def test_len_and_iter(self, small):
        assert len(small) == 3
        assert [q.qid for q in small] == ["a-1", "a-2", "a-3"]

    def test_getitem(self, small):
        assert small[1].qid == "a-2"

    def test_contains_and_get(self, small):
        assert "a-1" in small
        assert small.get("a-3").category is Category.ANALOG

    def test_get_missing_raises(self, small):
        with pytest.raises(KeyError):
            small.get("nope")

    def test_duplicate_qids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Dataset([_q("x"), _q("x")])


class TestFiltering:
    def test_by_category(self, small):
        digital = small.by_category(Category.DIGITAL)
        assert len(digital) == 2
        assert digital.name.endswith("digital")

    def test_by_type(self, small):
        mc = small.by_type(QuestionType.MULTIPLE_CHOICE)
        assert len(mc) == 2

    def test_filter_predicate(self, small):
        hard = small.filter(lambda q: q.difficulty > 0.7)
        assert [q.qid for q in hard] == ["a-3"]

    def test_split_by_category_covers_all(self, small):
        split = small.split_by_category()
        assert sum(len(d) for d in split.values()) == len(small)

    def test_map_transform(self, small):
        import dataclasses

        harder = small.map(
            lambda q: dataclasses.replace(q, difficulty=1.0))
        assert all(q.difficulty == 1.0 for q in harder)
        # original untouched
        assert small[0].difficulty == 0.1


class TestStatistics:
    def test_category_counts(self, small):
        counts = small.category_counts()
        assert counts[Category.DIGITAL] == 2
        assert counts[Category.ANALOG] == 1
        assert counts[Category.PHYSICAL] == 0

    def test_type_counts(self, small):
        counts = small.type_counts()
        assert counts[QuestionType.MULTIPLE_CHOICE] == 2
        assert counts[QuestionType.SHORT_ANSWER] == 1

    def test_mc_counts_by_category(self, small):
        counts = small.mc_counts_by_category()
        assert counts[Category.DIGITAL] == 1
        assert counts[Category.ANALOG] == 1

    def test_token_stats_fields(self, small):
        stats = small.token_stats()
        assert stats.minimum <= stats.p25 <= stats.p50 <= stats.p75
        assert stats.p75 <= stats.maximum
        assert stats.mean > 0

    def test_token_stats_empty_raises(self):
        with pytest.raises(ValueError):
            Dataset([]).token_stats()

    def test_difficulty_histogram(self, small):
        # 0.1 -> bin 0; 0.5 and 0.9 -> bin 1 (half-open bins)
        histogram = small.difficulty_histogram(bins=2)
        assert histogram == [1, 2]

    def test_difficulty_histogram_bad_bins(self, small):
        with pytest.raises(ValueError):
            small.difficulty_histogram(bins=0)

    def test_visual_component_total(self, small):
        assert small.visual_component_total() == 3


class TestPercentile:
    def test_single_value(self):
        assert _percentile([5.0], 50) == 5.0

    def test_interpolation(self):
        assert _percentile([0.0, 10.0], 50) == 5.0

    def test_endpoints(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert _percentile(values, 0) == 1.0
        assert _percentile(values, 100) == 4.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            _percentile([], 50)


class TestSerialization:
    def test_jsonl_round_trip(self, small):
        restored = Dataset.from_jsonl(small.to_jsonl(), name="small")
        assert len(restored) == len(small)
        assert [q.qid for q in restored] == [q.qid for q in small]

    def test_save_load(self, small, tmp_path):
        path = tmp_path / "ds.jsonl"
        small.save(path)
        restored = Dataset.load(path)
        assert len(restored) == 3
