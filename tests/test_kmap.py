"""Tests for Quine-McCluskey minimisation and K-map grids."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.digital.expr import equivalent, from_minterms, minterms_of, parse
from repro.digital.kmap import (
    Implicant,
    kmap_grid,
    minimize,
    minimized_expr,
    prime_implicants,
    sop_text,
)


class TestImplicant:
    def test_covers(self):
        implicant = Implicant(value=0b100, mask=0b001)
        assert implicant.covers(0b100)
        assert implicant.covers(0b101)
        assert not implicant.covers(0b110)

    def test_literal_count(self):
        assert Implicant(0b10, 0b01).literal_count(2) == 1

    def test_to_term(self):
        term = Implicant(0b10, 0b00).to_term(["A", "B"])
        assert str(term) == "AB'"


class TestMinimize:
    def test_full_cover_is_constant_true(self):
        expr = minimized_expr(["A", "B"], [0, 1, 2, 3])
        assert str(expr) == "1"

    def test_empty_is_constant_false(self):
        assert str(minimized_expr(["A", "B"], [])) == "0"

    def test_classic_example(self):
        # f(A,B,C) = sum(1,3,5,7) = C
        expr = minimized_expr(["A", "B", "C"], [1, 3, 5, 7])
        assert str(expr) == "C"

    def test_dont_cares_enlarge_cubes(self):
        # minterm 4 with dc 5,6,7 -> just A
        expr = minimized_expr(["A", "B", "C"], [4], [5, 6, 7])
        assert str(expr) == "A"

    def test_petrick_cyclic_cover(self):
        # the classic cyclic prime-implicant chart: 6 minterms, no
        # essential primes; QM must still return a cover of size 3
        minterms = [0, 1, 2, 5, 6, 7]
        cover = minimize(3, minterms)
        assert len(cover) == 3
        expr = minimized_expr(["A", "B", "C"], minterms)
        assert minterms_of(expr, ["A", "B", "C"]) == minterms

    def test_sr_latch(self):
        expr = minimized_expr(["S", "R", "Q"], [1, 4, 5], [6, 7])
        assert equivalent(parse("S + R'Q"), parse(sop_text(expr))) or \
            minterms_covered_ok(expr)

    def test_four_variables(self):
        minterms = [0, 2, 5, 7, 8, 10]
        expr = minimized_expr(["A", "B", "C", "D"], minterms, [13, 15])
        covered = set(minterms_of(expr, ["A", "B", "C", "D"]))
        assert set(minterms) <= covered
        assert covered <= set(minterms) | {13, 15}


def minterms_covered_ok(expr):
    covered = set(minterms_of(expr, ["S", "R", "Q"]))
    return {1, 4, 5} <= covered <= {1, 4, 5, 6, 7}


class TestPrimeImplicants:
    def test_single_minterm(self):
        primes = prime_implicants(2, [0])
        assert primes == [Implicant(0, 0)]

    def test_adjacent_pair_merges(self):
        primes = prime_implicants(2, [0, 1])
        assert Implicant(0, 1) in primes

    def test_uncoverable_raises(self):
        with pytest.raises(ValueError):
            minimize(1, [5])  # minterm outside the space never covered


class TestKmapGrid:
    def test_three_variable_shape(self):
        grid = kmap_grid(["A", "B", "C"], [0])
        assert len(grid) == 2 and len(grid[0]) == 4

    def test_four_variable_shape(self):
        grid = kmap_grid(["A", "B", "C", "D"], [])
        assert len(grid) == 4 and len(grid[0]) == 4

    def test_gray_order_cell_placement(self):
        # minterm 3 of (A,B,C) is A=0,B=1,C=1 -> row 0, gray column of 11
        grid = kmap_grid(["A", "B", "C"], [3])
        assert grid[0][2] == "1"  # gray columns: 00,01,11,10

    def test_dont_care_marked_x(self):
        grid = kmap_grid(["A", "B"], [0], [3])
        assert grid[1][1] == "X"

    def test_unsupported_size_raises(self):
        with pytest.raises(ValueError):
            kmap_grid(["A"], [0])


@settings(max_examples=60)
@given(st.sets(st.integers(0, 15), max_size=16),
       st.sets(st.integers(0, 15), max_size=4))
def test_minimize_is_correct_and_minimal_ish(minterms, dont_cares):
    """The minimised SOP covers exactly the on-set (modulo don't-cares)."""
    minterms = sorted(minterms)
    dont_cares = sorted(set(dont_cares) - set(minterms))
    names = ["A", "B", "C", "D"]
    expr = minimized_expr(names, minterms, dont_cares)
    covered = set(minterms_of(expr, names))
    assert set(minterms) <= covered
    assert covered <= set(minterms) | set(dont_cares)
    # never worse than the canonical sum of minterms in term count
    if minterms:
        canonical = from_minterms(names, minterms)
        assert _term_count(expr) <= _term_count(canonical)


def _term_count(expr):
    from repro.digital.expr import Or

    if isinstance(expr, Or):
        return len(expr.operands)
    return 1
