"""Tests for the dataset-collection pipeline (future-work extension)."""

import dataclasses

import pytest

from repro.core.collection import (
    CollectionPipeline,
    ReviewStatus,
    balance_report,
    find_near_duplicates,
    mc_sa_report,
    prompt_similarity,
    review_question,
)
from repro.core.dataset import Dataset
from repro.core.question import (
    AnswerKind,
    AnswerSpec,
    Category,
    VisualContent,
    VisualType,
    make_mc_question,
    make_sa_question,
)


def _good_question(qid="c-1", prompt=None):
    return make_mc_question(
        qid, Category.DIGITAL,
        prompt or "Given the gate network shown, determine the output "
                  "value of F when all inputs are high.",
        VisualContent(VisualType.SCHEMATIC, "network"),
        ("F = 1", "F = 0", "F = A", "F = B'"), 0,
        difficulty=0.4, topics=("logic",))


class TestSimilarity:
    def test_identical_prompts(self):
        assert prompt_similarity("the same words here",
                                 "the same words here") == 1.0

    def test_disjoint_prompts(self):
        assert prompt_similarity("alpha beta gamma delta",
                                 "completely different text entirely") \
            < 0.2

    def test_near_duplicate_detected(self):
        base = _good_question("c-1")
        clone = _good_question(
            "c-2",
            prompt="Given the gate network shown, determine the output "
                   "value of F when all inputs are low.")
        hits = find_near_duplicates(clone, [base], threshold=0.5)
        assert hits and hits[0][0] == "c-1"

    def test_self_excluded(self):
        question = _good_question()
        assert find_near_duplicates(question, [question]) == []


class TestReviewChecklist:
    def test_good_question_passes(self):
        assert review_question(_good_question()) == []

    def test_missing_topics_flagged(self):
        question = dataclasses.replace(_good_question(), topics=())
        assert any("topic" in issue for issue in review_question(question))

    def test_saturated_difficulty_flagged(self):
        question = dataclasses.replace(_good_question(), difficulty=1.0)
        assert any("difficulty" in issue
                   for issue in review_question(question))

    def test_short_prompt_flagged(self):
        question = make_sa_question(
            "c-9", Category.ANALOG, "Gain?",
            VisualContent(VisualType.SCHEMATIC, "s"),
            AnswerSpec(AnswerKind.NUMERIC, "10"), difficulty=0.5,
            topics=("gain",))
        assert any("short" in issue for issue in review_question(question))

    def test_dissimilar_options_flagged(self):
        question = make_mc_question(
            "c-8", Category.DIGITAL,
            "Pick the correct expression for the circuit shown below.",
            VisualContent(VisualType.SCHEMATIC, "s"),
            ("AB + C", "no", "x", "certainly not this much longer one!!"),
            0, difficulty=0.5, topics=("logic",))
        assert any("similar" in issue for issue in review_question(question))

    def test_duplicate_against_corpus_flagged(self):
        base = _good_question("c-1")
        clone = _good_question("c-2")
        issues = review_question(clone, corpus=[base])
        assert any("near-duplicate" in issue for issue in issues)

    def test_advisory_issue_does_not_block_acceptance(self):
        question = make_mc_question(
            "c-10", Category.DIGITAL,
            "Pick the correct expression for the circuit shown below.",
            VisualContent(VisualType.SCHEMATIC, "s"),
            ("AB + C", "no", "x", "certainly not this much longer one!!"),
            0, difficulty=0.5, topics=("logic",))
        pipeline = CollectionPipeline()
        pipeline.submit(question)
        record = pipeline.review("c-10")
        assert record.status is ReviewStatus.ACCEPTED
        assert any("advisory" in issue for issue in record.issues)

    def test_shipped_benchmark_has_no_blocking_issues(self, chipvqa):
        for question in chipvqa:
            blocking = [
                issue for issue in review_question(question, corpus=[])
                if not issue.startswith("advisory:")
            ]
            assert blocking == [], (question.qid, blocking)


class TestPipeline:
    def test_accept_flow(self):
        pipeline = CollectionPipeline()
        pipeline.submit(_good_question("c-1"))
        record = pipeline.review("c-1")
        assert record.status is ReviewStatus.ACCEPTED
        assert len(pipeline.accepted) == 1

    def test_reject_flow(self):
        pipeline = CollectionPipeline()
        bad = dataclasses.replace(_good_question("c-2"), topics=())
        pipeline.submit(bad)
        record = pipeline.review("c-2")
        assert record.status is ReviewStatus.REJECTED
        assert len(pipeline.accepted) == 0

    def test_duplicate_submission_rejected(self):
        pipeline = CollectionPipeline()
        pipeline.submit(_good_question("c-3"))
        with pytest.raises(ValueError):
            pipeline.submit(_good_question("c-3"))

    def test_second_similar_question_rejected(self):
        pipeline = CollectionPipeline()
        pipeline.submit(_good_question("c-1"))
        pipeline.submit(_good_question(
            "c-2",
            prompt="Given the gate network shown, determine the output "
                   "value of F when all inputs are low."))
        outcome = pipeline.review_all()
        assert outcome["c-1"] is ReviewStatus.ACCEPTED
        assert outcome["c-2"] is ReviewStatus.REJECTED
        assert pipeline.acceptance_rate() == 0.5

    def test_acceptance_rate_requires_reviews(self):
        with pytest.raises(ValueError):
            CollectionPipeline().acceptance_rate()

    def test_grows_existing_benchmark(self, chipvqa):
        pipeline = CollectionPipeline(seed_corpus=chipvqa)
        pipeline.submit(_good_question(
            "new-1",
            prompt="A three-stage charge pump doubles its input at every "
                   "stage as sketched; what output voltage results from "
                   "a 1 V supply after the final stage settles?"))
        record = pipeline.review("new-1")
        assert record.status is ReviewStatus.ACCEPTED
        assert len(pipeline.accepted) == 143


class TestBalancing:
    def test_balance_report(self, chipvqa):
        needed = balance_report(chipvqa, target_per_category=44)
        assert needed[Category.ANALOG] == 0
        assert needed[Category.ARCHITECTURE] == 24
        assert needed[Category.DIGITAL] == 9

    def test_mc_sa_report(self, chipvqa):
        needed = mc_sa_report(chipvqa, target_sa_fraction=0.3)
        # Digital is all-MC: needs SA authoring
        assert needed[Category.DIGITAL] == round(0.3 * 35)
        # Manufacture is already SA-heavy
        assert needed[Category.MANUFACTURING] == 0

    def test_validation(self, chipvqa):
        with pytest.raises(ValueError):
            balance_report(chipvqa, -1)
        with pytest.raises(ValueError):
            mc_sa_report(chipvqa, 1.5)
