"""Integration tests: the paper's tables and studies reproduced end to end."""

import pytest

from repro.core.harness import EvaluationHarness, run_table2
from repro.core.question import Category
from repro.core.report import (
    CATEGORY_ORDER,
    render_resolution_study,
    render_table2,
    render_table3,
)
from repro.judge import HybridJudge
from repro.models import (
    NO_CHOICE,
    WITH_CHOICE,
    build_model,
    build_zoo,
    paper_rates,
    quota,
)


@pytest.fixture(scope="module")
def harness():
    return EvaluationHarness()


@pytest.fixture(scope="module")
def gpt4o_results(harness):
    model = build_model("gpt-4o")
    return {
        WITH_CHOICE: harness.zero_shot_standard(model),
        NO_CHOICE: harness.zero_shot_challenge(model),
    }


class TestTable2GPT4o:
    """Spot-check the headline numbers of Table II."""

    def test_with_choice_overall(self, gpt4o_results):
        assert gpt4o_results[WITH_CHOICE].pass_at_1() == \
            pytest.approx(0.44, abs=0.01)

    def test_no_choice_overall(self, gpt4o_results):
        assert gpt4o_results[NO_CHOICE].pass_at_1() == \
            pytest.approx(0.20, abs=0.015)

    @pytest.mark.parametrize("category,rate", [
        (Category.DIGITAL, 0.49),
        (Category.ARCHITECTURE, 0.30),
        (Category.MANUFACTURING, 0.20),
        (Category.PHYSICAL, 0.61),
    ])
    def test_with_choice_per_category(self, gpt4o_results, category, rate):
        observed = gpt4o_results[WITH_CHOICE].pass_at_1_by_category()
        assert observed[category] == pytest.approx(rate, abs=0.02)

    def test_challenge_drops_performance(self, gpt4o_results):
        assert gpt4o_results[NO_CHOICE].pass_at_1() < \
            gpt4o_results[WITH_CHOICE].pass_at_1()


class TestTable2Zoo:
    """Every zoo model's realised rates match its calibration quotas."""

    @pytest.mark.parametrize("name", [n for n, _ in
                                      __import__("repro.models.zoo",
                                                 fromlist=["TABLE2_ROW_ORDER"]
                                                 ).TABLE2_ROW_ORDER])
    def test_realised_category_rates(self, harness, name, chipvqa):
        model = build_model(name)
        result = harness.zero_shot_standard(model)
        counts = result.category_counts()
        rates = paper_rates(name, WITH_CHOICE)
        for category, (correct, total) in counts.items():
            assert correct == quota(rates[category], total), \
                f"{name}/{category.short}"

    def test_gpt4o_leads_all(self, harness):
        results = run_table2([build_model("gpt-4o"),
                              build_model("llava-7b"),
                              build_model("kosmos-2")], harness)
        gpt = results["gpt-4o"][WITH_CHOICE].pass_at_1()
        assert gpt > results["llava-7b"][WITH_CHOICE].pass_at_1()
        assert gpt > results["kosmos-2"][WITH_CHOICE].pass_at_1()

    def test_mc_beats_sa_for_every_model(self, harness):
        for name in ("gpt-4o", "llava-34b", "vila-yi-34b"):
            model = build_model(name)
            with_choice = harness.zero_shot_standard(model).pass_at_1()
            no_choice = harness.zero_shot_challenge(model).pass_at_1()
            assert with_choice > no_choice, name

    def test_render_table2(self, harness):
        results = run_table2([build_model("gpt-4o")], harness)
        text = render_table2(results)
        assert "MC:Digital" in text and "0.49" in text


class TestResolutionStudy:
    """Section IV-B: 0.49 native, 0.49 at 8x, 0.37 at 16x."""

    @pytest.fixture(scope="class")
    def study(self):
        harness = EvaluationHarness()
        return harness.resolution_study(build_model("gpt-4o"))

    def test_native_rate(self, study):
        assert study[1].pass_at_1() == pytest.approx(0.49, abs=0.01)

    def test_8x_preserves_rate(self, study):
        assert study[8].pass_at_1() == pytest.approx(study[1].pass_at_1(),
                                                     abs=0.01)

    def test_16x_drops_rate(self, study):
        assert study[16].pass_at_1() == pytest.approx(0.37, abs=0.01)

    def test_report_renders(self, study):
        text = render_resolution_study(study)
        assert "16x" in text and "0.37" in text


class TestTable3Agent:
    @pytest.fixture(scope="class")
    def table3(self):
        from repro.agent import run_table3

        return run_table3()

    def test_values(self, table3):
        assert table3["gpt4o"][WITH_CHOICE].pass_at_1() == \
            pytest.approx(0.44, abs=0.01)
        assert table3["agent"][WITH_CHOICE].pass_at_1() == \
            pytest.approx(0.49, abs=0.01)
        assert table3["agent"][NO_CHOICE].pass_at_1() == \
            pytest.approx(0.21, abs=0.01)

    def test_agent_manufacturing_regression(self, table3):
        gpt = table3["gpt4o"][WITH_CHOICE].pass_at_1_by_category()
        agent = table3["agent"][WITH_CHOICE].pass_at_1_by_category()
        assert agent[Category.MANUFACTURING] < gpt[Category.MANUFACTURING]

    def test_render(self, table3):
        text = render_table3(table3["gpt4o"], table3["agent"])
        assert "Agent" in text and "GPT4o" in text


class TestJudgeFidelity:
    """Planned outcomes and judged outcomes must agree for every model."""

    @pytest.mark.parametrize("name", ["gpt-4o", "llava-7b", "fuyu-8b",
                                      "paligemma"])
    def test_no_plan_judge_mismatch(self, name, chipvqa, chipvqa_challenge):
        judge = HybridJudge()
        model = build_model(name)
        for dataset, setting in ((chipvqa, WITH_CHOICE),
                                 (chipvqa_challenge, NO_CHOICE)):
            questions = list(dataset)
            for question, answer in zip(
                    questions, model.answer_all(questions, setting)):
                verdict = judge.judge(question, answer.text)
                assert verdict.correct == answer.planned_correct, \
                    (name, question.qid, answer.text)


class TestBackboneScaling:
    """Section IV-A: stronger LLM backbones score higher (LLaVA study)."""

    def test_text_ability_correlates_with_score(self, harness):
        from repro.core.metrics import spearman_rank_correlation
        from repro.models import LLAVA_BACKBONE_STUDY

        abilities, scores = [], []
        for name, _ in LLAVA_BACKBONE_STUDY:
            model = build_model(name)
            abilities.append(model.backbone.text_ability)
            scores.append(harness.zero_shot_challenge(model).pass_at_1())
        rho = spearman_rank_correlation(abilities, scores)
        assert rho > 0.7
