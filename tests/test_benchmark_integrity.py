"""The assembled benchmark must match every Table I statistic."""

import pytest

from repro.core.benchmark import (
    BenchmarkIntegrityError,
    build_chipvqa,
    validate_chipvqa,
)
from repro.core.dataset import Dataset
from repro.core.question import (
    CATEGORY_COUNTS,
    CATEGORY_MC_COUNTS,
    Category,
    QuestionType,
    VISUAL_TYPE_COUNTS,
    VisualType,
)


class TestTable1Statistics:
    def test_total_questions(self, chipvqa):
        assert len(chipvqa) == 142

    def test_mc_sa_split(self, chipvqa):
        counts = chipvqa.type_counts()
        assert counts[QuestionType.MULTIPLE_CHOICE] == 99
        assert counts[QuestionType.SHORT_ANSWER] == 43

    @pytest.mark.parametrize("category,expected", [
        (Category.DIGITAL, 35),
        (Category.ANALOG, 44),
        (Category.ARCHITECTURE, 20),
        (Category.MANUFACTURING, 20),
        (Category.PHYSICAL, 23),
    ])
    def test_category_counts(self, chipvqa, category, expected):
        assert chipvqa.category_counts()[category] == expected

    @pytest.mark.parametrize("visual_type,expected",
                             sorted(VISUAL_TYPE_COUNTS.items(),
                                    key=lambda kv: kv[0].value))
    def test_visual_type_counts(self, chipvqa, visual_type, expected):
        assert chipvqa.visual_counts().get(visual_type, 0) == expected

    def test_visual_component_total_is_144(self, chipvqa):
        assert chipvqa.visual_component_total() == 144

    def test_digital_and_analog_are_all_mc(self, chipvqa):
        mc = chipvqa.mc_counts_by_category()
        assert mc[Category.DIGITAL] == 35
        assert mc[Category.ANALOG] == 44

    def test_manufacturing_skews_short_answer(self, chipvqa):
        mc = chipvqa.mc_counts_by_category()[Category.MANUFACTURING]
        assert mc < 20 - mc  # more SA than MC, per Section IV-A

    def test_token_stats_match_table1(self, chipvqa):
        stats = chipvqa.token_stats()
        assert abs(stats.mean - 51.0) < 3.0
        assert stats.minimum == 5
        assert 300 <= stats.maximum <= 400


class TestQuestionQuality:
    def test_qids_unique_and_prefixed(self, chipvqa):
        prefixes = {"dig", "ana", "arc", "mfg", "phy"}
        for question in chipvqa:
            assert question.qid.split("-")[0] in prefixes

    def test_every_question_has_a_visual(self, chipvqa):
        for question in chipvqa:
            assert question.all_visuals

    def test_every_visual_has_a_scene(self, chipvqa):
        # all our questions render (no placeholder-only figures)
        for question in chipvqa:
            for visual in question.all_visuals:
                assert visual.render_spec, question.qid

    def test_mc_choices_are_distinct(self, chipvqa):
        for question in chipvqa:
            if question.is_multiple_choice:
                assert len(set(question.choices)) == 4, question.qid

    def test_difficulties_span_a_range(self, chipvqa):
        difficulties = [q.difficulty for q in chipvqa]
        assert min(difficulties) < 0.3
        assert max(difficulties) > 0.7

    def test_topics_annotated(self, chipvqa):
        assert all(q.topics for q in chipvqa)

    def test_build_is_cached(self):
        assert build_chipvqa() is build_chipvqa()


class TestValidator:
    def test_rejects_wrong_total(self, chipvqa):
        truncated = Dataset(list(chipvqa)[:100])
        with pytest.raises(BenchmarkIntegrityError, match="142"):
            validate_chipvqa(truncated)

    def test_accepts_the_real_benchmark(self, chipvqa):
        validate_chipvqa(chipvqa)  # must not raise


class TestValidatorMutations:
    """The validator must catch every class of structural drift."""

    def _mutate(self, chipvqa, index, **changes):
        import dataclasses

        questions = list(chipvqa)
        questions[index] = dataclasses.replace(questions[index], **changes)
        return Dataset(questions)

    def test_catches_category_drift(self, chipvqa):
        import dataclasses

        mutated = self._mutate(chipvqa, 0, category=Category.ANALOG,
                               qid="dig-xx")
        with pytest.raises(BenchmarkIntegrityError):
            validate_chipvqa(mutated)

    def test_catches_visual_type_drift(self, chipvqa):
        import dataclasses

        question = chipvqa[1]
        new_visual = dataclasses.replace(
            question.visual, visual_type=VisualType.CURVE)
        mutated = self._mutate(chipvqa, 1, visual=new_visual)
        with pytest.raises(BenchmarkIntegrityError, match="visual"):
            validate_chipvqa(mutated)

    def test_catches_mc_sa_drift(self, chipvqa):
        from repro.core.transforms import to_short_answer

        questions = list(chipvqa)
        questions[0] = to_short_answer(questions[0])
        with pytest.raises(BenchmarkIntegrityError):
            validate_chipvqa(Dataset(questions))
