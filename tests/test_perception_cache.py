"""Tests for the content-addressed perception pipeline.

Covers the hard invariants of the memoization layer: cached and uncached
paths produce byte-identical artifacts, `SimulatedVLM` perceives each
(question, factor) exactly once per run, and the caches are safe and
effective under parallel workers.
"""

import threading

from repro.core import perfstats, results_io
from repro.core.harness import EvaluationHarness
from repro.core.question import Category
from repro.core.runner import ParallelRunner, WorkUnit
from repro.models import WITH_CHOICE, build_model
from repro.models.encoder import VisualEncoder


def _clear_perception_caches():
    """Empty the substrate caches without touching their counters' owners."""
    for name in ("render", "legibility", "perception"):
        cache = perfstats.get_cache(name)
        if cache is not None:
            cache.clear()


class CountingEncoder:
    """Delegating wrapper that counts ``perceive_question`` invocations."""

    def __init__(self, inner: VisualEncoder):
        self._inner = inner
        self.calls = []  # (qid, factor) per invocation

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def perceive_question(self, question, external_factor=1,
                          use_raster=True):
        self.calls.append((question.qid, external_factor))
        return self._inner.perceive_question(question, external_factor,
                                             use_raster)


class TestSinglePassPerception:
    def test_exactly_one_perceive_per_question_at_native(self, chipvqa):
        model = build_model("gpt-4o")
        counting = CountingEncoder(model.encoder)
        model.encoder = counting
        questions = list(chipvqa.by_category(Category.DIGITAL))
        model.answer_all(questions, WITH_CHOICE)
        assert sorted(counting.calls) == sorted(
            (q.qid, 1) for q in questions)

    def test_exactly_one_perceive_per_question_per_factor_degraded(
            self, chipvqa):
        model = build_model("gpt-4o")
        counting = CountingEncoder(model.encoder)
        model.encoder = counting
        questions = list(chipvqa.by_category(Category.DIGITAL))
        model.answer_all(questions, WITH_CHOICE, resolution_factor=8)
        # one pass at the degraded factor + one native pass for the
        # rate multiplier — exactly one call per (question, factor)
        expected = sorted([(q.qid, 8) for q in questions]
                          + [(q.qid, 1) for q in questions])
        assert sorted(counting.calls) == expected

    def test_answer_perception_matches_plan_perception(self, chipvqa):
        """The perception stored on each answer is the same value the
        plan was built from (no separate re-perceive pass)."""
        model = build_model("llava-7b")
        questions = list(chipvqa.by_category(Category.ANALOG))
        answers = model.answer_all(questions, WITH_CHOICE)
        expected = model._perceptions(questions, 1, True)
        for answer in answers:
            assert answer.perception == expected[answer.qid]


class TestPerceptionCacheEquivalence:
    def test_cold_and_warm_scores_identical(self, chipvqa):
        encoder = VisualEncoder()
        visual = chipvqa[0].visual
        _clear_perception_caches()
        cold = encoder.perceive(visual, 8)
        warm = encoder.perceive(visual, 8)
        _clear_perception_caches()
        recold = encoder.perceive(visual, 8)
        assert cold == warm == recold

    def test_models_sharing_encoder_config_share_entries(self, chipvqa):
        a = VisualEncoder(name="vit-l", input_resolution=336)
        b = VisualEncoder(name="vit-l", input_resolution=336)
        _clear_perception_caches()
        visual = chipvqa[0].visual
        a.perceive(visual, 8)
        before = perfstats.snapshot()["perception"]
        b.perceive(visual, 8)  # identical config: must hit
        after = perfstats.snapshot()["perception"]
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]

    def test_distinct_encoder_configs_do_not_collide(self, chipvqa):
        visual = chipvqa[0].visual
        wide = VisualEncoder(input_resolution=768)
        narrow = VisualEncoder(input_resolution=224)
        assert wide.perceive(visual, 8) != narrow.perceive(visual, 8)


class TestEvaluateCacheEquivalence:
    def _dumps(self, result):
        return results_io.dumps(result, telemetry=False)

    def test_cold_warm_and_parallel_artifacts_identical(self, chipvqa):
        """The tentpole invariant: cold caches, warm caches and a
        multi-worker run all produce byte-identical JSONL artifacts."""
        harness = EvaluationHarness(use_raster=True)
        model = build_model("phi3-vision")
        subset = chipvqa.by_category(Category.PHYSICAL)

        _clear_perception_caches()
        cold = self._dumps(harness.evaluate(model, subset, WITH_CHOICE,
                                            resolution_factor=8))
        warm = self._dumps(harness.evaluate(model, subset, WITH_CHOICE,
                                            resolution_factor=8))
        assert warm == cold

        units = [WorkUnit(model=model, dataset=subset, setting=WITH_CHOICE,
                          resolution_factor=8, use_raster=True)]
        outcome = ParallelRunner(harness=harness, workers=4).run(units)
        parallel = self._dumps(outcome.result_for(units[0]))
        assert parallel == cold

    def test_render_thread_safety_under_runner_workers(self, chipvqa):
        """Hammer the raster path from 8 threads over cold caches; every
        thread must see identical scores and no exceptions."""
        _clear_perception_caches()
        encoder = VisualEncoder()
        questions = list(chipvqa.by_category(Category.DIGITAL))[:8]
        reference = {
            q.qid: encoder.perceive_question(q, 8) for q in questions
        }
        _clear_perception_caches()
        errors = []

        def worker():
            try:
                for q in questions:
                    assert encoder.perceive_question(q, 8) \
                        == reference[q.qid]
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors


class TestDatasetCache:
    def test_build_chipvqa_memoized(self):
        from repro.core.benchmark import build_chipvqa

        assert build_chipvqa() is build_chipvqa()

    def test_challenge_memoized(self):
        from repro.core.benchmark import build_chipvqa_challenge

        assert build_chipvqa_challenge() is build_chipvqa_challenge()

    def test_dataset_cache_counts_hits(self):
        from repro.core.benchmark import build_chipvqa

        build_chipvqa()
        before = perfstats.snapshot()["dataset"]["hits"]
        build_chipvqa()
        assert perfstats.snapshot()["dataset"]["hits"] == before + 1
