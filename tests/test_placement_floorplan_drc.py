"""Tests for placement legalisation, slicing floorplans and DRC."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.physical import drc, floorplan, placement
from repro.physical.floorplan import Block
from repro.physical.geometry import Point, Rect
from repro.physical.placement import Cell


class TestLegalize:
    def test_non_overlapping_result(self):
        cells = [Cell("a", 2.0, Point(1.0, 0.0)),
                 Cell("b", 2.0, Point(1.5, 0.0)),
                 Cell("c", 2.0, Point(2.0, 0.0))]
        placed = placement.legalize(cells, [0.0], 10.0, 1.0)
        assert not placement.has_overlaps(placed)

    def test_displacement_computed(self):
        cells = [Cell("a", 2.0, Point(0.0, 0.0)),
                 Cell("b", 2.0, Point(0.0, 0.0))]
        placed = placement.legalize(cells, [0.0], 10.0, 1.0)
        assert placement.total_displacement(placed) == pytest.approx(2.0)
        assert placement.max_displacement(placed) == pytest.approx(2.0)

    def test_spills_to_other_row(self):
        cells = [Cell("a", 8.0, Point(0.0, 0.0)),
                 Cell("b", 8.0, Point(0.0, 0.0))]
        placed = placement.legalize(cells, [0.0, 1.0], 10.0, 1.0)
        rows_used = {p.rect.y for p in placed}
        assert len(rows_used) == 2

    def test_cell_too_wide_raises(self):
        with pytest.raises(ValueError, match="wider"):
            placement.legalize([Cell("a", 20.0, Point(0, 0))],
                               [0.0], 10.0, 1.0)

    def test_overflow_raises(self):
        cells = [Cell(f"c{i}", 6.0, Point(0.0, 0.0)) for i in range(3)]
        with pytest.raises(ValueError, match="fit"):
            placement.legalize(cells, [0.0], 10.0, 1.0)

    @settings(max_examples=30)
    @given(st.lists(st.tuples(st.floats(0.5, 3.0), st.floats(0.0, 15.0)),
                    min_size=1, max_size=12))
    def test_legal_placement_properties(self, specs):
        cells = [Cell(f"c{i}", w, Point(x, 0.0))
                 for i, (w, x) in enumerate(specs)]
        total_width = sum(c.width for c in cells)
        rows = [float(i) for i in range(int(total_width / 20.0) + 2)]
        placed = placement.legalize(cells, rows, 20.0, 1.0)
        assert len(placed) == len(cells)
        assert not placement.has_overlaps(placed)
        for p in placed:
            assert 0.0 <= p.rect.x
            assert p.rect.x2 <= 20.0 + 1e-9


class TestUtilisation:
    def test_utilization(self):
        assert placement.utilization([40.0, 60.0], 200.0) == 0.5

    def test_rows_required(self):
        assert placement.rows_required(300.0, 50.0, 0.8) == 8

    def test_pin_density(self):
        assert placement.pin_density(100, 50.0) == 2.0


class TestFloorplan:
    _BLOCKS = {"A": Block("A", 4.0, 3.0), "B": Block("B", 4.0, 2.0),
               "C": Block("C", 2.0, 4.0)}

    def test_pack_h(self):
        assert floorplan.pack(["A", "B", "H"], self._BLOCKS) == (4.0, 5.0)

    def test_pack_v(self):
        assert floorplan.pack(["A", "B", "V"], self._BLOCKS) == (8.0, 3.0)

    def test_nested_expression(self):
        assert floorplan.pack(["A", "B", "H", "C", "V"], self._BLOCKS) == \
            (6.0, 5.0)

    def test_area_and_dead_space(self):
        expr = ["A", "B", "H", "C", "V"]
        assert floorplan.chip_area(expr, self._BLOCKS) == 30.0
        assert floorplan.dead_space(expr, self._BLOCKS) == pytest.approx(2.0)
        assert floorplan.dead_space_percent(expr, self._BLOCKS) == \
            pytest.approx(100.0 * 2.0 / 30.0)

    def test_malformed_expression_rejected(self):
        with pytest.raises(ValueError):
            floorplan.pack(["A", "H"], self._BLOCKS)
        with pytest.raises(ValueError):
            floorplan.pack(["A", "B"], self._BLOCKS)

    def test_unknown_block_rejected(self):
        with pytest.raises(ValueError):
            floorplan.pack(["Z", "A", "H"], self._BLOCKS)

    def test_normalized_check(self):
        assert floorplan.is_normalized(["A", "B", "H", "C", "V"])
        # skewed but legal: operators separated by an operand
        assert floorplan.is_normalized(["A", "B", "H", "C", "H"])
        # adjacent identical operators violate normalisation
        assert not floorplan.is_normalized(["A", "B", "C", "H", "H"])
        # balloting violation: operator before enough operands
        assert not floorplan.is_normalized(["A", "H", "B"])

    def test_aspect_ratio(self):
        assert floorplan.aspect_ratio(["A", "B", "V"], self._BLOCKS) == \
            pytest.approx(8.0 / 3.0)

    def test_best_orientation_no_worse(self):
        expr = ["A", "B", "H", "C", "V"]
        assert floorplan.best_orientation_area(expr, self._BLOCKS) <= \
            floorplan.chip_area(expr, self._BLOCKS)

    def test_dead_space_nonnegative_property(self):
        expr = ["A", "C", "V", "B", "H"]
        assert floorplan.dead_space(expr, self._BLOCKS) >= -1e-9


class TestDrc:
    _RULES = drc.RuleSet(min_width=1.0, min_spacing=1.0, min_enclosure=0.2)

    def test_width_violation(self):
        violations = drc.check_width([Rect(0, 0, 0.8, 5)], self._RULES)
        assert len(violations) == 1
        assert violations[0].kind == "width"
        assert violations[0].value == pytest.approx(0.8)

    def test_spacing_violation(self):
        shapes = [Rect(0, 0, 2, 5), Rect(2.5, 0, 2, 5)]
        violations = drc.check_spacing(shapes, self._RULES)
        assert len(violations) == 1
        assert violations[0].shapes == (0, 1)

    def test_overlap_counts_as_zero_spacing(self):
        shapes = [Rect(0, 0, 2, 5), Rect(1, 0, 2, 5)]
        violations = drc.check_spacing(shapes, self._RULES)
        assert violations[0].value == 0.0

    def test_clean_layout_passes(self):
        shapes = [Rect(0, 0, 2, 5), Rect(3.5, 0, 2, 5)]
        assert drc.check_layer(shapes, self._RULES) == []

    def test_enclosure(self):
        via = [Rect(1, 1, 0.5, 0.5)]
        metal_good = [Rect(0.5, 0.5, 1.5, 1.5)]
        metal_bad = [Rect(0.9, 0.9, 0.7, 0.7)]
        assert drc.check_enclosure(via, metal_good, self._RULES) == []
        assert len(drc.check_enclosure(via, metal_bad, self._RULES)) == 1

    def test_violation_str(self):
        violation = drc.check_width([Rect(0, 0, 0.5, 5)], self._RULES)[0]
        assert "width" in str(violation)

    def test_diagonal_spacing_uses_euclidean(self):
        shapes = [Rect(0, 0, 1, 1), Rect(1.5, 1.5, 1, 1)]
        spacing = shapes[0].spacing_to(shapes[1])
        assert spacing == pytest.approx((0.5 ** 2 + 0.5 ** 2) ** 0.5)
