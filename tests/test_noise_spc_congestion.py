"""Tests for the extension substrates: noise, SPC, congestion."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analog import noise
from repro.manufacturing import spc
from repro.physical.congestion import (
    hotspots,
    report,
    rudy_map,
    spread_cells,
)
from repro.physical.geometry import Point


class TestNoise:
    def test_resistor_thermal_classic_value(self):
        # 1 kOhm at 300 K: ~4.07 nV/sqrt(Hz)
        density = noise.resistor_thermal_vsd(1000.0)
        assert math.sqrt(density) == pytest.approx(4.07e-9, rel=0.01)

    def test_integrated_rms_scales_with_sqrt_bw(self):
        narrow = noise.resistor_thermal_vrms(1000.0, 1e3)
        wide = noise.resistor_thermal_vrms(1000.0, 4e3)
        assert wide == pytest.approx(2.0 * narrow)

    def test_mos_thermal(self):
        density = noise.mos_thermal_isd(1e-3)
        assert density == pytest.approx(
            4 * noise.BOLTZMANN * 300.0 * (2 / 3) * 1e-3)

    def test_flicker_corner(self):
        corner = noise.flicker_corner_hz(kf_v2=1e-10, gm=1e-3)
        # flicker equals thermal there
        thermal = noise.mos_thermal_isd(1e-3) / (1e-3) ** 2
        assert noise.mos_flicker_vsd(1e-10, corner) == \
            pytest.approx(thermal, rel=1e-9)

    def test_cs_input_referred_dominated_by_device(self):
        total = noise.cs_input_referred_vsd(gm=5e-3, r_load=10e3)
        device_only = noise.mos_thermal_isd(5e-3) / (5e-3) ** 2
        assert total > device_only
        assert total < 2.0 * device_only  # load contribution is smaller

    def test_friis_cascade(self):
        v1, v2 = 1e-17, 4e-17
        assert noise.cascaded_input_noise(v1, v2, gain1=10.0) == \
            pytest.approx(v1 + v2 / 100.0)

    def test_ktc(self):
        # 1 pF at 300 K: ~64 uV rms
        assert noise.kt_over_c_vrms(1e-12) == pytest.approx(64.3e-6,
                                                            rel=0.01)

    def test_snr(self):
        assert noise.snr_db(1.0, 0.001) == pytest.approx(60.0)

    def test_noise_figure(self):
        assert noise.noise_figure_db(0.0, 1e-18) == 0.0
        assert noise.noise_figure_db(1e-18, 1e-18) == pytest.approx(3.01,
                                                                    abs=0.01)

    @given(st.floats(1.0, 1e7))
    def test_thermal_density_linear_in_r(self, r):
        assert noise.resistor_thermal_vsd(2 * r) == \
            pytest.approx(2 * noise.resistor_thermal_vsd(r))


class TestSpc:
    SUBGROUPS = [[10.1, 9.9, 10.0, 10.2], [10.0, 10.1, 9.8, 10.0],
                 [9.9, 10.0, 10.1, 10.0], [10.2, 10.0, 9.9, 10.1]]

    def test_xbar_limits_bracket_center(self):
        limits = spc.xbar_limits(self.SUBGROUPS)
        assert limits.lcl < limits.center < limits.ucl
        assert limits.center == pytest.approx(10.01875, abs=1e-6)

    def test_r_limits_nonnegative(self):
        limits = spc.r_limits(self.SUBGROUPS)
        assert limits.lcl == 0.0  # D3 = 0 for n = 4
        assert limits.ucl > limits.center

    def test_estimated_sigma_positive(self):
        assert spc.estimated_sigma(self.SUBGROUPS) > 0

    def test_subgroup_validation(self):
        with pytest.raises(ValueError):
            spc.xbar_limits([])
        with pytest.raises(ValueError):
            spc.xbar_limits([[1.0]])
        with pytest.raises(ValueError):
            spc.xbar_limits([[1.0, 2.0], [1.0]])

    def test_out_of_control_detection(self):
        limits = spc.ControlLimits(10.0, 9.0, 11.0)
        points = [10.0, 10.5, 12.0, 9.5, 8.5]
        assert spc.out_of_control_points(points, limits) == [2, 4]

    def test_run_rule(self):
        values = [10.1] * 8 + [9.9]
        violations = spc.run_rule_violations(values, center=10.0,
                                             run_length=8)
        assert violations == [7]

    def test_run_rule_resets_on_crossing(self):
        values = [10.1] * 4 + [9.9] + [10.1] * 4
        assert spc.run_rule_violations(values, 10.0, run_length=8) == []

    def test_cp_cpk(self):
        assert spc.cp(13.0, 7.0, 1.0) == pytest.approx(1.0)
        assert spc.cpk(13.0, 7.0, 10.0, 1.0) == pytest.approx(1.0)
        # off-centre process: cpk < cp
        assert spc.cpk(13.0, 7.0, 11.5, 1.0) < spc.cp(13.0, 7.0, 1.0)

    def test_defect_ppm_benchmarks(self):
        # Cpk = 1 -> ~1350 ppm one-sided; Cpk = 1.33 -> ~32 ppm
        assert spc.defect_ppm(1.0) == pytest.approx(1350.0, rel=0.01)
        assert spc.defect_ppm(1.33) == pytest.approx(33.0, rel=0.15)

    @given(st.floats(0.5, 2.0), st.floats(0.01, 2.0))
    def test_cpk_never_exceeds_cp(self, offset, sigma):
        usl, lsl, mean = 13.0, 7.0, 10.0 + offset
        assert spc.cpk(usl, lsl, mean, sigma) <= \
            spc.cp(usl, lsl, sigma) + 1e-12


class TestCongestion:
    def _cross_nets(self):
        return [
            [Point(2, 2), Point(14, 2)],
            [Point(2, 6), Point(14, 6)],
            [Point(8, 0), Point(8, 8)],
        ]

    def test_rudy_map_shape_and_mass(self):
        grid = rudy_map(self._cross_nets(), region=(16.0, 8.0),
                        bins=(8, 4))
        assert grid.shape == (4, 8)
        assert grid.sum() > 0

    def test_single_hot_bin(self):
        nets = [[Point(1, 1), Point(1.5, 1.5)]] * 5
        grid = rudy_map(nets, region=(16.0, 16.0), bins=(4, 4))
        assert grid[0, 0] > 0
        assert grid[3, 3] == 0

    def test_report_overflow(self):
        grid = np.array([[0.5, 2.0], [0.1, 0.4]])
        summary = report(grid, capacity=1.0)
        assert summary.peak == pytest.approx(2.0)
        assert summary.overflow_fraction == pytest.approx(0.25)
        assert not summary.routable()

    def test_hotspots_sorted(self):
        grid = np.array([[0.1, 0.9], [0.5, 0.2]])
        top = hotspots(grid, capacity=1.0, top=2)
        assert top[0][:2] == (0, 1)
        assert top[1][:2] == (1, 0)

    def test_spreading_relieves_congestion(self):
        nets = [[Point(7, 7), Point(9, 9)] for _ in range(10)]
        region = (16.0, 16.0)
        before = report(rudy_map(nets, region, bins=(8, 8)), capacity=1.0)
        relaxed = spread_cells(nets, region, factor=3.0)
        after = report(rudy_map(relaxed, region, bins=(8, 8)), capacity=1.0)
        assert after.peak < before.peak

    def test_validation(self):
        with pytest.raises(ValueError):
            rudy_map([], region=(0.0, 4.0))
        with pytest.raises(ValueError):
            report(np.zeros((2, 2)), capacity=0.0)
