"""Tests for evaluation-result persistence."""

import json
import random

import pytest

from repro.core import results_io
from repro.core.harness import EvaluationHarness, run_table2
from repro.core.metrics import EvalRecord, EvalResult
from repro.core.question import Category
from repro.models import WITH_CHOICE, build_model


def _small_result():
    result = EvalResult("test-model", "test-ds", "with_choice")
    result.add(EvalRecord("q-1", Category.DIGITAL, "A", True, "auto", 0.9))
    result.add(EvalRecord("q-2", Category.ANALOG, "", False, "manual", 0.5))
    return result


def _with_checksum(manifest_line, record_lines):
    """Patch a manifest line's sha256 to match the given record lines."""
    import hashlib

    head = json.loads(manifest_line)
    head["sha256"] = hashlib.sha256(
        "\n".join(record_lines).encode("utf-8")).hexdigest()
    return json.dumps(head, sort_keys=True)


class TestRoundTrip:
    def test_dumps_loads(self):
        result = _small_result()
        restored = results_io.loads(results_io.dumps(result))
        assert restored.model_name == result.model_name
        assert restored.pass_at_1() == result.pass_at_1()
        assert restored.records[1].judge_method == "manual"
        assert restored.records[0].perception == pytest.approx(0.9)

    def test_save_load_file(self, tmp_path):
        path = results_io.save(_small_result(), tmp_path / "r.jsonl")
        restored = results_io.load(path)
        assert len(restored) == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            results_io.loads("")

    def test_version_checked(self):
        text = results_io.dumps(_small_result()).replace(
            f'"format_version": {results_io.FORMAT_VERSION}',
            '"format_version": 99')
        with pytest.raises(ValueError, match="format"):
            results_io.loads(text)

    def test_truncation_detected(self):
        text = results_io.dumps(_small_result())
        truncated = "\n".join(text.splitlines()[:-1])
        with pytest.raises(ValueError, match="truncated"):
            results_io.loads(truncated)

    def test_full_evaluation_round_trip(self, tmp_path, chipvqa):
        harness = EvaluationHarness()
        result = harness.evaluate(build_model("paligemma"), chipvqa,
                                  WITH_CHOICE)
        restored = results_io.load(
            results_io.save(result, tmp_path / "pali.jsonl"))
        assert restored.pass_at_1() == result.pass_at_1()
        assert restored.pass_at_1_by_category() == \
            result.pass_at_1_by_category()


def _random_result(rng: random.Random) -> EvalResult:
    """A randomised EvalResult covering every serialised field,
    including the runner telemetry block."""
    methods = ("auto", "manual")
    snippets = ("B", "the gain is 40 dB", "", "x · y + z̅",
                "refused", "42 µm", 'quoted "answer"')
    result = EvalResult(
        model_name=f"model-{rng.randrange(1000)}",
        dataset_name=rng.choice(("chipvqa", "chipvqa/dig", "custom-ds")),
        setting=rng.choice(("with_choice", "no_choice")),
        resolution_factor=rng.choice((1, 2, 8, 16)),
    )
    if rng.random() < 0.7:
        result.telemetry = {
            "wall_time_s": round(rng.uniform(0, 100), 6),
            "attempts": float(rng.randrange(1, 5)),
            "retries": float(rng.randrange(0, 4)),
            "cache_hits": float(rng.randrange(0, 200)),
            "cache_misses": float(rng.randrange(0, 200)),
        }
    for index in range(rng.randrange(1, 25)):
        result.add(EvalRecord(
            qid=f"q-{index}",
            category=rng.choice(list(Category)),
            response=rng.choice(snippets),
            correct=rng.random() < 0.5,
            judge_method=rng.choice(methods),
            perception=round(rng.random(), 6),
        ))
    return result


class TestRoundTripProperty:
    def test_randomised_results_round_trip(self):
        """Property: loads(dumps(r)) == r over randomised results,
        telemetry and resolution factor included."""
        rng = random.Random(20260806)
        for _ in range(50):
            result = _random_result(rng)
            restored = results_io.loads(results_io.dumps(result))
            assert restored.model_name == result.model_name
            assert restored.dataset_name == result.dataset_name
            assert restored.setting == result.setting
            assert restored.resolution_factor == result.resolution_factor
            assert restored.telemetry == result.telemetry
            assert restored.records == result.records

    def test_dumps_without_telemetry_is_canonical(self):
        rng = random.Random(11)
        result = _random_result(rng)
        result.telemetry = {"wall_time_s": 1.25, "attempts": 2.0}
        stripped = results_io.dumps(result, telemetry=False)
        assert "telemetry" not in stripped
        restored = results_io.loads(stripped)
        assert restored.telemetry is None
        assert restored.records == result.records

    def test_file_round_trip_preserves_telemetry(self, tmp_path):
        result = _small_result()
        result.telemetry = {"wall_time_s": 0.5, "retries": 1.0}
        restored = results_io.load(
            results_io.save(result, tmp_path / "t.jsonl"))
        assert restored.telemetry == {"wall_time_s": 0.5, "retries": 1.0}


class TestForwardCompatibility:
    def test_unknown_manifest_keys_ignored(self):
        """A file written by a future minor revision with extra manifest
        keys must load, not crash."""
        text = results_io.dumps(_small_result())
        lines = text.splitlines()
        manifest = json.loads(lines[0])
        manifest["schema_url"] = "https://example.com/v2"
        manifest["shard"] = {"index": 3, "of": 8}
        lines[0] = json.dumps(manifest, sort_keys=True)
        restored = results_io.loads("\n".join(lines))
        assert len(restored) == 2
        assert restored.pass_at_1() == _small_result().pass_at_1()

    def test_unknown_record_keys_ignored(self):
        text = results_io.dumps(_small_result())
        lines = text.splitlines()
        for index in (1, 2):
            record = json.loads(lines[index])
            record["latency_ms"] = 12.5
            record["annotator"] = "a3"
            lines[index] = json.dumps(record, sort_keys=True)
        # a writer adding record fields recomputes the checksum too
        lines[0] = _with_checksum(lines[0], lines[1:])
        restored = results_io.loads("\n".join(lines))
        assert restored.records[0].qid == "q-1"
        assert restored.records[1].judge_method == "manual"

    def test_old_files_without_new_fields_load_with_defaults(self):
        """A pre-telemetry file (no resolution_factor/telemetry keys)
        still loads with the documented defaults."""
        text = results_io.dumps(_small_result())
        lines = text.splitlines()
        manifest = json.loads(lines[0])
        del manifest["resolution_factor"]
        manifest.pop("telemetry", None)
        lines[0] = json.dumps(manifest, sort_keys=True)
        restored = results_io.loads("\n".join(lines))
        assert restored.resolution_factor == 1
        assert restored.telemetry is None


class TestChecksums:
    def test_manifest_line_carries_sha256(self):
        head = json.loads(results_io.dumps(_small_result()).splitlines()[0])
        assert head["format_version"] == 2
        assert len(head["sha256"]) == 64

    def test_bit_flip_in_record_detected(self):
        text = results_io.dumps(_small_result())
        flipped = text.replace('"response": "A"', '"response": "B"')
        assert flipped != text  # the flip landed
        with pytest.raises(ValueError, match="checksum mismatch"):
            results_io.loads(flipped)

    def test_v1_file_without_checksum_still_loads(self):
        """Backward compatibility: pre-checksum artifacts load cleanly."""
        lines = results_io.dumps(_small_result()).splitlines()
        head = json.loads(lines[0])
        head["format_version"] = 1
        del head["sha256"]
        lines[0] = json.dumps(head, sort_keys=True)
        restored = results_io.loads("\n".join(lines))
        assert len(restored) == 2
        assert restored.pass_at_1() == _small_result().pass_at_1()

    def test_v2_file_missing_checksum_rejected(self):
        lines = results_io.dumps(_small_result()).splitlines()
        head = json.loads(lines[0])
        del head["sha256"]
        lines[0] = json.dumps(head, sort_keys=True)
        with pytest.raises(ValueError, match="missing its sha256"):
            results_io.loads("\n".join(lines))

    def test_checksum_identical_for_same_records(self):
        """The checksum covers records only, so telemetry (which varies
        run to run) does not perturb it."""
        result = _small_result()
        bare = json.loads(results_io.dumps(result).splitlines()[0])
        result.telemetry = {"wall_time_s": 1.5}
        timed = json.loads(results_io.dumps(result).splitlines()[0])
        assert bare["sha256"] == timed["sha256"]


class TestAtomicSave:
    def test_save_leaves_no_temp_file(self, tmp_path):
        path = results_io.save(_small_result(), tmp_path / "r.jsonl")
        assert path.exists()
        assert not list(tmp_path.glob("*.tmp"))

    def test_save_overwrites_atomically(self, tmp_path):
        """Overwriting an existing artifact swaps whole files: the torn
        intermediate of a naive in-place write never exists."""
        path = tmp_path / "r.jsonl"
        results_io.save(_small_result(), path)
        bigger = _small_result()
        bigger.add(EvalRecord("q-3", Category.DIGITAL, "C", True,
                              "auto", 1.0))
        results_io.save(bigger, path)
        assert len(results_io.load(path)) == 3
        assert not list(tmp_path.glob("*.tmp"))

    def test_atomic_write_text_round_trips(self, tmp_path):
        target = tmp_path / "x.txt"
        results_io.atomic_write_text(target, "payload\n")
        assert target.read_text(encoding="utf-8") == "payload\n"


class TestRunTree:
    def test_save_load_run(self, tmp_path):
        results = run_table2([build_model("kosmos-2")])
        written = results_io.save_run(results, tmp_path)
        assert len(written) == 2
        restored = results_io.load_run(tmp_path)
        assert set(restored) == {"kosmos-2"}
        for setting, result in restored["kosmos-2"].items():
            assert result.pass_at_1() == \
                results["kosmos-2"][setting].pass_at_1()

    def test_empty_dir_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            results_io.load_run(tmp_path)

    def test_model_name_containing_double_underscore(self, tmp_path):
        """Regression: the stem is split on the *last* ``__``, so a
        model named ``llava__next`` round-trips instead of being
        mis-split into model ``llava`` / setting ``next__no_choice``."""
        result = _small_result()
        result.model_name = "llava__next"
        results_io.save_run({"llava__next": {"no_choice": result}},
                            tmp_path)
        restored = results_io.load_run(tmp_path)
        assert set(restored) == {"llava__next"}
        assert set(restored["llava__next"]) == {"no_choice"}


class TestVerify:
    def test_verify_file_ok(self, tmp_path):
        path = results_io.save(_small_result(), tmp_path / "r.jsonl")
        audit = results_io.verify_file(path)
        assert audit.status == "ok"
        assert audit.records == 2

    def test_verify_file_legacy_v1(self, tmp_path):
        lines = results_io.dumps(_small_result()).splitlines()
        head = json.loads(lines[0])
        head["format_version"] = 1
        del head["sha256"]
        lines[0] = json.dumps(head, sort_keys=True)
        path = tmp_path / "old.jsonl"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        audit = results_io.verify_file(path)
        assert audit.status == "legacy"

    def test_verify_file_corrupt_and_missing(self, tmp_path):
        path = results_io.save(_small_result(), tmp_path / "r.jsonl")
        text = path.read_text(encoding="utf-8")
        path.write_text(text.replace('"correct": true', '"correct": false'),
                        encoding="utf-8")
        assert results_io.verify_file(path).status == "corrupt"
        assert results_io.verify_file(tmp_path / "gone.jsonl").status == \
            "missing"

    def test_verify_run_flags_missing_manifest_entries(self, tmp_path):
        from repro.core.runner import ParallelRunner, WorkUnit
        from repro.core.question import Category
        from repro.models import WITH_CHOICE
        from repro.core.benchmark import build_chipvqa

        subset = build_chipvqa().by_category(Category.DIGITAL)
        unit = WorkUnit(model=build_model("kosmos-2"), dataset=subset,
                        setting=WITH_CHOICE)
        ParallelRunner(run_dir=tmp_path).run([unit])
        assert results_io.verify_run(tmp_path).ok
        (tmp_path / f"{unit.unit_id}.jsonl").unlink()
        audit = results_io.verify_run(tmp_path)
        assert not audit.ok
        assert audit.counts().get("missing") == 1

    def test_verify_run_rejects_non_directory(self, tmp_path):
        with pytest.raises(ValueError, match="not a run directory"):
            results_io.verify_run(tmp_path / "nope")
