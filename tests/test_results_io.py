"""Tests for evaluation-result persistence."""

import pytest

from repro.core import results_io
from repro.core.harness import EvaluationHarness, run_table2
from repro.core.metrics import EvalRecord, EvalResult
from repro.core.question import Category
from repro.models import WITH_CHOICE, build_model


def _small_result():
    result = EvalResult("test-model", "test-ds", "with_choice")
    result.add(EvalRecord("q-1", Category.DIGITAL, "A", True, "auto", 0.9))
    result.add(EvalRecord("q-2", Category.ANALOG, "", False, "manual", 0.5))
    return result


class TestRoundTrip:
    def test_dumps_loads(self):
        result = _small_result()
        restored = results_io.loads(results_io.dumps(result))
        assert restored.model_name == result.model_name
        assert restored.pass_at_1() == result.pass_at_1()
        assert restored.records[1].judge_method == "manual"
        assert restored.records[0].perception == pytest.approx(0.9)

    def test_save_load_file(self, tmp_path):
        path = results_io.save(_small_result(), tmp_path / "r.jsonl")
        restored = results_io.load(path)
        assert len(restored) == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            results_io.loads("")

    def test_version_checked(self):
        text = results_io.dumps(_small_result()).replace(
            '"format_version": 1', '"format_version": 99')
        with pytest.raises(ValueError, match="format"):
            results_io.loads(text)

    def test_truncation_detected(self):
        text = results_io.dumps(_small_result())
        truncated = "\n".join(text.splitlines()[:-1])
        with pytest.raises(ValueError, match="truncated"):
            results_io.loads(truncated)

    def test_full_evaluation_round_trip(self, tmp_path, chipvqa):
        harness = EvaluationHarness()
        result = harness.evaluate(build_model("paligemma"), chipvqa,
                                  WITH_CHOICE)
        restored = results_io.load(
            results_io.save(result, tmp_path / "pali.jsonl"))
        assert restored.pass_at_1() == result.pass_at_1()
        assert restored.pass_at_1_by_category() == \
            result.pass_at_1_by_category()


class TestRunTree:
    def test_save_load_run(self, tmp_path):
        results = run_table2([build_model("kosmos-2")])
        written = results_io.save_run(results, tmp_path)
        assert len(written) == 2
        restored = results_io.load_run(tmp_path)
        assert set(restored) == {"kosmos-2"}
        for setting, result in restored["kosmos-2"].items():
            assert result.pass_at_1() == \
                results["kosmos-2"][setting].pass_at_1()

    def test_empty_dir_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            results_io.load_run(tmp_path)
