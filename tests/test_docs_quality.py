"""Meta-tests: documentation coverage of the public API."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULE_NAMES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__,
                                            prefix="repro.")
)


@pytest.mark.parametrize("module_name", MODULE_NAMES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", MODULE_NAMES)
def test_public_callables_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isfunction(obj) or inspect.isclass(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-exported from elsewhere
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
    assert not undocumented, (
        f"{module_name}: missing docstrings on {undocumented}")


def test_package_exports_resolve():
    """Everything in __all__ must actually exist, for every subpackage."""
    for module_name in MODULE_NAMES:
        module = importlib.import_module(module_name)
        for exported in getattr(module, "__all__", ()):
            assert hasattr(module, exported), (module_name, exported)
