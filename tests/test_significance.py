"""Tests for paired significance testing between evaluation runs."""

import pytest
from hypothesis import given, strategies as st

from repro.core.metrics import EvalRecord, EvalResult
from repro.core.question import Category
from repro.core.significance import (
    _binom_two_sided_p,
    compare,
    mcnemar,
    paired_bootstrap_diff,
    rank_models,
)


def _result(name, flags):
    result = EvalResult(name, "d", "with_choice")
    for index, flag in enumerate(flags):
        result.add(EvalRecord(f"q-{index}", Category.DIGITAL, "r", flag))
    return result


class TestBinomP:
    def test_balanced_is_one(self):
        assert _binom_two_sided_p(5, 10) > 0.99

    def test_extreme_is_small(self):
        assert _binom_two_sided_p(0, 20) < 0.001

    def test_empty_is_one(self):
        assert _binom_two_sided_p(0, 0) == 1.0

    @given(st.integers(0, 30), st.integers(0, 30))
    def test_valid_probability(self, k, extra):
        n = k + extra
        p = _binom_two_sided_p(k, n)
        assert 0.0 <= p <= 1.0

    @given(st.integers(0, 15), st.integers(1, 15))
    def test_symmetry(self, k, extra):
        n = k + extra
        assert _binom_two_sided_p(k, n) == \
            pytest.approx(_binom_two_sided_p(n - k, n))


class TestMcnemar:
    def test_identical_runs(self):
        a = _result("a", [True, False, True])
        b = _result("b", [True, False, True])
        only_a, only_b, p = mcnemar(a, b)
        assert (only_a, only_b) == (0, 0)
        assert p == 1.0

    def test_dominant_model_significant(self):
        a = _result("a", [True] * 30)
        b = _result("b", [False] * 15 + [True] * 15)
        only_a, only_b, p = mcnemar(a, b)
        assert only_a == 15 and only_b == 0
        assert p < 0.001

    def test_mismatched_questions_rejected(self):
        a = _result("a", [True, False])
        b = _result("b", [True, False, True])
        with pytest.raises(ValueError):
            mcnemar(a, b)


class TestCompare:
    def test_full_comparison(self):
        a = _result("a", [True, True, True, False, True, False] * 10)
        b = _result("b", [True, False, False, False, True, False] * 10)
        comparison = compare(a, b)
        assert comparison.n == 60
        assert comparison.diff == pytest.approx(
            a.pass_at_1() - b.pass_at_1())
        assert comparison.ci_low <= comparison.diff <= comparison.ci_high
        assert "vs" in comparison.summary()

    def test_bootstrap_ci_brackets_zero_for_identical(self):
        a = _result("a", [True, False] * 20)
        b = _result("b", [False, True] * 20)
        low, high = paired_bootstrap_diff(a, b)
        assert low <= 0.0 <= high

    def test_rank_models(self):
        results = {
            "weak": _result("weak", [False, False, True, False]),
            "strong": _result("strong", [True, True, True, False]),
        }
        ranking = rank_models(results)
        assert ranking[0][0] == "strong"
        assert ranking[0][1] > ranking[1][1]

    def test_zoo_comparison_significant(self, chipvqa):
        from repro.core.harness import EvaluationHarness
        from repro.models import build_model

        harness = EvaluationHarness()
        gpt = harness.zero_shot_standard(build_model("gpt-4o"))
        weak = harness.zero_shot_standard(build_model("kosmos-2"))
        comparison = compare(gpt, weak)
        assert comparison.significant
        assert comparison.diff > 0.3
