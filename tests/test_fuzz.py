"""Fuzz-style robustness tests: hostile inputs must fail cleanly.

Parsers and loaders must raise their documented exception types — never
crash with unrelated errors or accept garbage silently.
"""

import json

import pytest
from hypothesis import given, strategies as st

from repro.core.dataset import Dataset
from repro.core.question import Question
from repro.digital.expr import ExprError, parse
from repro.digital.verilog import VerilogError, parse_verilog
from repro.judge.normalize import (
    extract_option_letter,
    normalize_text,
    parse_number_with_unit,
    strip_leadin,
)


@given(st.text(max_size=80))
def test_expr_parser_total(text):
    """parse either returns an AST or raises ExprError — nothing else."""
    try:
        parse(text)
    except ExprError:
        pass


@given(st.text(max_size=200))
def test_verilog_parser_total(text):
    try:
        parse_verilog(text)
    except VerilogError:
        pass


@given(st.text(max_size=120))
def test_normalizers_never_raise(text):
    normalize_text(text)
    strip_leadin(text)
    extract_option_letter(text)
    parse_number_with_unit(text)


@given(st.text(max_size=120))
def test_question_from_json_raises_cleanly(text):
    """Arbitrary text is rejected with a JSON or schema error."""
    try:
        Question.from_json(text)
    except (json.JSONDecodeError, KeyError, ValueError, TypeError):
        pass


def test_corrupted_question_fields_rejected(chipvqa):
    record = chipvqa[0].to_dict()
    for corruption in (
        {"category": "Quantum Design"},
        {"question_type": "essay"},
        {"correct_choice": 9},
        {"difficulty": 7.0},
        {"choices": ["a", "a", "b", "c"]},
    ):
        broken = {**record, **corruption}
        with pytest.raises((ValueError, KeyError)):
            Question.from_dict(broken)


def test_dataset_jsonl_skips_nothing_silently(chipvqa):
    text = chipvqa.to_jsonl()
    lines = text.splitlines()
    lines[3] = lines[3][: len(lines[3]) // 2]  # truncate one record
    with pytest.raises((json.JSONDecodeError, ValueError, KeyError)):
        Dataset.from_jsonl("\n".join(lines))


@given(st.binary(max_size=200))
def test_pgm_loader_rejects_garbage(tmp_path_factory, data):
    from repro.visual.export import load_pgm

    path = tmp_path_factory.mktemp("fuzz") / "x.pgm"
    path.write_bytes(data)
    try:
        load_pgm(path)
    except (ValueError, IndexError):
        pass
