"""Tests for metrics aggregation and table rendering."""

import pytest

from repro.core.metrics import (
    EvalRecord,
    EvalResult,
    agreement,
    bootstrap_ci,
    mc_sa_gap,
    spearman_rank_correlation,
)
from repro.core.question import Category
from repro.core.report import (
    CATEGORY_ORDER,
    render_composition,
    render_table1,
)


def _result(flags_by_category):
    result = EvalResult("m", "d", "with_choice")
    index = 0
    for category, flags in flags_by_category.items():
        for flag in flags:
            result.add(EvalRecord(f"q-{index}", category, "resp", flag))
            index += 1
    return result


class TestEvalResult:
    def test_pass_at_1(self):
        result = _result({Category.DIGITAL: [True, False, True, False]})
        assert result.pass_at_1() == 0.5
        assert result.correct_count() == 2

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            EvalResult("m", "d", "s").pass_at_1()

    def test_by_category(self):
        result = _result({
            Category.DIGITAL: [True, True],
            Category.ANALOG: [False, False],
        })
        rates = result.pass_at_1_by_category()
        assert rates[Category.DIGITAL] == 1.0
        assert rates[Category.ANALOG] == 0.0

    def test_row_appends_overall(self):
        result = _result({Category.DIGITAL: [True, False]})
        row = result.row(CATEGORY_ORDER)
        assert len(row) == 6
        assert row[-1] == 0.5

    def test_category_counts(self):
        result = _result({Category.PHYSICAL: [True, True, False]})
        assert result.category_counts()[Category.PHYSICAL] == (2, 3)

    def test_manual_check_count(self):
        result = EvalResult("m", "d", "s")
        result.add(EvalRecord("q", Category.DIGITAL, "r", True,
                              judge_method="manual"))
        assert result.manual_check_count() == 1


class TestStatistics:
    def test_bootstrap_ci_contains_point(self):
        flags = [True] * 70 + [False] * 30
        low, high = bootstrap_ci(flags)
        assert low <= 0.7 <= high
        assert high - low < 0.25

    def test_bootstrap_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])

    def test_mc_sa_gap(self):
        with_choice = _result({Category.DIGITAL: [True, True]})
        no_choice = _result({Category.DIGITAL: [True, False]})
        assert mc_sa_gap(with_choice, no_choice) == 0.5

    def test_agreement(self):
        assert agreement([True, False], [True, True]) == 0.5

    def test_spearman_perfect(self):
        assert spearman_rank_correlation([1, 2, 3], [10, 20, 30]) == \
            pytest.approx(1.0)
        assert spearman_rank_correlation([1, 2, 3], [3, 2, 1]) == \
            pytest.approx(-1.0)

    def test_spearman_ties(self):
        value = spearman_rank_correlation([1, 1, 2], [1, 2, 3])
        assert -1.0 <= value <= 1.0

    def test_spearman_constant_raises(self):
        with pytest.raises(ValueError):
            spearman_rank_correlation([1, 1], [2, 3])


class TestReports:
    def test_table1_renders(self, chipvqa):
        text = render_table1(chipvqa)
        assert "142" in text
        assert "schematic" in text
        assert "Digital Design" in text

    def test_composition_renders_all_disciplines(self, chipvqa):
        text = render_composition(chipvqa)
        for category in CATEGORY_ORDER:
            assert category.value in text
