"""Tests for data representation and computer-arithmetic helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.digital import arithmetic as ar


class TestTwosComplement:
    def test_positive(self):
        assert ar.to_twos_complement(5, 8) == "00000101"

    def test_negative(self):
        assert ar.to_twos_complement(-1, 4) == "1111"
        assert ar.to_twos_complement(-8, 4) == "1000"

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            ar.to_twos_complement(8, 4)

    def test_range(self):
        assert ar.twos_complement_range(8) == (-128, 127)

    @given(st.integers(2, 12), st.data())
    def test_round_trip(self, width, data):
        low, high = ar.twos_complement_range(width)
        value = data.draw(st.integers(low, high))
        assert ar.from_twos_complement(
            ar.to_twos_complement(value, width)) == value

    def test_from_invalid_raises(self):
        with pytest.raises(ValueError):
            ar.from_twos_complement("10a1")


class TestOverflow:
    def test_positive_overflow(self):
        result, overflow = ar.add_with_overflow(90, 70, 8)
        assert overflow and result == -96

    def test_negative_overflow(self):
        result, overflow = ar.add_with_overflow(-100, -100, 8)
        assert overflow and result == 56

    def test_no_overflow(self):
        result, overflow = ar.add_with_overflow(50, 20, 8)
        assert not overflow and result == 70

    @given(st.integers(-128, 127), st.integers(-128, 127))
    def test_wrap_consistent_with_mod(self, a, b):
        result, _ = ar.add_with_overflow(a, b, 8)
        assert (result - (a + b)) % 256 == 0
        assert -128 <= result <= 127


class TestSignExtension:
    def test_negative_extends_ones(self):
        assert ar.sign_extend("1010", 8) == "11111010"

    def test_positive_extends_zeros(self):
        assert ar.sign_extend("0110", 8) == "00000110"

    def test_preserves_value(self):
        assert ar.from_twos_complement(ar.sign_extend("1010", 8)) == \
            ar.from_twos_complement("1010")

    def test_narrower_target_raises(self):
        with pytest.raises(ValueError):
            ar.sign_extend("10101010", 4)


class TestFixedAndFloat:
    def test_fixed_point(self):
        assert ar.fixed_point_value("0110", 2) == 1.5
        assert ar.fixed_point_value("1100", 2, signed=True) == -1.0

    def test_float_fields_one(self):
        assert ar.float_fields(1.0) == (0, 127, 0)

    def test_float_fields_minus_six_point_five(self):
        sign, exponent, mantissa = ar.float_fields(-6.5)
        assert sign == 1 and exponent == 129
        # 6.5 = 1.625 * 2^2; fraction 0.625 -> mantissa 0.625 * 2^23
        assert mantissa == int(0.625 * (1 << 23))

    def test_float_zero(self):
        assert ar.float_fields(0.0) == (0, 0, 0)

    def test_float_specials_raise(self):
        with pytest.raises(ValueError):
            ar.float_fields(float("inf"))


class TestCodes:
    def test_parity(self):
        assert ar.parity_bit("1011") == 1
        assert ar.parity_bit("1011", even=False) == 0

    def test_gray_round_trip(self):
        for value in range(64):
            assert ar.gray_decode(ar.gray_encode(value)) == value

    def test_gray_adjacent_differ_by_one_bit(self):
        for value in range(63):
            diff = ar.gray_encode(value) ^ ar.gray_encode(value + 1)
            assert bin(diff).count("1") == 1

    def test_hamming_encode_length(self):
        assert len(ar.hamming_encode("1011")) == 7

    def test_hamming_clean_syndrome_zero(self):
        code = ar.hamming_encode("1011")
        assert ar.hamming_syndrome(code) == 0

    @given(st.text(alphabet="01", min_size=4, max_size=4),
           st.integers(0, 6))
    def test_hamming_corrects_any_single_flip(self, data, position):
        code = ar.hamming_encode(data)
        corrupted = list(code)
        corrupted[position] = "1" if corrupted[position] == "0" else "0"
        fixed, found = ar.hamming_correct("".join(corrupted))
        assert fixed == code
        assert found == position + 1


class TestMemory:
    def test_address_bits(self):
        assert ar.memory_address_bits(65536) == 16
        assert ar.memory_address_bits(1) == 0
        assert ar.memory_address_bits(3) == 2

    def test_chip_count(self):
        assert ar.memory_chip_count(64 * 1024, 16, 16 * 1024, 8) == 8

    def test_chip_count_exact_fit(self):
        assert ar.memory_chip_count(1024, 8, 1024, 8) == 1

    def test_chip_count_validates(self):
        with pytest.raises(ValueError):
            ar.memory_chip_count(0, 8, 1024, 8)
