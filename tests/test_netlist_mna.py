"""Tests for the MNA circuit solver."""

import pytest
from hypothesis import given, strategies as st

from repro.analog.netlist import (
    Circuit,
    equivalent_resistance,
    parallel,
    series,
    voltage_divider,
)


class TestBasics:
    def test_series_parallel_formulas(self):
        assert series(100, 200, 300) == 600
        assert parallel(100, 100) == pytest.approx(50)
        assert parallel(1000) == 1000

    def test_parallel_validation(self):
        with pytest.raises(ValueError):
            parallel(-1.0)
        with pytest.raises(ValueError):
            parallel()

    def test_divider(self):
        assert voltage_divider(10, 1000, 1000) == pytest.approx(5.0)

    def test_nonpositive_resistor_rejected(self):
        with pytest.raises(ValueError):
            Circuit().resistor("r", 1, 0, 0.0)

    def test_duplicate_element_names_rejected(self):
        circuit = Circuit().resistor("r", 1, 0, 10.0)
        with pytest.raises(ValueError, match="duplicate"):
            circuit.resistor("r", 1, 0, 20.0)

    def test_empty_circuit_raises(self):
        with pytest.raises(ValueError):
            Circuit().solve()


class TestDcSolutions:
    def test_simple_divider(self):
        circuit = Circuit()
        circuit.vsource("vs", "in", 0, 10.0)
        circuit.resistor("r1", "in", "out", 1000.0)
        circuit.resistor("r2", "out", 0, 1000.0)
        solution = circuit.solve()
        assert solution.voltage("out") == pytest.approx(5.0)
        assert solution.voltage(0) == 0.0

    def test_source_current_direction(self):
        circuit = Circuit()
        circuit.vsource("vs", "p", 0, 10.0)
        circuit.resistor("r", "p", 0, 10.0)
        # 1 A flows out of the + terminal through the resistor, so the
        # current *into* the + terminal from the source is -1 A by the
        # MNA sign convention.
        assert circuit.solve().source_current("vs") == pytest.approx(-1.0)

    def test_current_source(self):
        circuit = Circuit()
        circuit.isource("i1", "n", 0, 2.0)
        circuit.resistor("r", "n", 0, 5.0)
        # 2 A pulled out of node n through the source: v = -10
        solution = circuit.solve()
        assert abs(solution.voltage("n")) == pytest.approx(10.0)

    def test_resistor_current_and_power(self):
        circuit = Circuit()
        circuit.vsource("vs", "a", 0, 10.0)
        circuit.resistor("r1", "a", "b", 100.0)
        circuit.resistor("r2", "b", 0, 400.0)
        solution = circuit.solve()
        assert solution.resistor_current("r1") == pytest.approx(0.02)
        assert solution.power_dissipated("r2") == pytest.approx(0.16)

    def test_unknown_resistor_raises(self):
        circuit = Circuit()
        circuit.vsource("vs", "a", 0, 1.0)
        circuit.resistor("r1", "a", 0, 1.0)
        with pytest.raises(KeyError):
            circuit.solve().resistor_current("nope")

    def test_floating_node_is_singular(self):
        circuit = Circuit()
        circuit.vsource("vs", "a", 0, 1.0)
        circuit.resistor("r1", "a", 0, 1.0)
        circuit.resistor("r2", "x", "y", 1.0)  # floating island
        with pytest.raises(ValueError, match="singular"):
            circuit.solve()

    def test_paper_ladder_example(self):
        """The Fig. 3 ladder: V(RL) ~ 0.97 V for the stated values."""
        circuit = Circuit()
        circuit.vsource("vs", "nin", 0, 5.0)
        circuit.resistor("r1", "nin", "n1", 1000.0)
        circuit.resistor("r2", "n1", 0, 2200.0)
        circuit.resistor("r3", "n1", "n2", 2200.0)
        circuit.resistor("r4", "n2", 0, 1500.0)
        circuit.resistor("rl", "n2", 0, 4700.0)
        v_out = circuit.solve().voltage("n2")
        # hand analysis: R4||RL = 1137.1; (R3 + that) || R2 = 1323.2 ...
        r4_rl = parallel(1500.0, 4700.0)
        branch = 2200.0 + r4_rl
        n1 = 5.0 * parallel(2200.0, branch) / (1000.0 + parallel(2200.0, branch))
        expected = n1 * r4_rl / branch
        assert v_out == pytest.approx(expected, rel=1e-9)


class TestVccs:
    def test_common_source_gain(self):
        circuit = Circuit()
        circuit.vsource("vin", "g", 0, 1.0)
        circuit.vccs("m", "d", 0, "g", 0, 2e-3)
        circuit.resistor("rd", "d", 0, 10e3)
        assert circuit.solve().voltage("d") == pytest.approx(-20.0)

    def test_vccs_with_output_loading(self):
        circuit = Circuit()
        circuit.vsource("vin", "g", 0, 1.0)
        circuit.vccs("m", "d", 0, "g", 0, 1e-3)
        circuit.resistor("rd", "d", 0, 10e3)
        circuit.resistor("ro", "d", 0, 10e3)
        assert circuit.solve().voltage("d") == pytest.approx(-5.0)


class TestEquivalentResistance:
    def test_series_pair(self):
        circuit = Circuit()
        circuit.resistor("r1", "a", "m", 100.0)
        circuit.resistor("r2", "m", "b", 200.0)
        assert equivalent_resistance(circuit, "a", "b") == pytest.approx(300.0)

    def test_parallel_pair(self):
        circuit = Circuit()
        circuit.resistor("r1", "a", "b", 100.0)
        circuit.resistor("r2", "a", "b", 100.0)
        assert equivalent_resistance(circuit, "a", "b") == pytest.approx(50.0)

    def test_bridge(self):
        # balanced Wheatstone bridge: detector arm carries no current, so
        # Req = (R+R) || (R+R) = R
        circuit = Circuit()
        for name, (a, b) in {
            "r1": ("a", "m"), "r2": ("m", "b"),
            "r3": ("a", "n"), "r4": ("n", "b"),
            "rg": ("m", "n"),
        }.items():
            circuit.resistor(name, a, b, 100.0)
        assert equivalent_resistance(circuit, "a", "b") == pytest.approx(100.0)

    @given(st.floats(10.0, 1e5), st.floats(10.0, 1e5))
    def test_matches_parallel_formula(self, r1, r2):
        circuit = Circuit()
        circuit.resistor("r1", "a", "b", r1)
        circuit.resistor("r2", "a", "b", r2)
        assert equivalent_resistance(circuit, "a", "b") == \
            pytest.approx(parallel(r1, r2), rel=1e-9)
