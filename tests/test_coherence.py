"""Tests for the MESI coherence protocol model."""

import pytest
from hypothesis import given, strategies as st

from repro.arch.coherence import Access, MesiSystem, State, invalidations_for


class TestBasicTransitions:
    def test_cold_read_is_exclusive(self):
        system = MesiSystem(2)
        assert system.access(Access.read(0)) is State.EXCLUSIVE

    def test_second_reader_shares(self):
        system = MesiSystem(2)
        system.access(Access.read(0))
        assert system.access(Access.read(1)) is State.SHARED
        assert system.state_of(0) is State.SHARED

    def test_write_from_invalid_is_modified(self):
        system = MesiSystem(2)
        assert system.access(Access.write_(0)) is State.MODIFIED

    def test_silent_e_to_m_upgrade(self):
        system = MesiSystem(2)
        system.access(Access.read(0))          # E
        before = system.bus_transactions
        system.access(Access.write_(0))        # E -> M silently
        assert system.state_of(0) is State.MODIFIED
        assert system.bus_transactions == before

    def test_shared_write_sends_upgrade(self):
        system = MesiSystem(2)
        system.run([Access.read(0), Access.read(1)])
        system.access(Access.write_(0))
        assert system.events[-1].kind == "BusUpgr"
        assert system.state_of(1) is State.INVALID

    def test_read_of_modified_line_flushes(self):
        system = MesiSystem(2)
        system.access(Access.write_(0))        # M in cache 0
        system.access(Access.read(1))
        assert system.writebacks == 1
        assert system.state_of(0) is State.SHARED
        assert system.state_of(1) is State.SHARED

    def test_write_invalidates_all_others(self):
        system = MesiSystem(4)
        system.run([Access.read(i) for i in range(4)])
        system.access(Access.write_(2))
        for cpu in (0, 1, 3):
            assert system.state_of(cpu) is State.INVALID

    def test_needs_at_least_one_cpu(self):
        with pytest.raises(ValueError):
            MesiSystem(0)


class TestSequences:
    def test_paper_style_trace(self):
        system = MesiSystem(2)
        states = system.run([Access.read(0), Access.write_(1),
                             Access.read(0)])
        assert states == [State.EXCLUSIVE, State.MODIFIED, State.SHARED]
        assert system.state_of(1) is State.SHARED

    def test_bus_transaction_count(self):
        system = MesiSystem(2)
        system.run([Access.read(0), Access.read(1), Access.write_(0),
                    Access.write_(1), Access.read(0)])
        # BusRd, BusRd, BusUpgr, BusRdX, BusRd
        assert system.bus_transactions == 5

    def test_invalidations_helper(self):
        count = invalidations_for(
            [Access.read(0), Access.read(1), Access.write_(0)], 2)
        assert count == 1

    def test_state_trace_shape(self):
        system = MesiSystem(3)
        trace = system.state_trace([Access.read(0), Access.write_(1)])
        assert len(trace) == 2
        assert all(len(states) == 3 for states in trace)


@given(st.lists(st.tuples(st.integers(0, 2), st.booleans()), min_size=1,
                max_size=60))
def test_single_writer_multiple_reader_invariant(ops):
    """At most one M/E copy exists, never alongside S copies."""
    system = MesiSystem(3)
    for cpu, write in ops:
        system.access(Access(cpu, write))
        states = system.states
        exclusive_like = [s for s in states
                          if s in (State.MODIFIED, State.EXCLUSIVE)]
        shared = [s for s in states if s is State.SHARED]
        assert len(exclusive_like) <= 1
        if exclusive_like:
            assert not shared


@given(st.lists(st.tuples(st.integers(0, 1), st.booleans()), min_size=1,
                max_size=60))
def test_writer_always_ends_modified(ops):
    system = MesiSystem(2)
    for cpu, write in ops:
        state = system.access(Access(cpu, write))
        if write:
            assert state is State.MODIFIED
        else:
            assert state is not State.INVALID
