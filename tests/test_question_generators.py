"""Cross-cutting checks on all five question generators."""

import pytest

from repro.core.prompts import build_prompt, question_user_prompt
from repro.core.question import Category, QuestionType
from repro.judge import answers_equivalent
from repro.visual import render


class TestGeneratorContracts:
    def test_every_question_renders(self, chipvqa):
        for question in chipvqa:
            for visual in question.all_visuals:
                image = render(visual)
                assert image.shape == (visual.height, visual.width)
                assert (image < 255).any(), question.qid

    def test_gold_answers_accepted_verbatim(self, chipvqa):
        """The gold surface form must satisfy the judge for every question."""
        for question in chipvqa:
            assert answers_equivalent(question, question.gold_text), \
                question.qid

    def test_gold_letter_accepted_for_mc(self, chipvqa):
        for question in chipvqa:
            if question.is_multiple_choice:
                assert answers_equivalent(question, question.gold_letter), \
                    question.qid

    def test_distractors_rejected(self, chipvqa):
        for question in chipvqa:
            if not question.is_multiple_choice:
                continue
            for index in range(4):
                if index == question.correct_choice:
                    continue
                letter = "ABCD"[index]
                assert not answers_equivalent(question, letter), \
                    (question.qid, letter)

    def test_aliases_accepted(self, chipvqa):
        for question in chipvqa:
            for alias in question.answer.aliases:
                assert answers_equivalent(question, alias), \
                    (question.qid, alias)

    def test_prompts_mention_their_figures(self, chipvqa):
        """Most prompts should reference the visual ('shown', 'figure'...)."""
        referencing = sum(
            1 for q in chipvqa
            if any(word in q.prompt.lower()
                   for word in ("shown", "figure", "diagram", "table",
                                "shows", "plot", "sketch", "drawn",
                                "tabulated", "annotated", "map",
                                "illustrat", "this")))
        assert referencing >= len(chipvqa) * 0.9

    def test_prompt_bundles_build(self, chipvqa):
        for question in list(chipvqa)[:20]:
            bundle = build_prompt(question, supports_system_prompt=True)
            assert bundle.system
            assert question.prompt in bundle.user
            merged = build_prompt(question, supports_system_prompt=False)
            assert merged.system is None
            assert merged.user.startswith("You are an expert")

    def test_mc_prompt_lists_choices(self, chipvqa):
        question = next(q for q in chipvqa if q.is_multiple_choice)
        text = question_user_prompt(question)
        for letter in "ABCD":
            assert f"{letter})" in text

    def test_sa_prompt_has_no_choices(self, chipvqa):
        question = next(q for q in chipvqa
                        if q.question_type is QuestionType.SHORT_ANSWER)
        text = question_user_prompt(question)
        assert "Answer with the value" in text


class TestPerCategoryInvariants:
    @pytest.mark.parametrize("category,prefix", [
        (Category.DIGITAL, "dig"),
        (Category.ANALOG, "ana"),
        (Category.ARCHITECTURE, "arc"),
        (Category.MANUFACTURING, "mfg"),
        (Category.PHYSICAL, "phy"),
    ])
    def test_qid_prefixes(self, chipvqa, category, prefix):
        for question in chipvqa.by_category(category):
            assert question.qid.startswith(prefix)

    def test_qids_sequential(self, chipvqa):
        for category in Category:
            subset = chipvqa.by_category(category)
            numbers = sorted(int(q.qid.split("-")[1]) for q in subset)
            assert numbers == list(range(1, len(subset) + 1))

    def test_boolean_answers_parse(self, chipvqa):
        from repro.core.question import AnswerKind
        from repro.digital.expr import parse

        for question in chipvqa:
            if question.answer.kind is AnswerKind.BOOLEAN_EXPR:
                parse(question.gold_text)  # must not raise


class TestExplanations:
    def test_every_question_has_a_worked_solution(self, chipvqa):
        for question in chipvqa:
            assert question.explanation, question.qid
            assert len(question.explanation) > 30, question.qid

    def test_most_explanations_cite_the_gold(self, chipvqa):
        citing = sum(1 for q in chipvqa if q.gold_text in q.explanation)
        assert citing >= 0.75 * len(chipvqa)

    def test_no_unresolved_placeholders(self, chipvqa):
        for question in chipvqa:
            assert "{gold}" not in question.explanation, question.qid

    def test_explanation_survives_serialization(self, chipvqa):
        from repro.core.question import Question

        question = chipvqa[0]
        restored = Question.from_json(question.to_json())
        assert restored.explanation == question.explanation

    def test_explanation_survives_challenge_transform(self, chipvqa,
                                                      chipvqa_challenge):
        for original, recast in zip(chipvqa, chipvqa_challenge):
            assert recast.explanation == original.explanation


class TestPromptHelpers:
    def test_judge_prompt_contains_both_sides(self):
        from repro.core.prompts import judge_prompt

        text = judge_prompt("42 ns", "about 42 nanoseconds")
        assert "42 ns" in text and "about 42 nanoseconds" in text
        assert "YES or NO" in text

    def test_combined_bundle_merges_system(self, chipvqa):
        from repro.core.prompts import build_prompt

        question = chipvqa[0]
        bundle = build_prompt(question, supports_system_prompt=True)
        assert bundle.system in bundle.combined
        assert bundle.user in bundle.combined
        no_system = build_prompt(question, supports_system_prompt=False)
        assert no_system.combined == no_system.user

    def test_image_count_matches_visuals(self, chipvqa):
        from repro.core.prompts import build_prompt

        for question in chipvqa:
            bundle = build_prompt(question)
            assert bundle.image_count == len(question.all_visuals)
