"""Tests for the pipelined sweep path: bounded-lookahead prefetch,
serialize-once byte plumbing, and the per-stage hot-path timers.

``tests/test_pipeline.py`` covers :mod:`repro.arch.pipeline` (the model
perception pipeline); this module covers :mod:`repro.core.pipeline`,
the sweep-side shard prefetcher, plus the byte paths it feeds.
"""

import threading
import time
import tracemalloc

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import databuild, perfstats
from repro.core.coordinator import (CommitLog, ResultStore,
                                    SweepCoordinator, audit_commit_log)
from repro.core.engine import payload_digest
from repro.core.pipeline import Prefetcher, ShardPrefetcher
from repro.core.runner import WorkUnit
from repro.core.sweep import run_scaled_table2


@pytest.fixture(autouse=True)
def _fresh_perfstats():
    """Stage timers are process-global; isolate them per test."""
    perfstats.reset()
    yield
    perfstats.reset()


@pytest.fixture(autouse=True)
def _pristine_provider_registry():
    """Undo sample-salted provider registrations after each test."""
    from repro.models.providers import default_registry

    before = dict(default_registry._factories)
    yield
    default_registry._factories.clear()
    default_registry._factories.update(before)


# -- Prefetcher: ordering and backpressure -----------------------------------


class TestPrefetcher:
    @settings(deadline=None, max_examples=20)
    @given(
        delays=st.lists(st.sampled_from([0.0, 0.001, 0.004]),
                        min_size=0, max_size=10),
        lookahead=st.integers(min_value=1, max_value=4),
        workers=st.integers(min_value=1, max_value=4),
    )
    def test_in_order_delivery_whatever_the_completion_order(
            self, delays, lookahead, workers):
        """Builders racing with random latencies never reorder what the
        consumer observes, and residency never exceeds the lookahead."""

        def build(index):
            time.sleep(delays[index])
            return index * index

        with Prefetcher(build, len(delays), lookahead=lookahead,
                        workers=workers) as pf:
            got = [pf.get(i) for i in range(len(delays))]
        assert got == [i * i for i in range(len(delays))]
        assert pf.max_resident <= lookahead

    def test_backpressure_parks_builders_on_a_slow_consumer(self):
        built = []

        def build(index):
            built.append(index)
            return index

        with Prefetcher(build, 10, lookahead=2, workers=4) as pf:
            for i in range(10):
                assert pf.get(i) == i
                time.sleep(0.002)  # evaluation is the slow stage
                # instant builders against a slow consumer: the budget,
                # not build speed, bounds how far they run ahead
                assert pf.max_resident <= 2
        assert sorted(built) == list(range(10))

    def test_build_error_is_reraised_from_get(self):
        def build(index):
            if index == 2:
                raise RuntimeError("shard 2 is cursed")
            return index

        with Prefetcher(build, 4, lookahead=2) as pf:
            assert pf.get(0) == 0
            assert pf.get(1) == 1
            with pytest.raises(RuntimeError, match="cursed"):
                pf.get(2)
            assert pf.get(3) == 3

    def test_get_before_start_raises(self):
        pf = Prefetcher(lambda i: i, 3, lookahead=1)
        with pytest.raises(RuntimeError, match="not started"):
            pf.get(0)

    def test_get_after_close_raises_for_unproduced_items(self):
        gate = threading.Event()
        pf = Prefetcher(lambda i: gate.wait(1) and i, 4,
                        lookahead=1).start()
        pf.close()
        gate.set()
        with pytest.raises(RuntimeError, match="closed"):
            pf.get(3)

    def test_close_is_idempotent_with_builds_in_flight(self):
        release = threading.Event()

        def build(index):
            release.wait(5)
            return index

        pf = Prefetcher(build, 6, lookahead=3, workers=2).start()
        release.set()
        pf.close()
        pf.close()  # second close is a no-op, not an over-release

    def test_validation(self):
        with pytest.raises(ValueError, match="lookahead"):
            Prefetcher(lambda i: i, 3, lookahead=0)
        with pytest.raises(ValueError, match="count"):
            Prefetcher(lambda i: i, -1, lookahead=1)
        with pytest.raises(ValueError, match="workers"):
            Prefetcher(lambda i: i, 3, lookahead=1, workers=0)

    def test_workers_clamped_to_lookahead(self):
        pf = Prefetcher(lambda i: i, 3, lookahead=2, workers=8)
        assert pf.workers == 2

    def test_zero_count_starts_and_closes_cleanly(self):
        with Prefetcher(lambda i: i, 0, lookahead=2) as pf:
            pass
        assert pf.max_resident == 0

    def test_blocked_get_time_lands_in_build_wait_stage(self):
        with Prefetcher(lambda i: time.sleep(0.01) or i, 2,
                        lookahead=1) as pf:
            pf.get(0)
            pf.get(1)
        stages = perfstats.stage_snapshot()
        assert stages["build_wait_calls"] == 2
        assert stages["build_wait_ns"] > 0


class TestShardPrefetcher:
    def test_delivers_the_same_shards_as_the_serial_loop(self):
        streams = {
            "with_choice": databuild.StreamingDataset(
                120, 0, shard_size=40),
            "no_choice": databuild.StreamingDataset(
                120, 0, shard_size=40, challenge=True),
        }
        with ShardPrefetcher(streams, lookahead=2) as pf:
            for index in range(streams["with_choice"].num_shards):
                shards = pf.get(index)
                for setting, stream in streams.items():
                    expected = stream.shard(index)
                    assert [q.qid for q in shards[setting]] \
                        == [q.qid for q in expected]
        assert all(not q.is_multiple_choice
                   for q in shards["no_choice"])

    def test_validation(self):
        with pytest.raises(ValueError, match="no streams"):
            ShardPrefetcher({}, lookahead=1)
        with pytest.raises(ValueError, match="disagree"):
            ShardPrefetcher({
                "a": databuild.StreamingDataset(120, 0, shard_size=40),
                "b": databuild.StreamingDataset(120, 0, shard_size=60),
            }, lookahead=1)
        with pytest.raises(ValueError, match="unknown prefetch builder"):
            ShardPrefetcher(
                {"a": databuild.StreamingDataset(120, 0, shard_size=40)},
                lookahead=1, builder="fork-bomb")

    def test_process_builder_delivers_the_same_shards(self):
        streams = {
            "with_choice": databuild.StreamingDataset(
                120, 0, shard_size=40),
            "no_choice": databuild.StreamingDataset(
                120, 0, shard_size=40, challenge=True),
        }
        baseline = {
            setting: [
                [q.qid for q in stream.shard(i)]
                for i in range(stream.num_shards)
            ]
            for setting, stream in streams.items()
        }
        fresh = {
            "with_choice": databuild.StreamingDataset(
                120, 0, shard_size=40),
            "no_choice": databuild.StreamingDataset(
                120, 0, shard_size=40, challenge=True),
        }
        with ShardPrefetcher(fresh, lookahead=2,
                             builder="process") as pf:
            assert not pf.yield_to_consumer  # offloaded CPU: no gating
            for index in range(fresh["with_choice"].num_shards):
                shards = pf.get(index)
                for setting in streams:
                    assert [q.qid for q in shards[setting]] \
                        == baseline[setting][index]

    def test_thread_builder_gates_on_one_core_only(self):
        from repro.core import pipeline

        stream = {"a": databuild.StreamingDataset(120, 0, shard_size=40)}
        pf = ShardPrefetcher(stream, lookahead=2, workers=2)
        expect = pipeline._cpu_cores() == 1
        assert pf.yield_to_consumer is expect
        if expect:
            assert pf.workers == 1  # clamped: one builder keeps phase
        pf = ShardPrefetcher(stream, lookahead=2, workers=2,
                             yield_to_consumer=False)
        assert not pf.yield_to_consumer
        assert pf.workers == 2


class TestIdleWindowGating:
    def test_gated_builder_completes_without_idle_windows(self):
        # a consumer that never waits off-CPU must not stall the pool:
        # the starved flag (consumer blocked in get) and the bounded
        # wait both break the park
        with Prefetcher(lambda i: i * i, 6, lookahead=2,
                        yield_to_consumer=True) as pf:
            assert [pf.get(i) for i in range(6)] == [
                i * i for i in range(6)]

    def test_gated_builder_starts_inside_an_idle_window(self):
        started = threading.Event()

        def build(index):
            started.set()
            return index

        pf = Prefetcher(build, 1, lookahead=1, yield_to_consumer=True)
        pf.YIELD_MAX_WAIT_S = 5.0  # force the gate to matter
        with pf:
            assert not started.wait(0.1)  # parked: no window yet
            with perfstats.idle_window():
                assert started.wait(1.0)  # window opens -> build runs
            pf.get(0)

    def test_idle_window_records_transport_wait_stage(self):
        assert not perfstats.idle_event().is_set()
        with perfstats.idle_window():
            assert perfstats.idle_event().is_set()
            time.sleep(0.005)
        assert not perfstats.idle_event().is_set()
        stages = perfstats.stage_snapshot()
        assert stages["transport_wait_calls"] == 1
        assert stages["transport_wait_ns"] >= 5_000_000


# -- serialize-once byte path ------------------------------------------------


class TestSerializeOnce:
    def test_append_commit_hashes_the_given_bytes_once(self, tmp_path):
        log = CommitLog(tmp_path / "commits.jsonl")
        payload = '{"answer": 42}\n'
        status, digest = log.append_commit("unit-a", payload, "n0")
        assert status == "committed"
        assert digest == payload_digest(payload)
        # the chain is built over exactly those bytes
        entries, _, head = audit_commit_log(tmp_path / "commits.jsonl")
        assert entries == 1
        assert log.committed("unit-a") == digest
        again, same = log.append_commit("unit-a", payload, "n1")
        assert (again, same) == ("duplicate", digest)

    def test_store_digest_fast_path_counts_reuse(self, tmp_path):
        store = ResultStore(tmp_path)
        unit = WorkUnit(model="gpt-4o",
                        dataset=databuild.shard_dataset(20, 0, 20, 0),
                        setting="with_choice")
        payload = '{"records": []}\n'
        digest = payload_digest(payload)
        store.put(unit, payload, digest=digest)
        assert store.counters()["store_digest_reuse"] == 1
        # second identical put: digest reused again, write deduped
        before = store.path_for(unit).stat().st_mtime_ns
        store.put(unit, payload, digest=digest)
        assert store.counters()["store_digest_reuse"] == 2
        assert store.path_for(unit).stat().st_mtime_ns == before
        # the slow path still works and hashes for itself
        store.put(unit, payload)
        assert store.counters()["store_digest_reuse"] == 2

    def test_coordinator_sweep_hits_the_digest_fast_path(
            self, tmp_path):
        runner = SweepCoordinator(nodes=2, run_dir=tmp_path / "run",
                                  store_dir=tmp_path / "store")
        run_scaled_table2(["gpt-4o"], total=40, seed=1, samples=1,
                          shard_size=20, include_challenge=False,
                          runner=runner)
        stats = runner.last_stats
        assert stats is not None
        # every committed unit carried its dedup-gate digest into the
        # store verbatim — the store never re-hashed a payload
        assert stats.coordinator["store_digest_reuse"] \
            == stats.completed
        assert stats.completed > 0
        ok = audit_commit_log(tmp_path / "run" / "commits.jsonl")
        assert ok[0] == stats.completed


# -- stage timers ------------------------------------------------------------


class TestStageTimings:
    def test_stages_flow_into_the_sweep_report(self, tmp_path):
        report = run_scaled_table2(["gpt-4o"], total=40, seed=1,
                                   samples=1, shard_size=20,
                                   include_challenge=False,
                                   run_dir=tmp_path / "run")
        stages = report.perf_caches[perfstats.STAGE_TIMINGS_NAME]
        for name in ("build_wait", "eval", "serialize", "commit"):
            assert stages[f"{name}_calls"] > 0, name
            assert stages[f"{name}_ns"] > 0, name

    def test_cache_stats_prints_the_stage_table(self, capsys):
        from repro.cli import _print_cache_stats

        counters = {
            "dataset_build": {"hits": 3, "misses": 1, "evictions": 0,
                              "size": 1},
            perfstats.STAGE_TIMINGS_NAME: {
                "build_wait_ns": 2_000_000, "build_wait_calls": 2,
                "eval_ns": 5_000_000, "eval_calls": 4,
            },
        }
        _print_cache_stats(counters)
        out = capsys.readouterr().out
        assert "dataset_build" in out
        assert "stage" in out
        assert "build_wait" in out
        assert "eval" in out

    def test_metrics_exposition_renders_stage_families(self):
        from repro.service.metrics import render_prometheus

        perf = {
            "dataset_build": {"hits": 1, "misses": 0, "evictions": 0,
                              "size": 1},
            perfstats.STAGE_TIMINGS_NAME: {
                "eval_ns": 1_500_000_000, "eval_calls": 3,
                "build_wait_ns": 0, "build_wait_calls": 2,
            },
        }
        text = render_prometheus(perf_caches=perf)
        assert 'repro_stage_seconds_total{stage="eval"} 1.5' in text
        assert 'repro_stage_calls_total{stage="eval"} 3' in text
        assert 'repro_stage_seconds_total{stage="build_wait"} 0' in text
        # the stage entry never leaks into the cache families
        assert 'cache="stage_timings"' not in text
        assert text == render_prometheus(perf_caches=perf)


# -- CLI flag ---------------------------------------------------------------


class TestPrefetchFlag:
    def test_rejects_non_positive(self):
        from repro.cli import _effective_prefetch

        with pytest.raises(SystemExit, match="--prefetch must be >= 1"):
            _effective_prefetch(0, workers=4)
        with pytest.raises(SystemExit, match="--prefetch must be >= 1"):
            _effective_prefetch(-2, workers=4)

    def test_none_means_serial(self):
        from repro.cli import _effective_prefetch

        assert _effective_prefetch(None, workers=4) == 0

    def test_clamps_against_workers_with_warning(self, capsys):
        from repro.cli import _effective_prefetch

        assert _effective_prefetch(2, workers=4) == 2
        assert capsys.readouterr().out == ""
        assert _effective_prefetch(64, workers=4) == 4
        assert "warning: --prefetch 64" in capsys.readouterr().out
        # floor of 2: even a single-worker run may overlap one build
        assert _effective_prefetch(3, workers=1) == 2

    def test_plain_table2_rejects_prefetch(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="--prefetch applies"):
            main(["table2", "--models", "gpt-4o",
                  "--prefetch", "2"])


# -- pipelined sweep: byte identity and memory ------------------------------


class TestPipelinedSweep:
    def test_prefetch_sweep_is_byte_identical_to_serial(
            self, tmp_path):
        from repro.core import results_io
        from tests.test_executor import run_dir_digest

        def sweep(run_dir, prefetch):
            report = run_scaled_table2(
                ["gpt-4o"], total=60, seed=3, samples=2,
                shard_size=20, run_dir=run_dir, prefetch=prefetch)
            return results_io.write_summary(
                run_dir / "sweep_summary.json",
                report.passk_summary(ks=(1, 2)))

        serial = sweep(tmp_path / "serial", prefetch=0)
        piped = sweep(tmp_path / "piped", prefetch=2)
        assert piped.read_bytes() == serial.read_bytes()
        assert run_dir_digest(tmp_path / "piped") \
            == run_dir_digest(tmp_path / "serial")

    def test_prefetch_residency_stays_o_lookahead_times_shard(self):
        shard_size, prefetch = 40, 2
        report = run_scaled_table2(["gpt-4o"], total=400, seed=1,
                                   samples=1, shard_size=shard_size,
                                   include_challenge=False,
                                   prefetch=prefetch)
        # resident questions: live window + lookahead builds + what the
        # shard cache retains — all O(shard), never O(total)
        bound = (databuild._SHARD_CACHE.capacity + prefetch + 2) \
            * shard_size
        assert 0 < report.peak_resident_questions <= bound
        assert report.peak_resident_questions < 400

    @pytest.mark.slow
    def test_tracemalloc_peak_is_o_lookahead_not_o_total(self):
        """10k-question streaming sweep with prefetch: peak allocation
        stays far below materialising the whole build at once."""
        from repro.core.benchmark import build_chipvqa_scaled

        total, shard_size = 9940, 142  # 70 shards

        tracemalloc.start()
        full = build_chipvqa_scaled(total, seed=1)
        _, full_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        del full
        databuild._SHARD_CACHE.reset()

        tracemalloc.start()
        report = run_scaled_table2(["gpt-4o"], total=total, seed=1,
                                   samples=1, shard_size=shard_size,
                                   include_challenge=False,
                                   prefetch=2)
        _, sweep_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        assert sum(len(s.records)
                   for s in report.results["gpt-4o"]
                   ["with_choice"].samples) == total
        # the sweep holds O(lookahead x shard) questions plus the
        # accumulated (much smaller) records — nowhere near the full
        # 10k-question materialisation
        assert sweep_peak < 0.5 * full_peak
        bound = (databuild._SHARD_CACHE.capacity + 4) * shard_size
        assert report.peak_resident_questions <= bound
