"""Tests for routing: Steiner/spanning trees and the Lee maze router."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.physical.geometry import Point, hpwl
from repro.physical.maze import RoutingGrid, bends, detour
from repro.physical.steiner import (
    chain_topology,
    compare_topologies,
    hanan_points,
    is_spanning_tree,
    rmst,
    rmst_cost,
    star_topology,
    steiner_cost,
    tree_cost,
)


class TestSpanningTrees:
    def test_two_points(self):
        points = [Point(0, 0), Point(3, 4)]
        edges = rmst(points)
        assert edges == [(0, 1)]
        assert tree_cost(points, edges) == 7

    def test_rmst_is_minimal_on_square(self):
        points = [Point(0, 0), Point(1, 0), Point(0, 1), Point(1, 1)]
        assert rmst_cost(points) == 3

    def test_is_spanning_tree(self):
        assert is_spanning_tree(3, [(0, 1), (1, 2)])
        assert not is_spanning_tree(3, [(0, 1)])
        assert not is_spanning_tree(3, [(0, 1), (0, 1)])

    def test_star_and_chain_builders(self):
        points = [Point(0, 0), Point(1, 0), Point(2, 0)]
        assert is_spanning_tree(3, star_topology(points))
        assert is_spanning_tree(3, chain_topology(points))

    def test_compare_topologies(self):
        points = [Point(1, 1), Point(5, 1), Point(5, 5), Point(9, 5)]
        cost_a, cost_b, winner = compare_topologies(
            points, star_topology(points, root=1), chain_topology(points))
        assert winner == "B"
        assert cost_b < cost_a

    def test_compare_rejects_non_trees(self):
        points = [Point(0, 0), Point(1, 0), Point(2, 0)]
        with pytest.raises(ValueError):
            compare_topologies(points, [(0, 1)], chain_topology(points))

    @settings(max_examples=40)
    @given(st.lists(st.tuples(st.integers(0, 12), st.integers(0, 12)),
                    min_size=2, max_size=8, unique=True))
    def test_rmst_beats_chain_and_respects_hpwl(self, coords):
        points = [Point(x, y) for x, y in coords]
        mst_cost = rmst_cost(points)
        assert mst_cost <= tree_cost(points, chain_topology(points)) + 1e-9
        assert mst_cost >= hpwl(points) - 1e-9


class TestSteiner:
    def test_steiner_improves_l_shape(self):
        # three corners of a rectangle: a Steiner point at the fourth
        # corner (or the T junction) cannot help; but four spread pins can
        points = [Point(0, 0), Point(4, 0), Point(2, 3)]
        assert steiner_cost(points) <= rmst_cost(points)

    def test_classic_cross_benefit(self):
        # 4 pins in a plus-sign arrangement: Steiner point at centre wins
        points = [Point(2, 0), Point(2, 4), Point(0, 2), Point(4, 2)]
        assert steiner_cost(points) == 8
        assert rmst_cost(points) > 8

    def test_hanan_points_exclude_terminals(self):
        points = [Point(0, 0), Point(2, 2)]
        hanan = hanan_points(points)
        assert Point(0, 2) in hanan and Point(2, 0) in hanan
        assert Point(0, 0) not in hanan

    @settings(max_examples=25)
    @given(st.lists(st.tuples(st.integers(0, 8), st.integers(0, 8)),
                    min_size=2, max_size=6, unique=True))
    def test_steiner_never_worse_than_rmst(self, coords):
        points = [Point(x, y) for x, y in coords]
        assert steiner_cost(points) <= rmst_cost(points) + 1e-9


class TestMazeRouter:
    def test_straight_route(self):
        grid = RoutingGrid(5, 5)
        path = grid.route((0, 0), (0, 4))
        assert len(path) == 5
        assert bends(path) == 0

    def test_blocked_route_detours(self):
        grid = RoutingGrid(7, 9, obstacles=[(3, c) for c in range(2, 7)])
        length = grid.route_length((1, 4), (5, 4))
        assert length == 10  # 4 direct + 6 detour around the blockage
        path = grid.route((1, 4), (5, 4))
        assert detour(len(path) - 1, (1, 4), (5, 4)) == 6

    def test_unreachable_returns_none(self):
        grid = RoutingGrid(3, 3, obstacles=[(0, 1), (1, 1), (2, 1)])
        assert grid.route((0, 0), (0, 2)) is None

    def test_source_on_obstacle_raises(self):
        grid = RoutingGrid(3, 3, obstacles=[(1, 1)])
        with pytest.raises(ValueError):
            grid.route((1, 1), (0, 0))

    def test_obstacle_out_of_bounds_rejected(self):
        with pytest.raises(ValueError):
            RoutingGrid(3, 3, obstacles=[(5, 5)])

    def test_path_cells_adjacent_and_clear(self):
        grid = RoutingGrid(6, 6, obstacles=[(2, 2), (2, 3), (3, 2)])
        path = grid.route((0, 0), (5, 5))
        for a, b in zip(path, path[1:]):
            assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1
            assert b not in grid.obstacles

    @settings(max_examples=30)
    @given(st.integers(0, 5), st.integers(0, 5), st.integers(0, 5),
           st.integers(0, 5))
    def test_unobstructed_length_is_manhattan(self, r0, c0, r1, c1):
        grid = RoutingGrid(6, 6)
        assert grid.route_length((r0, c0), (r1, c1)) == \
            abs(r0 - r1) + abs(c0 - c1)

    def test_bends_counts_direction_changes(self):
        assert bends([(0, 0), (0, 1), (1, 1), (1, 2)]) == 2
        assert bends([(0, 0), (0, 1)]) == 0
