"""Tests for the sharded, cached, streaming procedural dataset builds."""

import math
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import databuild, perfstats
from repro.core.benchmark import (
    BenchmarkIntegrityError,
    BuildExpectations,
    build_chipvqa,
    build_chipvqa_scaled,
    validate_chipvqa,
)
from repro.core.executor import dataset_from_spec
from repro.core.question import CATEGORY_COUNTS, TOTAL_QUESTIONS


@pytest.fixture(autouse=True)
def _pristine_provider_registry():
    """Undo sample-salted provider registrations after each test.

    ``ensure_sample_provider`` registers ``<model>+s<i>`` clones in the
    global default registry; other test modules assert its exact
    contents, so leave it as found.
    """
    from repro.models.providers import default_registry

    before = dict(default_registry._factories)
    yield
    default_registry._factories.clear()
    default_registry._factories.update(before)


# -- fixed point and variants -------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 97])
def test_scaled_142_is_a_fixed_point_of_the_seed_dataset(seed):
    scaled = build_chipvqa_scaled(TOTAL_QUESTIONS, seed)
    assert scaled.content_digest() == build_chipvqa().content_digest()


def test_cycle_zero_questions_are_canonical_verbatim():
    canonical = {q.qid: q for q in build_chipvqa()}
    for question in build_chipvqa_scaled(TOTAL_QUESTIONS, 3):
        assert question == canonical[question.qid]


def test_variants_preserve_gold_text_and_structure():
    canonical = {q.qid: q for q in build_chipvqa()}
    scaled = build_chipvqa_scaled(3 * TOTAL_QUESTIONS, 5)
    variants = [q for q in scaled if "~c" in q.qid]
    assert variants
    for variant in variants:
        base = canonical[variant.qid.split("~c")[0]]
        assert variant.category is base.category
        assert variant.question_type is base.question_type
        assert variant.gold_text == base.gold_text
        assert variant.visual == base.visual
        if base.is_multiple_choice:
            assert sorted(variant.choices) == sorted(base.choices)
        assert 0.05 <= variant.difficulty <= 0.95


def test_different_seeds_give_different_variants():
    a = build_chipvqa_scaled(2 * TOTAL_QUESTIONS, 1)
    b = build_chipvqa_scaled(2 * TOTAL_QUESTIONS, 2)
    assert a.content_digest() != b.content_digest()


def test_variant_derivation_is_deterministic():
    question = build_chipvqa()[0]
    assert (databuild.derive_variant(question, 4, 9)
            == databuild.derive_variant(question, 4, 9))
    assert (databuild.derive_variant(question, 4, 9).qid
            != databuild.derive_variant(question, 5, 9).qid)


# -- composition properties ---------------------------------------------------


@given(total=st.integers(min_value=1, max_value=600),
       seed=st.integers(min_value=0, max_value=10_000),
       shard_size=st.integers(min_value=1, max_value=200))
@settings(max_examples=25, deadline=None)
def test_scaled_builds_have_exact_expected_composition(total, seed,
                                                       shard_size):
    dataset = build_chipvqa_scaled(total, seed, shard_size=shard_size,
                                   validate=False)
    assert len(dataset) == total
    assert len({q.qid for q in dataset}) == total
    composition = databuild.expected_composition(total)
    assert dataset.category_counts() == composition.category_counts
    assert dataset.type_counts() == composition.type_counts
    assert dataset.mc_counts_by_category() == composition.category_mc_counts
    validate_chipvqa(dataset, BuildExpectations.scaled(total))


@given(total=st.integers(min_value=1, max_value=2000),
       seed=st.integers(min_value=0, max_value=10_000),
       shard_size=st.integers(min_value=20, max_value=300))
@settings(max_examples=20, deadline=None)
def test_every_shard_preserves_table1_proportions_within_rounding(
        total, seed, shard_size):
    for spec in databuild.plan_shards(total, seed, shard_size):
        counts = Counter(q.category
                         for q in databuild.build_shard(spec))
        for category, members in CATEGORY_COUNTS.items():
            expected = spec.size * members / TOTAL_QUESTIONS
            # The interleaved order places family members at
            # near-arithmetic positions, so any window is within
            # rounding (+/- 2 covers both window-edge effects).
            assert abs(counts.get(category, 0) - expected) <= 2, (
                spec, category)


def test_validation_catches_composition_drift():
    dataset = build_chipvqa_scaled(200, 0, validate=False)
    broken = dataset.filter(lambda q: True, name=dataset.name)
    broken._questions = broken._questions[:-1]
    with pytest.raises(BenchmarkIntegrityError):
        validate_chipvqa(broken, BuildExpectations.scaled(200))


def test_canonical_validation_messages_unchanged():
    dataset = build_chipvqa_scaled(141, 0, validate=False)
    with pytest.raises(BenchmarkIntegrityError,
                       match="expected 142 questions, got 141"):
        validate_chipvqa(dataset)


# -- shard order independence and the build cache -----------------------------


@given(seed=st.integers(min_value=0, max_value=10_000),
       order_seed=st.integers(min_value=0, max_value=1 << 30))
@settings(max_examples=10, deadline=None)
def test_shard_builds_are_order_independent(seed, order_seed):
    import random

    specs = databuild.plan_shards(500, seed, 90)
    shuffled = specs[:]
    random.Random(order_seed).shuffle(shuffled)
    by_index = {spec.index: databuild.build_shard(spec)
                for spec in shuffled}
    sequential = [q for i in sorted(by_index) for q in by_index[i]]
    direct = databuild.build_scaled(500, seed, shard_size=90,
                                    validate=False)
    assert [q.qid for q in sequential] == [q.qid for q in direct]


def test_warm_build_cache_serves_identical_shards(tmp_path):
    databuild.enable_build_cache(tmp_path)
    try:
        perfstats.reset()
        cold = databuild.build_scaled(426, 8, shard_size=142,
                                      validate=False)
        cold_stats = perfstats.snapshot()[databuild.BUILD_CACHE_NAME]
        assert cold_stats["misses"] == 3
        perfstats.reset()  # drop every memory tier; disk survives
        warm = databuild.build_scaled(426, 8, shard_size=142,
                                      validate=False)
        warm_stats = perfstats.snapshot()[databuild.BUILD_CACHE_NAME]
        assert warm_stats["spill_hits"] == 3
        assert warm_stats["misses"] == 0
    finally:
        databuild.disable_build_cache()
    assert warm.content_digest() == cold.content_digest()
    # render specs round-trip through the cache codec
    for a, b in zip(cold, warm):
        assert tuple(b.visual.render_spec) == tuple(a.visual.render_spec)


def test_cache_keys_are_content_addressed_across_build_sizes():
    # Same window, different total -> same key (disk reuse across n).
    a = databuild.ShardSpec(total=500, seed=1, shard_size=100, index=2)
    b = databuild.ShardSpec(total=900, seed=1, shard_size=100, index=2)
    assert a.cache_key() == b.cache_key()
    assert a.cache_key_digest() == b.cache_key_digest()
    # Different seed or window -> different key.
    c = databuild.ShardSpec(total=500, seed=2, shard_size=100, index=2)
    assert c.cache_key() != a.cache_key()


def test_prime_build_cache_builds_then_reuses(tmp_path):
    first = databuild.prime_build_cache(300, 4, cache_dir=tmp_path,
                                        shard_size=100)
    assert first == {"shards": 3, "built": 3, "reused": 0}
    second = databuild.prime_build_cache(300, 4, cache_dir=tmp_path,
                                         shard_size=100)
    assert second == {"shards": 3, "built": 0, "reused": 3}


def test_process_backend_build_matches_serial():
    serial = databuild.build_scaled(284, 6, shard_size=142,
                                    validate=False)
    process = databuild.build_scaled(284, 6, shard_size=142,
                                     backend="process", workers=1,
                                     validate=False)
    assert process.content_digest() == serial.content_digest()


def test_async_backend_rejected_for_builds():
    from repro.core.executor import ExecutorConfigError

    with pytest.raises(ExecutorConfigError):
        databuild.build_scaled(142, 0, backend="async", workers=2,
                               validate=False)


# -- family generator entry points --------------------------------------------


def test_family_scaled_generators_partition_each_shard():
    from repro.analog import generate_analog_questions_scaled
    from repro.arch import generate_architecture_questions_scaled
    from repro.digital import generate_digital_questions_scaled
    from repro.manufacturing import generate_manufacturing_questions_scaled
    from repro.physical import generate_physical_questions_scaled

    generators = (generate_digital_questions_scaled,
                  generate_analog_questions_scaled,
                  generate_architecture_questions_scaled,
                  generate_manufacturing_questions_scaled,
                  generate_physical_questions_scaled)
    spec = databuild.ShardSpec(total=400, seed=3, shard_size=150,
                               index=1)
    shard = databuild.build_shard(spec)
    union = [q for gen in generators
             for q in gen(3, 1, 150, total=400)]
    assert sorted(q.qid for q in union) == sorted(q.qid for q in shard)
    assert sum(len(gen(3, 1, 150, total=400)) for gen in generators) \
        == spec.size


def test_generator_fingerprint_covers_every_family():
    versions = databuild.generator_versions()
    assert set(versions) == {"analog", "architecture", "digital",
                             "manufacturing", "physical"}
    assert len(databuild.generator_fingerprint()) == 16


# -- dataset specs ------------------------------------------------------------


def test_scaled_roots_round_trip_through_dataset_from_spec():
    dataset = build_chipvqa_scaled(284, 5, shard_size=142,
                                   validate=False)
    rebuilt = dataset_from_spec(dataset.build_spec)
    assert rebuilt.content_digest() == dataset.content_digest()
    subset = dataset.by_category(next(iter(CATEGORY_COUNTS)))
    assert dataset_from_spec(subset.build_spec).content_digest() \
        == subset.content_digest()


def test_shard_and_challenge_roots_round_trip():
    shard = databuild.shard_dataset(284, 5, 142, 1)
    assert dataset_from_spec(shard.build_spec).content_digest() \
        == shard.content_digest()
    challenge = databuild.shard_dataset(284, 5, 142, 0, challenge=True)
    rebuilt = dataset_from_spec(challenge.build_spec)
    assert rebuilt.content_digest() == challenge.content_digest()
    assert all(not q.is_multiple_choice for q in rebuilt)


def test_malformed_scaled_roots_rejected():
    with pytest.raises(databuild.ScaleConfigError):
        databuild.parse_scaled_root("chipvqa-scaled:abc:0:10")
    with pytest.raises(databuild.ScaleConfigError):
        databuild.parse_scaled_root("chipvqa-scaled:10:0:5:bogus")
    with pytest.raises(databuild.ScaleConfigError):
        databuild.parse_scaled_root("chipvqa:10")


# -- streaming ----------------------------------------------------------------


def test_streaming_dataset_matches_materialized_build():
    stream = databuild.StreamingDataset(500, 2, shard_size=90)
    assert len(stream) == 500
    assert stream.num_shards == math.ceil(500 / 90)
    streamed = [q.qid for q in stream]
    direct = [q.qid for q in databuild.build_scaled(500, 2,
                                                    shard_size=90,
                                                    validate=False)]
    assert streamed == direct


def test_streaming_peak_residency_is_o_shard_not_o_n():
    shard_size = 60
    # The gauge reads the (global) shard cache's memory tier; start from
    # empty so leftover shards of other builds don't inflate it.
    databuild._SHARD_CACHE.clear()
    stream = databuild.StreamingDataset(1200, 1, shard_size=shard_size)
    for _ in stream.iter_shards():
        pass
    bound = (databuild._SHARD_CACHE.capacity + 1) * shard_size
    assert 0 < stream.peak_resident_questions <= bound
    assert stream.peak_resident_questions < len(stream)


def test_streaming_challenge_recasts_every_shard():
    stream = databuild.StreamingDataset(200, 0, shard_size=80,
                                        challenge=True)
    for shard in stream.iter_shards():
        assert all(not q.is_multiple_choice for q in shard)


# -- the sweep path -----------------------------------------------------------


def test_run_scaled_table2_shapes_and_determinism(tmp_path):
    from repro.core.sweep import run_scaled_table2

    report = run_scaled_table2(["llava-7b"], 284, seed=1, samples=2,
                               shard_size=142,
                               run_dir=tmp_path / "run")
    multi = report.results["llava-7b"]["with_choice"]
    assert multi.sample_count == 2
    assert all(len(s.records) == 284 for s in multi.samples)
    assert [r.qid for r in multi.samples[0].records] \
        == [r.qid for r in multi.samples[1].records]
    assert multi.pass_at_k(2) >= multi.pass_at_k(1)
    again = run_scaled_table2(["llava-7b"], 284, seed=1, samples=2,
                              shard_size=142)
    assert (again.passk_summary((1, 2))["models"]
            == report.passk_summary((1, 2))["models"])


def test_run_scaled_table2_single_sample_matches_direct_evaluation():
    from repro.core.harness import EvaluationHarness
    from repro.core.sweep import run_scaled_table2
    from repro.models.vlm import WITH_CHOICE
    from repro.models.zoo import build_model

    report = run_scaled_table2(["gpt-4o"], 142, seed=0, samples=1,
                               include_challenge=False)
    sampled = report.results["gpt-4o"]["with_choice"].samples[0]
    direct = EvaluationHarness().evaluate(
        build_model("gpt-4o"),
        databuild.shard_dataset(142, 0, 142, 0), WITH_CHOICE)
    assert [(r.qid, r.correct) for r in sampled.records] \
        == [(r.qid, r.correct) for r in direct.records]


def test_sample_salting_reuses_base_for_sample_zero():
    from repro.core.sweep import ensure_sample_provider, \
        sample_provider_name

    assert sample_provider_name("llava-7b", 0) == "llava-7b"
    assert sample_provider_name("llava-7b", 2) == "llava-7b+s2"
    name = ensure_sample_provider("llava-7b", 2)
    from repro.models.providers import create_provider

    provider = create_provider(name)
    assert provider.name == "llava-7b+s2"


def test_sweep_summary_artifact_round_trips(tmp_path):
    from repro.core import results_io
    from repro.core.sweep import run_scaled_table2

    report = run_scaled_table2(["llava-7b"], 142, samples=2,
                               include_challenge=False)
    path = results_io.write_summary(tmp_path / "sweep_summary.json",
                                    report.passk_summary((1, 2)))
    loaded = results_io.read_summary(path)
    assert loaded == report.passk_summary((1, 2))
    corrupted = path.read_text().replace(
        '"samples": 2', '"samples": 3')
    path.write_text(corrupted)
    with pytest.raises(ValueError):
        results_io.read_summary(path)


# -- CLI flags ---------------------------------------------------------------


def test_cli_limit_and_samples_clamp_with_warning(capsys):
    from repro.cli import _effective_limit, _effective_samples

    assert _effective_limit(0) == 1
    assert "warning: --limit 0" in capsys.readouterr().out
    assert _effective_limit(50) == 50
    assert _effective_samples(-3) == 1
    assert "warning: --samples -3" in capsys.readouterr().out
    assert _effective_samples(4) == 4


def test_cli_scaled_path_requires_local_provider():
    from repro.cli import main

    with pytest.raises(SystemExit, match="--provider local"):
        main(["table2", "--models", "llava-7b", "--limit", "10",
              "--provider", "remote"])
