"""Tests for the designer + vision-tool agent system."""

import pytest

from repro.agent import (
    AGENT_RATES_NO_CHOICE,
    AGENT_RATES_WITH_CHOICE,
    ChipDesignerAgent,
    Conversation,
    DESCRIPTION_FIDELITY,
    Message,
    Role,
    VisionTool,
    evaluate_agent,
)
from repro.core.benchmark import build_chipvqa
from repro.core.question import Category, VisualType
from repro.models.vlm import NO_CHOICE, WITH_CHOICE


class TestMessages:
    def test_tool_message_requires_name(self):
        with pytest.raises(ValueError):
            Message(Role.TOOL, "content")

    def test_conversation_accumulates(self):
        conversation = Conversation()
        conversation.add(Role.SYSTEM, "s")
        conversation.add(Role.USER, "u")
        conversation.add(Role.ASSISTANT, "a")
        assert conversation.turns() == 1
        assert conversation.last().content == "a"

    def test_empty_last_raises(self):
        with pytest.raises(IndexError):
            Conversation().last()

    def test_render(self):
        conversation = Conversation()
        conversation.add(Role.TOOL, "desc", tool_name="describe_image")
        assert "TOOL(describe_image)" in conversation.render()


class TestVisionTool:
    def test_description_mentions_type(self, chipvqa):
        tool = VisionTool()
        question = chipvqa[0]
        text = tool.describe_question(question)
        assert question.visual.visual_type.value in text

    def test_fidelity_table_covers_all_types(self):
        for visual_type in VisualType:
            assert visual_type in DESCRIPTION_FIDELITY

    def test_structure_describes_worst(self):
        assert DESCRIPTION_FIDELITY[VisualType.STRUCTURE] == \
            min(DESCRIPTION_FIDELITY.values())

    def test_fidelity_of_question(self, chipvqa):
        tool = VisionTool()
        for question in list(chipvqa)[:10]:
            assert 0.0 < tool.fidelity(question) <= 1.0


class TestAgentLoop:
    def test_solve_produces_tool_call(self, chipvqa):
        agent = ChipDesignerAgent()
        plan = agent.plan(list(chipvqa), WITH_CHOICE)
        trace = agent.solve(chipvqa[0], plan)
        assert trace.tool_calls == 1
        roles = [m.role for m in trace.conversation.messages]
        assert roles[:2] == [Role.SYSTEM, Role.USER]
        assert Role.TOOL in roles
        assert roles[-1] is Role.ASSISTANT

    def test_calibration_rates_cover_categories(self):
        for table in (AGENT_RATES_WITH_CHOICE, AGENT_RATES_NO_CHOICE):
            assert set(table) == set(Category)

    def test_manufacturing_regresses_vs_gpt4o(self):
        from repro.models import paper_rates

        gpt = paper_rates("gpt-4o", WITH_CHOICE)[Category.MANUFACTURING]
        assert AGENT_RATES_WITH_CHOICE[Category.MANUFACTURING] < gpt

    def test_answer_all_matches_harness_contract(self, chipvqa):
        agent = ChipDesignerAgent()
        answers = agent.answer_all(list(chipvqa)[:5], WITH_CHOICE)
        assert len(answers) == 5
        assert all(a.text for a in answers)

    def test_unknown_setting_raises(self, chipvqa):
        with pytest.raises(ValueError):
            ChipDesignerAgent().plan(list(chipvqa), "maybe_choice")


class TestAgentEvaluation:
    def test_overall_rates_match_table3(self, chipvqa, chipvqa_challenge):
        agent = ChipDesignerAgent()
        with_choice = evaluate_agent(agent, chipvqa, WITH_CHOICE)
        no_choice = evaluate_agent(agent, chipvqa_challenge, NO_CHOICE)
        assert with_choice.pass_at_1() == pytest.approx(0.49, abs=0.01)
        assert no_choice.pass_at_1() == pytest.approx(0.21, abs=0.01)

    def test_agent_beats_gpt4o_with_choice(self, chipvqa):
        from repro.core.harness import EvaluationHarness
        from repro.models import build_model

        harness = EvaluationHarness()
        gpt = harness.zero_shot_standard(build_model("gpt-4o"))
        agent_result = evaluate_agent(ChipDesignerAgent(), chipvqa,
                                      WITH_CHOICE)
        assert agent_result.pass_at_1() > gpt.pass_at_1()
