"""Provider conformance suite: every registry entry honours the contract.

The :class:`~repro.models.providers.ModelProvider` protocol is the seam
the whole evaluation stack (harness, runner, agent, CLI) stands on, so
every provider the default registry can produce is held to the same
contract here: one answer per question in question order, deterministic
replay across independently-built instances, stable content-addressed
fingerprints, and — for the serving decorators — correct fault-boundary
and batching behaviour.  The suite also pins the refactor's headline
acceptance criterion: ``run_table2`` over the full zoo through
``LocalProvider`` reproduces the pre-refactor artifacts byte-for-byte.
"""

import asyncio
import hashlib
import threading
import time

import pytest

from repro.core.faults import PermanentError, TransientModelError
from repro.core.harness import run_table2
from repro.core.question import Category
from repro.core.runner import ParallelRunner, WorkUnit
from repro.models import (
    WITH_CHOICE,
    AsyncModelProvider,
    BatchingProvider,
    LocalProvider,
    ModelProvider,
    ProviderRegistry,
    RemoteStubProvider,
    as_async_provider,
    as_provider,
    build_model,
    build_vlm,
    build_zoo,
    create_provider,
    provider_names,
)

#: Combined sha256 over the sorted ``*.jsonl`` checkpoint artifacts of a
#: serial full-zoo ``run_table2``, captured on the pre-provider code.
#: The refactored stack must reproduce it byte-for-byte.
GOLDEN_TABLE2_DIGEST = (
    "0cc1564958013cfdc74622cfc12c3c559f8660e6ceadd87b606ec64ef7a39f9f")
GOLDEN_TABLE2_FILES = 24

ALL_PROVIDERS = provider_names()


@pytest.fixture(scope="module")
def digital(chipvqa):
    return list(chipvqa.by_category(Category.DIGITAL))


@pytest.mark.parametrize("name", ALL_PROVIDERS)
class TestRegistryConformance:
    """Every registry entry satisfies the ModelProvider contract."""

    def test_satisfies_protocol(self, name):
        provider = create_provider(name)
        assert isinstance(provider, ModelProvider)
        assert provider.name == name

    def test_one_answer_per_question_in_order(self, name, digital):
        answers = create_provider(name).answer_batch(
            digital, WITH_CHOICE, use_raster=False)
        assert [a.qid for a in answers] == [q.qid for q in digital]

    def test_deterministic_replay(self, name, digital):
        """Two independent builds replay answers byte-identically."""
        first = create_provider(name).answer_batch(
            digital, WITH_CHOICE, use_raster=False)
        second = create_provider(name).answer_batch(
            digital, WITH_CHOICE, use_raster=False)
        assert first == second

    def test_fingerprint_stable_across_builds(self, name):
        assert (create_provider(name).config_fingerprint()
                == create_provider(name).config_fingerprint())

    def test_fingerprint_is_hex_digest(self, name):
        fingerprint = create_provider(name).config_fingerprint()
        assert len(fingerprint) == 64
        int(fingerprint, 16)


class TestFingerprintSeparation:
    def test_registry_fingerprints_are_distinct(self):
        fingerprints = {
            create_provider(name).config_fingerprint()
            for name in ALL_PROVIDERS
        }
        assert len(fingerprints) == len(ALL_PROVIDERS)

    def test_wrapping_changes_fingerprint(self):
        local = build_model("gpt-4o")
        remote = RemoteStubProvider(build_model("gpt-4o"))
        batched = BatchingProvider(build_model("gpt-4o"))
        fingerprints = {p.config_fingerprint()
                        for p in (local, remote, batched)}
        assert len(fingerprints) == 3

    def test_remote_configuration_is_in_fingerprint(self):
        base = RemoteStubProvider(build_model("gpt-4o"), seed=1)
        reseeded = RemoteStubProvider(build_model("gpt-4o"), seed=2)
        slower = RemoteStubProvider(build_model("gpt-4o"), seed=1,
                                    base_latency_s=0.5)
        assert (base.config_fingerprint()
                != reseeded.config_fingerprint())
        assert base.config_fingerprint() != slower.config_fingerprint()

    def test_batching_wait_policy_not_in_fingerprint(self):
        """max_wait_s is pure scheduling: it cannot change any answer,
        so it must not fragment the cache."""
        fast = BatchingProvider(build_model("gpt-4o"), max_wait_s=0.0)
        slow = BatchingProvider(build_model("gpt-4o"), max_wait_s=1.0)
        assert fast.config_fingerprint() == slow.config_fingerprint()


class TestLocalProvider:
    def test_rejects_incompatible_model(self):
        with pytest.raises(TypeError):
            LocalProvider(object())

    def test_transparent_attribute_proxy(self):
        provider = build_model("gpt-4o")
        assert isinstance(provider, LocalProvider)
        assert provider.encoder is provider.model.encoder
        assert provider.supports_system_prompt is True

    def test_attribute_writes_reach_the_model(self):
        provider = build_model("gpt-4o")
        provider.temperature = 0.7
        assert provider.model.temperature == 0.7

    def test_as_provider_passes_providers_through(self):
        provider = build_model("gpt-4o")
        assert as_provider(provider) is provider

    def test_as_provider_wraps_raw_models(self):
        raw = build_vlm("gpt-4o")
        provider = as_provider(raw)
        assert isinstance(provider, LocalProvider)
        assert provider.model is raw

    def test_byte_identical_to_wrapped_model(self, digital):
        raw = build_vlm("gpt-4o")
        direct = raw.answer_all(digital, WITH_CHOICE, use_raster=False)
        via_provider = LocalProvider(build_vlm("gpt-4o")).answer_batch(
            digital, WITH_CHOICE, use_raster=False)
        assert direct == via_provider


class TestRemoteStubFaultBoundary:
    """The stub's failures speak the runner's fault vocabulary."""

    def test_transient_fault_recovers_after_crossings(self, digital):
        provider = RemoteStubProvider(
            build_model("gpt-4o"), transient_rate=1.0,
            transient_failures=2)
        for _ in range(2):
            with pytest.raises(TransientModelError):
                provider.answer_batch(digital, WITH_CHOICE,
                                      use_raster=False)
        answers = provider.answer_batch(digital, WITH_CHOICE,
                                        use_raster=False)
        assert [a.qid for a in answers] == [q.qid for q in digital]
        assert provider.faults_injected == 2
        assert provider.calls == 1

    def test_permanent_fault_never_recovers(self, digital):
        provider = RemoteStubProvider(build_model("gpt-4o"),
                                      permanent_rate=1.0)
        for _ in range(3):
            with pytest.raises(PermanentError):
                provider.answer_batch(digital, WITH_CHOICE,
                                      use_raster=False)
        assert provider.calls == 0

    def test_fault_pattern_is_seed_deterministic(self, digital):
        def outcomes(seed):
            provider = RemoteStubProvider(
                build_model("gpt-4o"), transient_rate=0.5, seed=seed)
            pattern = []
            for factor in (1, 2, 4, 8, 16):
                try:
                    provider.answer_batch(digital, WITH_CHOICE, factor,
                                          use_raster=False)
                    pattern.append("ok")
                except TransientModelError:
                    pattern.append("429")
            return pattern

        assert outcomes(seed=7) == outcomes(seed=7)
        assert "ok" in outcomes(seed=7) and "429" in outcomes(seed=7)

    def test_latency_is_simulated_not_slept_in_tests(self, digital):
        sleeps = []
        provider = RemoteStubProvider(
            build_model("gpt-4o"), base_latency_s=0.25, jitter_s=0.5,
            sleep=sleeps.append)
        provider.answer_batch(digital, WITH_CHOICE, use_raster=False)
        assert len(sleeps) == 1
        assert 0.25 <= sleeps[0] <= 0.75
        assert provider.simulated_latency_s == sleeps[0]

    def test_healthy_stub_is_answer_transparent(self, digital):
        """Latency and jitter shape timing only — never answers."""
        stub = RemoteStubProvider(build_model("gpt-4o"),
                                  base_latency_s=1.0, jitter_s=1.0,
                                  sleep=lambda _s: None)
        direct = build_model("gpt-4o").answer_batch(
            digital, WITH_CHOICE, use_raster=False)
        assert stub.answer_batch(digital, WITH_CHOICE,
                                 use_raster=False) == direct

    def test_runner_retry_absorbs_transient_faults(self, chipvqa):
        """End to end: a flaky endpoint plus the runner's retry path
        still produces the local provider's exact records."""
        digital_ds = chipvqa.by_category(Category.DIGITAL)
        flaky = RemoteStubProvider(build_model("gpt-4o"),
                                   transient_rate=1.0,
                                   transient_failures=1)
        flaky_unit = WorkUnit(model=flaky, dataset=digital_ds,
                              setting=WITH_CHOICE)
        base_unit = WorkUnit(model=build_model("gpt-4o"),
                             dataset=digital_ds, setting=WITH_CHOICE)
        outcome = ParallelRunner().run([flaky_unit]).raise_on_failure()
        baseline = ParallelRunner().run([base_unit]).raise_on_failure()
        assert (outcome.result_for(flaky_unit).records
                == baseline.result_for(base_unit).records)
        assert flaky.faults_injected > 0


class TestBatchingProvider:
    def test_answer_batch_is_single_passthrough(self, digital):
        """A batch call is never split: quota-IRT outcome planning is
        cohort-dependent, so one work unit must stay one inner call."""
        provider = BatchingProvider(build_model("gpt-4o"),
                                    max_batch_size=4)
        direct = build_model("gpt-4o").answer_batch(
            digital, WITH_CHOICE, use_raster=False)
        answers = provider.answer_batch(digital, WITH_CHOICE,
                                        use_raster=False)
        assert answers == direct
        assert provider.batches == 1
        assert provider.batched_questions == len(digital)

    def test_submit_coalesces_concurrent_callers(self, digital):
        questions = digital[:8]
        provider = BatchingProvider(build_model("gpt-4o"),
                                    max_batch_size=len(questions),
                                    max_wait_s=5.0)
        answers = {}
        barrier = threading.Barrier(len(questions))

        def worker(question):
            barrier.wait()
            answers[question.qid] = provider.submit(
                question, WITH_CHOICE, use_raster=False)

        threads = [threading.Thread(target=worker, args=(q,))
                   for q in questions]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert provider.batches == 1
        assert provider.batched_questions == len(questions)
        assert sorted(answers) == sorted(q.qid for q in questions)
        for qid, answer in answers.items():
            assert answer.qid == qid

    def test_sequential_submit_drains_on_wait_expiry(self, digital):
        provider = BatchingProvider(build_model("gpt-4o"),
                                    max_batch_size=8, max_wait_s=0.0)
        for question in digital[:3]:
            answer = provider.submit(question, WITH_CHOICE,
                                     use_raster=False)
            assert answer.qid == question.qid
        assert provider.batches == 3

    def test_submit_propagates_inner_faults(self, digital):
        provider = BatchingProvider(
            RemoteStubProvider(build_model("gpt-4o"),
                               permanent_rate=1.0),
            max_batch_size=1)
        with pytest.raises(PermanentError):
            provider.submit(digital[0], WITH_CHOICE, use_raster=False)

    def test_flush_without_queue_is_noop(self):
        BatchingProvider(build_model("gpt-4o")).flush()


class TestRegistry:
    def test_unknown_name_raises_with_known_names(self):
        registry = ProviderRegistry()
        with pytest.raises(KeyError):
            registry.create("nope")

    def test_duplicate_registration_rejected(self):
        registry = ProviderRegistry()
        registry.register("m", lambda: build_model("gpt-4o"))
        with pytest.raises(ValueError):
            registry.register("m", lambda: build_model("gpt-4o"))
        registry.register("m", lambda: build_model("llava-7b"),
                          replace=True)

    def test_factory_name_mismatch_rejected(self):
        registry = ProviderRegistry()
        registry.register("wrong", lambda: build_model("gpt-4o"))
        with pytest.raises(ValueError):
            registry.create("wrong")

    def test_zoo_and_agent_are_registered(self):
        names = provider_names()
        assert "gpt-4o" in names
        assert "agent-gpt4turbo+gpt4o" in names
        assert len(names) == 13

    def test_work_unit_resolves_registry_names(self, chipvqa):
        """Units built from serialized registry names run identically
        to units built from provider objects."""
        digital_ds = chipvqa.by_category(Category.DIGITAL)
        by_name = WorkUnit(model="gpt-4o", dataset=digital_ds,
                           setting=WITH_CHOICE)
        by_object = WorkUnit(model=build_model("gpt-4o"),
                             dataset=digital_ds, setting=WITH_CHOICE)
        assert by_name.provider.name == "gpt-4o"
        assert (by_name.provider.config_fingerprint()
                == by_object.provider.config_fingerprint())
        runner = ParallelRunner()
        named = runner.run([by_name]).raise_on_failure()
        direct = runner.run([by_object]).raise_on_failure()
        assert (named.result_for(by_name).records
                == direct.result_for(by_object).records)


class TestGoldenByteIdentity:
    def test_table2_artifacts_match_pre_refactor_bytes(self, tmp_path):
        """The acceptance pin: a serial full-zoo ``run_table2`` through
        the provider stack writes checkpoint artifacts byte-identical
        to the pre-provider code (digest captured on the seed)."""
        run_table2(build_zoo(), workers=1, run_dir=tmp_path)
        files = sorted(tmp_path.glob("*.jsonl"))
        assert len(files) == GOLDEN_TABLE2_FILES
        combined = hashlib.sha256()
        for path in files:
            combined.update(
                path.name.encode() + b"\0" + path.read_bytes() + b"\0")
        assert combined.hexdigest() == GOLDEN_TABLE2_DIGEST

    def test_manifest_records_provider_identity(self, chipvqa, tmp_path):
        digital_ds = chipvqa.by_category(Category.DIGITAL)
        provider = build_model("gpt-4o")
        runner = ParallelRunner(run_dir=tmp_path)
        runner.run([WorkUnit(model=provider, dataset=digital_ds,
                             setting=WITH_CHOICE)]).raise_on_failure()
        import json

        manifest = json.loads((tmp_path / "manifest.json").read_text())
        (entry,) = manifest["units"]
        assert entry["provider"] == "gpt-4o"
        assert (entry["provider_fingerprint"]
                == provider.config_fingerprint())


@pytest.mark.parametrize("name", ALL_PROVIDERS)
class TestAsyncConformance:
    """Every registry entry passes the conformance suite through the
    sync-to-async adapter seam (``as_async_provider``): protocol
    satisfaction, ordering, deterministic replay, and fingerprint
    identity all hold when driven from an asyncio event loop."""

    def test_satisfies_async_protocol(self, name):
        provider = as_async_provider(create_provider(name))
        assert isinstance(provider, AsyncModelProvider)
        assert provider.name == name

    def test_adapter_preserves_fingerprint(self, name):
        base = create_provider(name)
        assert (as_async_provider(base).config_fingerprint()
                == base.config_fingerprint())

    def test_async_one_answer_per_question_in_order(self, name, digital):
        provider = as_async_provider(create_provider(name))
        answers = asyncio.run(provider.answer_batch_async(
            digital, WITH_CHOICE, use_raster=False))
        assert [a.qid for a in answers] == [q.qid for q in digital]

    def test_async_replay_matches_sync(self, name, digital):
        sync_answers = create_provider(name).answer_batch(
            digital, WITH_CHOICE, use_raster=False)
        async_answers = asyncio.run(
            as_async_provider(create_provider(name)).answer_batch_async(
                digital, WITH_CHOICE, use_raster=False))
        assert async_answers == sync_answers

    def test_native_async_is_not_rewrapped(self, name):
        """A provider that already speaks the async protocol passes
        through ``as_async_provider`` untouched."""
        provider = as_async_provider(create_provider(name))
        assert as_async_provider(provider) is provider


class TestAsyncRemoteStubFaultBoundary:
    """The stub's native async interface speaks the exact same fault
    vocabulary as the sync transport: transient faults recover after
    the scripted crossings, permanent faults never do, and rate-limit
    rejections surface as retryable ``TransientModelError``."""

    def test_transient_fault_recovers_after_crossings(self, digital):
        provider = RemoteStubProvider(build_model("gpt-4o"),
                                      transient_rate=1.0,
                                      transient_failures=2)

        async def drive():
            outcomes = []
            for _ in range(3):
                try:
                    await provider.answer_batch_async(
                        digital, WITH_CHOICE, use_raster=False)
                    outcomes.append("ok")
                except TransientModelError:
                    outcomes.append("transient")
            return outcomes

        assert asyncio.run(drive()) == ["transient", "transient", "ok"]
        assert provider.faults_injected == 2
        assert provider.calls == 1

    def test_permanent_fault_never_recovers(self, digital):
        provider = RemoteStubProvider(build_model("gpt-4o"),
                                      permanent_rate=1.0)

        async def drive():
            for _ in range(2):
                with pytest.raises(PermanentError):
                    await provider.answer_batch_async(
                        digital, WITH_CHOICE, use_raster=False)

        asyncio.run(drive())
        assert provider.calls == 0

    def test_async_matches_sync_fault_pattern(self, digital):
        """Fault draws are keyed, not stateful randomness: the async
        seam replays the same per-key inject/pass pattern as sync."""

        def pattern(provider, via_async):
            outcomes = []
            for factor in (1, 2, 3, 4):
                try:
                    if via_async:
                        asyncio.run(provider.answer_batch_async(
                            digital, WITH_CHOICE, factor,
                            use_raster=False))
                    else:
                        provider.answer_batch(
                            digital, WITH_CHOICE, factor,
                            use_raster=False)
                    outcomes.append("ok")
                except TransientModelError:
                    outcomes.append("fault")
            return outcomes

        make = lambda: RemoteStubProvider(  # noqa: E731
            build_model("gpt-4o"), transient_rate=0.5, seed=11)
        assert pattern(make(), via_async=True) == pattern(
            make(), via_async=False)

    def test_rate_limit_rejects_with_transient_429(self, digital):
        clock = {"now": 0.0}
        provider = RemoteStubProvider(build_model("gpt-4o"),
                                      rate_limit_per_s=1.0,
                                      rate_limit_burst=1,
                                      rate_clock=lambda: clock["now"])

        async def drive():
            await provider.answer_batch_async(
                digital, WITH_CHOICE, use_raster=False)
            with pytest.raises(TransientModelError,
                               match="simulated 429 rate limit"):
                await provider.answer_batch_async(
                    digital, WITH_CHOICE, 2, use_raster=False)
            clock["now"] = 1.0  # bucket refills one token
            await provider.answer_batch_async(
                digital, WITH_CHOICE, 2, use_raster=False)

        asyncio.run(drive())
        assert provider.rate_limited == 1
        assert provider.calls == 2

    def test_async_latency_awaits_instead_of_blocking(self, digital):
        """Simulated latency on the async path goes through the
        injectable coroutine sleep, never ``time.sleep``."""
        waited = []

        async def record(seconds):
            waited.append(seconds)

        provider = RemoteStubProvider(build_model("gpt-4o"),
                                      base_latency_s=0.25,
                                      async_sleep=record,
                                      sleep=pytest.fail)
        asyncio.run(provider.answer_batch_async(
            digital, WITH_CHOICE, use_raster=False))
        assert waited and waited[0] >= 0.25

    def test_rate_limit_knobs_excluded_from_fingerprint(self):
        """Rate limits and per-call jitter shape transport scheduling,
        not answers; fingerprints (hence cache keys) ignore them."""
        plain = RemoteStubProvider(build_model("gpt-4o"))
        limited = RemoteStubProvider(build_model("gpt-4o"),
                                     rate_limit_per_s=2.0,
                                     rate_limit_burst=3,
                                     jitter_per_call=True)
        assert (plain.config_fingerprint()
                == limited.config_fingerprint())


class TestBatchingProviderDrainSafety:
    """Regression tests for the drain deadlock: a drainer that dies
    between slicing a batch off the queue and completing it used to
    strand co-batched waiters forever (the sliced entries were
    unreachable by any other drainer, and with the old boolean
    ``_draining`` flag a competing drain could also wedge)."""

    class _Interrupt(BaseException):
        """Non-``Exception`` failure landing mid-dispatch, like a
        ``KeyboardInterrupt`` delivered to the draining thread."""

    class _ExplodingModel:
        """Inner provider whose dispatch dies with a BaseException."""

        name = "exploding"

        def config_fingerprint(self):
            """Constant fingerprint; identity is irrelevant here."""
            return "0" * 64

        def answer_batch(self, questions, setting, resolution_factor=1,
                         use_raster=True):
            """Simulate an interrupt arriving inside the model call."""
            raise TestBatchingProviderDrainSafety._Interrupt(
                "interrupt mid-dispatch")

    def test_co_batched_waiter_not_stranded_by_base_exception(
            self, digital):
        provider = BatchingProvider(self._ExplodingModel(),
                                    max_batch_size=2, max_wait_s=30.0)
        outcomes = {}

        def submit(idx, question):
            try:
                outcomes[idx] = ("answer", provider.submit(
                    question, WITH_CHOICE, use_raster=False))
            except BaseException as exc:  # noqa: BLE001 - recording
                outcomes[idx] = ("raised", exc)

        first = threading.Thread(target=submit, args=(0, digital[0]))
        first.start()
        time.sleep(0.05)  # let the first submitter park in the wait loop
        second = threading.Thread(target=submit, args=(1, digital[1]))
        second.start()
        first.join(timeout=5.0)
        second.join(timeout=5.0)
        assert not first.is_alive() and not second.is_alive()
        assert len(outcomes) == 2
        # Nobody got a silent ``None`` answer.
        assert all(kind == "raised" for kind, _ in outcomes.values())
        exceptions = [exc for _, exc in outcomes.values()]
        assert any(isinstance(exc, self._Interrupt)
                   for exc in exceptions)
        assert any(isinstance(exc, RuntimeError)
                   and "batch dispatch aborted" in str(exc)
                   for exc in exceptions)

    def test_pre_dispatch_failure_completes_sliced_entries(self, digital):
        """A drain that dies before even dispatching (here: the batch
        clock raising when the leftover re-opens the window) must mark
        its sliced entries done-with-error; the leftover stays queued
        for the next drain instead of vanishing."""
        provider = BatchingProvider(build_model("gpt-4o"),
                                    max_batch_size=1, max_wait_s=10.0)
        sliced = {"question": digital[0],
                  "context": (WITH_CHOICE, 1, False),
                  "answer": None, "error": None, "done": False}
        leftover = dict(sliced, question=digital[1])
        provider._queue = [sliced, leftover]

        def dying_clock():
            raise RuntimeError("scripted clock death")

        provider._clock = dying_clock
        with provider._condition:
            with pytest.raises(RuntimeError, match="scripted clock death"):
                provider._drain_locked()
        assert sliced["done"]
        assert isinstance(sliced["error"], RuntimeError)
        assert "batch dispatch aborted" in str(sliced["error"])
        assert not leftover["done"]
        assert provider._queue == [leftover]
        assert provider._draining == 0
