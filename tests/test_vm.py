"""Tests for virtual memory: geometry, page walks, TLB, EAT."""

import pytest
from hypothesis import given, strategies as st

from repro.arch.vm import (
    Mmu,
    PageTable,
    Tlb,
    VmGeometry,
    effective_access_time,
    page_table_size_bytes,
)


class TestGeometry:
    def test_field_widths(self):
        g = VmGeometry(32, 30, 4096)
        assert g.offset_bits == 12
        assert g.vpn_bits == 20
        assert g.ppn_bits == 18

    def test_two_level_split(self):
        g = VmGeometry(32, 30, 4096, levels=2)
        assert g.bits_per_level == 10
        assert g.entries_per_table == 1024

    def test_uneven_split_rejected(self):
        with pytest.raises(ValueError):
            VmGeometry(32, 30, 4096, levels=3)

    def test_non_power_of_two_page_rejected(self):
        with pytest.raises(ValueError):
            VmGeometry(32, 30, 5000)

    def test_split_vpn(self):
        g = VmGeometry(32, 30, 4096, levels=2)
        vaddr = (0x3FF << 22) | (0x001 << 12) | 0xABC
        assert g.split_vpn(vaddr) == [0x3FF, 0x001]
        assert g.offset(vaddr) == 0xABC

    def test_pte_bytes_rounds_to_power_of_two(self):
        g = VmGeometry(32, 30, 4096)
        assert g.pte_bytes(metadata_bits=12) == 4

    def test_flat_table_size(self):
        g = VmGeometry(32, 30, 4096)
        assert page_table_size_bytes(g, metadata_bits=12) == 4 * 2 ** 20


class TestPageTable:
    def test_translate(self):
        g = VmGeometry(32, 30, 4096)
        table = PageTable(g)
        table.map(0x1000, 0x5000)
        assert table.translate(0x1ABC) == 0x5ABC

    def test_page_fault(self):
        table = PageTable(VmGeometry(32, 30, 4096))
        with pytest.raises(KeyError, match="fault"):
            table.translate(0xDEAD000)

    def test_walk_accesses_equals_levels(self):
        table = PageTable(VmGeometry(32, 30, 4096, levels=2))
        assert table.walk_accesses() == 2


class TestTlb:
    def test_hit_after_fill(self):
        tlb = Tlb(4)
        assert tlb.lookup(1) is None
        tlb.fill(1, 99)
        assert tlb.lookup(1) == 99
        assert tlb.hit_rate == pytest.approx(0.5)

    def test_lru_eviction(self):
        tlb = Tlb(2)
        tlb.fill(1, 10)
        tlb.fill(2, 20)
        tlb.lookup(1)          # refresh 1
        tlb.fill(3, 30)        # evicts 2
        assert tlb.lookup(2) is None
        assert tlb.lookup(1) == 10

    def test_hit_rate_requires_lookups(self):
        with pytest.raises(ValueError):
            Tlb(2).hit_rate


class TestMmu:
    def test_miss_then_hit_latency(self):
        g = VmGeometry(32, 30, 4096, levels=2)
        table = PageTable(g)
        table.map(0x1000, 0x8000)
        mmu = Mmu(table, Tlb(8), tlb_time=1.0, memory_time=100.0)
        _, cold = mmu.access(0x1004)
        _, warm = mmu.access(0x1008)
        assert cold == pytest.approx(1.0 + 2 * 100.0 + 100.0)
        assert warm == pytest.approx(1.0 + 100.0)

    def test_translation_correct_through_tlb(self):
        g = VmGeometry(32, 30, 4096)
        table = PageTable(g)
        table.map(0x2000, 0xA000)
        mmu = Mmu(table, Tlb(2))
        paddr1, _ = mmu.access(0x2ABC)
        paddr2, _ = mmu.access(0x2DEF)
        assert paddr1 == 0xAABC
        assert paddr2 == 0xADEF


class TestEat:
    def test_formula(self):
        value = effective_access_time(0.98, 1.0, 100.0, levels=2)
        expected = 0.98 * 101.0 + 0.02 * 301.0
        assert value == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            effective_access_time(1.5, 1.0, 100.0)

    @given(st.floats(0.0, 1.0))
    def test_monotone_in_hit_rate(self, rate):
        low = effective_access_time(rate, 1.0, 100.0)
        high = effective_access_time(min(1.0, rate + 0.1), 1.0, 100.0)
        assert high <= low + 1e-9
