"""Tests for downsampling and the legibility metric."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.question import VisualContent, VisualType
from repro.visual.canvas import Canvas
from repro.visual.resolution import (
    downsample,
    edge_energy,
    legibility_score,
    stroke_legibility,
    upsample_nearest,
    visual_legibility,
)


class TestDownsample:
    def test_identity_at_one(self):
        image = np.arange(16, dtype=np.uint8).reshape(4, 4)
        assert (downsample(image, 1) == image).all()

    def test_shape_halves(self):
        image = np.zeros((8, 8), dtype=np.uint8)
        assert downsample(image, 2).shape == (4, 4)

    def test_uneven_dimensions_padded(self):
        image = np.zeros((7, 9), dtype=np.uint8)
        reduced = downsample(image, 4)
        assert reduced.shape == (2, 3)

    def test_block_average(self):
        image = np.array([[0, 255], [255, 255]], dtype=np.uint8)
        reduced = downsample(image, 2)
        assert reduced[0, 0] == round((0 + 255 * 3) / 4)

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            downsample(np.zeros((4, 4), dtype=np.uint8), 0)

    def test_upsample_inverse_shape(self):
        image = np.zeros((4, 4), dtype=np.uint8)
        assert upsample_nearest(image, 3).shape == (12, 12)


class TestEdgeEnergy:
    def test_flat_image_zero(self):
        assert edge_energy(np.full((10, 10), 128, dtype=np.uint8)) == 0.0

    def test_striped_image_positive(self):
        image = np.zeros((10, 10), dtype=np.uint8)
        image[:, ::2] = 255
        assert edge_energy(image) > 0


class TestLegibilityScore:
    def _figure_with_thin_lines(self):
        canvas = Canvas(256, 256)
        for y in range(20, 240, 24):
            canvas.line(10, y, 246, y)
        canvas.text(20, 4, "LABELS EVERYWHERE")
        return canvas.pixels

    def test_native_is_one(self):
        assert legibility_score(self._figure_with_thin_lines(), 1) == 1.0

    def test_blank_image_is_one(self):
        blank = np.full((64, 64), 255, dtype=np.uint8)
        assert legibility_score(blank, 16) == 1.0

    def test_monotone_nonincreasing_in_factor(self):
        image = self._figure_with_thin_lines()
        scores = [legibility_score(image, f) for f in (1, 2, 4, 8, 16)]
        assert all(a >= b - 1e-9 for a, b in zip(scores, scores[1:]))

    def test_sixteen_x_destroys_thin_strokes(self):
        image = self._figure_with_thin_lines()
        assert legibility_score(image, 16) < 0.7

    def test_eight_x_mostly_survives(self):
        image = self._figure_with_thin_lines()
        assert legibility_score(image, 8) > 0.6

    def test_thick_features_survive_16x(self):
        canvas = Canvas(256, 256)
        canvas.fill_rect(32, 32, 160, 160)
        assert legibility_score(canvas.pixels, 16) > 0.85


class TestStrokeLegibility:
    def _visual(self, scale):
        return VisualContent(VisualType.DIAGRAM, "d",
                             legibility_scale=scale)

    def test_above_one_pixel_perfect(self):
        assert stroke_legibility(self._visual(8.0), 8) == 1.0

    def test_below_one_pixel_degrades(self):
        assert stroke_legibility(self._visual(8.0), 16) == pytest.approx(0.5)

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            stroke_legibility(self._visual(8.0), 0)

    @given(st.floats(1.0, 64.0), st.integers(1, 32))
    def test_bounded(self, scale, factor):
        value = stroke_legibility(self._visual(scale), factor)
        assert 0.0 <= value <= 1.0


class TestVisualLegibility:
    def test_analytic_only_without_scene(self):
        visual = VisualContent(VisualType.DIAGRAM, "d",
                               legibility_scale=8.0)
        assert visual_legibility(visual, 8) == 1.0
        assert visual_legibility(visual, 16) == pytest.approx(0.5)

    def test_with_scene_uses_raster(self, chipvqa):
        question = chipvqa[0]
        native = visual_legibility(question.visual, 1)
        degraded = visual_legibility(question.visual, 16)
        assert degraded < native


class TestDownsampleProperties:
    @given(st.integers(1, 6), st.integers(8, 40), st.integers(8, 40),
           st.integers(0, 255))
    def test_constant_image_preserved(self, factor, h, w, value):
        image = np.full((h, w), value, dtype=np.uint8)
        reduced = downsample(image, factor)
        assert (reduced == value).all()

    @given(st.integers(2, 8))
    def test_mean_approximately_conserved(self, factor):
        rng = np.random.default_rng(42)
        image = rng.integers(0, 256, size=(64, 64), dtype=np.uint8)
        reduced = downsample(image, factor)
        assert abs(float(reduced.mean()) - float(image.mean())) < 3.0

    @given(st.integers(1, 16))
    def test_legibility_bounded(self, factor):
        canvas = Canvas(64, 64)
        canvas.line(0, 32, 63, 32)
        score = legibility_score(canvas.pixels, factor)
        assert 0.0 <= score <= 1.0
