"""Tests for the structural-Verilog subset."""

import pytest
from hypothesis import given, strategies as st

from repro.digital.expr import equivalent, parse
from repro.digital.gates import full_adder, mux2
from repro.digital.verilog import (
    VerilogError,
    emit_verilog,
    parse_verilog,
    roundtrip_equivalent,
)

NAND_NOT = """
// an AND built from NANDs
module top (input a, input b, output f);
  wire n1;
  nand g1 (n1, a, b);
  not  g2 (f, n1);
endmodule
"""

MUX = """
module mux2 (input s, input a, input b, output y);
  wire sn, t0, t1;
  not  u0 (sn, s);
  and  u1 (t0, sn, a);
  and  u2 (t1, s, b);
  or   u3 (y, t0, t1);
endmodule
"""


class TestParse:
    def test_simple_module(self):
        module = parse_verilog(NAND_NOT)
        assert module.name == "top"
        assert module.inputs == ("a", "b")
        assert module.outputs == ("f",)
        assert equivalent(module.netlist.to_expr("f"), parse("ab"))

    def test_mux_function(self):
        module = parse_verilog(MUX)
        assert equivalent(module.netlist.to_expr("y"), parse("s'a + sb"))

    def test_out_of_order_instances(self):
        source = """
        module t (input a, output f);
          wire w;
          not g2 (f, w);
          buf g1 (w, a);
        endmodule
        """
        module = parse_verilog(source)
        assert equivalent(module.netlist.to_expr("f"), parse("a'"))

    def test_block_comments_stripped(self):
        source = NAND_NOT.replace("// an AND built from NANDs",
                                  "/* multi\nline */")
        parse_verilog(source)

    def test_no_module_raises(self):
        with pytest.raises(VerilogError, match="no module"):
            parse_verilog("wire x;")

    def test_unsupported_primitive_raises(self):
        source = """
        module t (input a, output f);
          dff g1 (f, a);
        endmodule
        """
        with pytest.raises(VerilogError, match="unsupported"):
            parse_verilog(source)

    def test_undriven_output_raises(self):
        source = """
        module t (input a, output f, output g);
          buf u1 (f, a);
        endmodule
        """
        with pytest.raises(VerilogError, match="never driven"):
            parse_verilog(source)

    def test_combinational_loop_raises(self):
        source = """
        module t (input a, output f);
          wire w;
          and u1 (f, a, w);
          not u2 (w, f);
        endmodule
        """
        with pytest.raises(VerilogError, match="loop|undriven"):
            parse_verilog(source)

    def test_unparsed_junk_raises(self):
        source = """
        module t (input a, output f);
          buf u1 (f, a);
          assign f = a;
        endmodule
        """
        with pytest.raises(VerilogError, match="unparsed"):
            parse_verilog(source)

    def test_non_ansi_ports_rejected(self):
        source = """
        module t (a, f);
          buf u1 (f, a);
        endmodule
        """
        with pytest.raises(VerilogError, match="direction"):
            parse_verilog(source)


class TestEmit:
    def test_emit_contains_all_gates(self):
        netlist = mux2()
        text = emit_verilog(netlist, ["OUT"], name="mux")
        assert text.startswith("module mux")
        assert text.count("(") >= netlist.gate_count() + 1
        assert "endmodule" in text

    def test_emit_unknown_output_raises(self):
        with pytest.raises(VerilogError):
            emit_verilog(mux2(), ["NOPE"])

    def test_roundtrip_mux(self):
        assert roundtrip_equivalent(MUX, "y")

    def test_roundtrip_nand_not(self):
        assert roundtrip_equivalent(NAND_NOT, "f")

    def test_full_adder_roundtrip(self):
        netlist = full_adder()
        text = emit_verilog(netlist, ["SUM", "COUT"], name="fa")
        module = parse_verilog(text)
        assert equivalent(module.netlist.to_expr("SUM"),
                          netlist.to_expr("SUM"))
        assert equivalent(module.netlist.to_expr("COUT"),
                          netlist.to_expr("COUT"))


@given(st.lists(st.sampled_from(["and", "or", "nand", "nor", "xor"]),
                min_size=1, max_size=6))
def test_random_chains_roundtrip(gate_types):
    """Random two-input gate chains survive emit -> parse."""
    lines = ["module chain (input a, input b, output f);"]
    wires = [f"w{i}" for i in range(len(gate_types) - 1)]
    if wires:
        lines.append(f"  wire {', '.join(wires)};")
    previous = "a"
    for index, gate in enumerate(gate_types):
        out = "f" if index == len(gate_types) - 1 else f"w{index}"
        lines.append(f"  {gate} g{index} ({out}, {previous}, b);")
        previous = out
    source = "\n".join(lines + ["endmodule"])
    assert roundtrip_equivalent(source, "f")
