"""Tests for the MC->SA challenge recast and resolution transform."""

import pytest

from repro.core.question import (
    AnswerKind,
    Category,
    QuestionType,
    VisualContent,
    VisualType,
    make_mc_question,
)
from repro.core.transforms import to_short_answer, with_resolution_factor


def _mc():
    return make_mc_question(
        "t-1", Category.DIGITAL, "Pick one.",
        VisualContent(VisualType.DIAGRAM, "d", legibility_scale=8.0),
        ("alpha", "beta", "gamma", "delta"), 2,
        answer_kind=AnswerKind.TEXT, aliases=("the third",), unit="")


class TestToShortAnswer:
    def test_prompt_unchanged(self):
        question = _mc()
        recast = to_short_answer(question)
        assert recast.prompt == question.prompt

    def test_choices_removed(self):
        recast = to_short_answer(_mc())
        assert recast.question_type is QuestionType.SHORT_ANSWER
        assert recast.choices == ()
        assert recast.correct_choice == -1

    def test_gold_becomes_option_text(self):
        recast = to_short_answer(_mc())
        assert recast.answer.text == "gamma"

    def test_aliases_preserved(self):
        recast = to_short_answer(_mc())
        assert "the third" in recast.answer.aliases

    def test_choice_kind_degrades_to_text(self):
        question = make_mc_question(
            "t-2", Category.DIGITAL, "p",
            VisualContent(VisualType.TABLE, "t"),
            ("1", "2", "3", "4"), 0, answer_kind=AnswerKind.CHOICE)
        recast = to_short_answer(question)
        assert recast.answer.kind is AnswerKind.TEXT

    def test_sa_passes_through(self):
        recast = to_short_answer(_mc())
        assert to_short_answer(recast) is recast

    def test_challenge_collection_is_all_sa(self, chipvqa_challenge):
        assert all(q.question_type is QuestionType.SHORT_ANSWER
                   for q in chipvqa_challenge)

    def test_challenge_same_size_and_prompts(self, chipvqa,
                                             chipvqa_challenge):
        assert len(chipvqa_challenge) == len(chipvqa)
        for original, recast in zip(chipvqa, chipvqa_challenge):
            assert recast.prompt == original.prompt


class TestResolutionTransform:
    def test_identity_at_factor_1(self):
        question = _mc()
        assert with_resolution_factor(question, 1) is question

    def test_scales_dimensions_and_legibility(self):
        question = _mc()
        scaled = with_resolution_factor(question, 8)
        assert scaled.visual.width == question.visual.width // 8
        assert scaled.visual.legibility_scale == pytest.approx(1.0)

    def test_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            with_resolution_factor(_mc(), 0)
