"""Tests for the manufacturing substrate: litho, etch, diffusion, yield,
defects."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.manufacturing import defects, diffusion, etch, lithography, yieldmodel
from repro.manufacturing.etch import BOE_5_TO_1, RIE_OXIDE, EtchProcess
from repro.manufacturing.lithography import MaskFeatures, Ret, identify_ret


class TestLithography:
    def test_rayleigh(self):
        assert lithography.rayleigh_resolution(0.35, 193.0, 1.35) == \
            pytest.approx(50.04, rel=1e-3)

    def test_dof(self):
        assert lithography.depth_of_focus(0.5, 193.0, 0.9) == \
            pytest.approx(119.1, rel=1e-2)

    def test_k1_from_pitch(self):
        k1 = lithography.k1_from_pitch(50.0, 193.0, 1.35)
        assert k1 == pytest.approx(0.35, rel=1e-2)

    def test_double_patterning_threshold(self):
        assert lithography.requires_double_patterning(20.0, 193.0, 1.35)
        assert not lithography.requires_double_patterning(50.0, 193.0, 1.35)

    @pytest.mark.parametrize("features,expected", [
        (MaskFeatures(has_edge_jogs=True), Ret.OPC),
        (MaskFeatures(has_isolated_scatter_bars=True), Ret.SRAF),
        (MaskFeatures(has_phase_regions=True), Ret.PSM),
        (MaskFeatures(split_into_two_masks=True), Ret.DOUBLE_PATTERNING),
        (MaskFeatures(), Ret.OAI),
    ])
    def test_ret_identification(self, features, expected):
        assert identify_ret(features) is expected

    def test_meef(self):
        assert lithography.mask_error_enhancement_factor(3.0, 4.0, 4.0) == \
            pytest.approx(3.0)

    def test_exposure_latitude(self):
        assert lithography.exposure_latitude_percent(11.0, 9.0) == \
            pytest.approx(20.0)

    def test_euv_beats_duv(self):
        euv, duv = lithography.euv_vs_duv_resolution()
        assert euv < duv

    @given(st.floats(0.2, 0.8), st.floats(10.0, 400.0), st.floats(0.3, 1.5))
    def test_rayleigh_scalings(self, k1, wavelength, na):
        base = lithography.rayleigh_resolution(k1, wavelength, na)
        assert lithography.rayleigh_resolution(k1, wavelength * 2, na) == \
            pytest.approx(base * 2)
        assert lithography.rayleigh_resolution(k1, wavelength, na * 2) == \
            pytest.approx(base / 2)


class TestEtch:
    def test_paper_boe_example(self):
        # 500 nm oxide in 100 nm/min BOE with 10% over-etch: 5.5 minutes
        assert etch.etch_time_minutes(500.0, BOE_5_TO_1, 0.10) == \
            pytest.approx(5.5)

    def test_substrate_loss_via_selectivity(self):
        over_time = 0.25  # minutes of over-etch in RIE
        loss = etch.substrate_loss_nm(over_time, RIE_OXIDE)
        assert loss == pytest.approx(200.0 / 15.0 * 0.25)

    def test_isotropic_undercut_equals_depth(self):
        minutes = 3.0
        assert etch.undercut_nm(minutes, BOE_5_TO_1) == pytest.approx(300.0)

    def test_anisotropic_has_no_undercut(self):
        assert etch.undercut_nm(3.0, RIE_OXIDE) == 0.0

    def test_opening_width(self):
        width = etch.opening_width_after_etch(1000.0, 3.0, BOE_5_TO_1)
        assert width == pytest.approx(1600.0)

    def test_anisotropy(self):
        assert etch.anisotropy(100.0, 0.0) == 1.0
        assert etch.anisotropy(100.0, 100.0) == 0.0

    def test_stack_clear_time(self):
        total = etch.film_stack_clear_time(
            [(200.0, BOE_5_TO_1), (400.0, RIE_OXIDE)])
        assert total == pytest.approx(2.0 + 2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            etch.etch_time_minutes(-1.0, BOE_5_TO_1)
        with pytest.raises(ValueError):
            EtchProcess("bad", 0.0)

    @given(st.floats(10.0, 5000.0), st.floats(0.0, 1.0))
    def test_over_etch_monotone(self, thickness, over):
        base = etch.etch_time_minutes(thickness, BOE_5_TO_1)
        longer = etch.etch_time_minutes(thickness, BOE_5_TO_1, over)
        assert longer == pytest.approx(base * (1 + over))


class TestDiffusion:
    def test_arrhenius_increases_with_temperature(self):
        cold = diffusion.thermal_diffusivity(1.0, 3.5, 1100.0)
        hot = diffusion.thermal_diffusivity(1.0, 3.5, 1300.0)
        assert hot > cold

    def test_diffusion_length(self):
        assert diffusion.diffusion_length_um(1e-12, 1800.0) == \
            pytest.approx(2 * math.sqrt(1.8e-9) * 1e4)

    def test_gaussian_peak_at_surface(self):
        surface = diffusion.gaussian_profile(1e14, 1e-13, 3600.0, 0.0)
        deep = diffusion.gaussian_profile(1e14, 1e-13, 3600.0, 1e-4)
        assert surface > deep

    def test_erfc_profile_decreasing(self):
        concentrations = [
            diffusion.erfc_profile(1e20, 1e-13, 3600.0, d * 1e-5)
            for d in range(5)
        ]
        assert concentrations == sorted(concentrations, reverse=True)

    def test_junction_depth_on_profile(self):
        depth = diffusion.junction_depth_gaussian(1e14, 1e-13, 3600.0, 1e16)
        at_junction = diffusion.gaussian_profile(1e14, 1e-13, 3600.0, depth)
        assert at_junction == pytest.approx(1e16, rel=1e-6)

    def test_junction_background_too_high_raises(self):
        with pytest.raises(ValueError):
            diffusion.junction_depth_gaussian(1e10, 1e-13, 3600.0, 1e22)

    def test_deal_grove_reduces_to_parabolic_at_long_times(self):
        thickness = diffusion.deal_grove_thickness_um(0.165, 0.0117, 1000.0)
        assert thickness == pytest.approx(
            math.sqrt(0.0117 * 1000.0), rel=0.05)

    def test_deal_grove_with_initial_oxide(self):
        fresh = diffusion.deal_grove_thickness_um(0.165, 0.0117, 4.0)
        grown = diffusion.deal_grove_thickness_um(0.165, 0.0117, 4.0,
                                                  initial_um=0.1)
        assert grown > fresh

    def test_silicon_consumed(self):
        assert diffusion.oxide_silicon_consumed_um(1.0) == \
            pytest.approx(0.44)

    def test_sheet_resistance_and_wire(self):
        sheet = diffusion.sheet_resistance(1e-3, 0.1)
        assert sheet == pytest.approx(0.1 / 1e-5 * 1e-3 / 10, rel=1e-6) or \
            sheet > 0
        assert diffusion.wire_resistance(0.1, 500.0, 0.5) == \
            pytest.approx(100.0)

    def test_squares(self):
        assert diffusion.squares_in_wire(100.0, 0.5) == 200.0


class TestYield:
    def test_poisson(self):
        assert yieldmodel.poisson_yield(0.5, 1.0) == \
            pytest.approx(math.exp(-0.5))

    def test_murphy_above_poisson(self):
        poisson = yieldmodel.poisson_yield(1.0, 1.0)
        murphy = yieldmodel.murphy_yield(1.0, 1.0)
        assert murphy > poisson

    def test_seeds(self):
        assert yieldmodel.seeds_yield(1.0, 1.0) == 0.5

    def test_zero_defects_perfect_yield(self):
        for model in (yieldmodel.poisson_yield, yieldmodel.murphy_yield,
                      yieldmodel.seeds_yield):
            assert model(0.0, 1.0) == 1.0

    def test_dies_per_wafer(self):
        count = yieldmodel.dies_per_wafer(300.0, 10.0, 10.0)
        exact = math.pi * 150 ** 2 / 100 - math.pi * 300 / math.sqrt(200)
        assert count == int(exact)

    def test_good_dies_and_cost(self):
        good = yieldmodel.good_dies(300.0, 10.0, 10.0, 0.5)
        assert 0 < good < yieldmodel.dies_per_wafer(300.0, 10.0, 10.0)
        cost = yieldmodel.cost_per_good_die(5000.0, 300.0, 10.0, 10.0, 0.5)
        assert cost == pytest.approx(5000.0 / good)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            yieldmodel.good_dies(300.0, 10.0, 10.0, 0.5, model="magic")

    def test_learning_rate(self):
        quarters = yieldmodel.yield_learning_rate(0.5, 0.9, 0.2)
        assert quarters > 0
        # verify the returned count actually reaches the target
        da = -math.log(0.5)
        for _ in range(quarters):
            da *= 0.8
        assert math.exp(-da) >= 0.9

    @given(st.floats(0.0, 5.0), st.floats(0.01, 4.0))
    def test_yield_models_ordered(self, density, area):
        poisson = yieldmodel.poisson_yield(density, area)
        murphy = yieldmodel.murphy_yield(density, area)
        seeds = yieldmodel.seeds_yield(density, area)
        assert 0.0 <= poisson <= murphy + 1e-7
        assert murphy <= seeds + 1e-7


class TestDefects:
    def test_scratch_classification(self):
        signature = defects.WaferMapSignature(0.96, 0.1, 1.0)
        assert defects.classify_map(signature) is defects.DefectClass.SCRATCH

    def test_edge_ring(self):
        signature = defects.WaferMapSignature(0.1, 0.9, 1.0)
        assert defects.classify_map(signature) is \
            defects.DefectClass.EDGE_RING

    def test_cluster_and_random(self):
        assert defects.classify_map(
            defects.WaferMapSignature(0.1, 0.1, 5.0)) is \
            defects.DefectClass.CLUSTER
        assert defects.classify_map(
            defects.WaferMapSignature(0.1, 0.1, 1.0)) is \
            defects.DefectClass.RANDOM

    def test_cluster_factor_poisson_near_one(self):
        assert defects.cluster_factor([1, 1, 1, 1]) == 0.0
        assert defects.cluster_factor([0, 2, 0, 2]) == pytest.approx(1.0)

    def test_critical_area(self):
        area = defects.critical_area_wires(2.0, 1.0, 1.0, 10000.0)
        assert area == pytest.approx(5000.0)

    def test_small_particles_harmless(self):
        assert defects.critical_area_wires(0.5, 1.0, 1.0, 10000.0) == 0.0

    def test_failure_probability(self):
        p = defects.failure_probability(1.0, 0.5)
        assert p == pytest.approx(1.0 - math.exp(-0.5))

    def test_adders(self):
        assert defects.particles_added_per_step([5, 3], [7, 3]) == [2, 0]
        with pytest.raises(ValueError):
            defects.particles_added_per_step([1], [1, 2])
