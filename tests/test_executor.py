"""Execution backend tests: spec round-trips, backend resolution, the
cross-backend golden-digest guarantee, and process-backend failure
handling (wedged workers, persistently dying workers)."""

import hashlib
import os
import pickle
import signal
from pathlib import Path

import pytest

from repro.core import perfstats
from repro.core.executor import (
    BACKEND_NAMES,
    AsyncBackend,
    ExecutorConfigError,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    UnitSpec,
    WorkerOptions,
    create_backend,
    dataset_from_spec,
    ensure_picklable,
    register_dataset_builder,
    resolve_backend,
    spec_for,
)
from repro.core.faults import FaultBoundary, LatencyBoundary
from repro.core.resilience import CircuitBreaker
from repro.core.harness import run_table2
from repro.core.question import Category
from repro.core.runner import ParallelRunner, WorkUnit
from repro.models import WITH_CHOICE, build_model, build_zoo
from repro.models.providers import RemoteStubProvider, create_provider

#: Chained sha256 over the sorted checkpoint files of a full-zoo
#: ``run_table2`` (24 units), captured from the pre-backend thread path.
#: Every backend/spill combination must reproduce it byte-for-byte.
GOLDEN_TABLE2_DIGEST = (
    "0cc1564958013cfdc74622cfc12c3c559f8660e6ceadd87b606ec64ef7a39f9f"
)


def run_dir_digest(run_dir: Path) -> str:
    """Order-independent-input, byte-exact digest of a run's artifacts.

    The coordinator's commit log is excluded: it records *who* committed
    each unit (node names, sequence), which legitimately differs across
    fleet topologies while the checkpoints stay byte-identical.
    """
    digest = hashlib.sha256()
    for path in sorted(Path(run_dir).glob("*.jsonl")):
        if path.name == "commits.jsonl":
            continue
        digest.update(path.name.encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


class TestBackendResolution:
    def test_default_is_serial_at_one_worker(self):
        assert isinstance(resolve_backend(None, 1), SerialBackend)

    def test_default_is_thread_at_many_workers(self):
        backend = resolve_backend(None, 4)
        assert isinstance(backend, ThreadBackend)
        assert backend.workers == 4

    def test_names_create_backends(self):
        assert isinstance(create_backend("serial", 2), SerialBackend)
        assert isinstance(create_backend("thread", 2), ThreadBackend)
        assert isinstance(create_backend("process", 2), ProcessBackend)
        assert isinstance(create_backend("async", 2), AsyncBackend)
        assert set(BACKEND_NAMES) == {
            "serial", "thread", "process", "async"}

    def test_unknown_name_rejected(self):
        with pytest.raises(ExecutorConfigError, match="unknown backend"):
            create_backend("gpu", 2)

    def test_instances_pass_through(self):
        backend = ProcessBackend(workers=2)
        assert resolve_backend(backend, 8) is backend

    def test_worker_validation(self):
        with pytest.raises(ValueError):
            ThreadBackend(0)
        with pytest.raises(ValueError):
            ProcessBackend(0)
        with pytest.raises(ValueError):
            AsyncBackend(0)

    def test_async_backend_option_validation(self):
        with pytest.raises(ValueError, match="rate_limit_per_s"):
            AsyncBackend(2, rate_limit_per_s=0.0)
        with pytest.raises(ValueError, match="hedge_after_s"):
            AsyncBackend(2, hedge_after_s=-1.0)
        with pytest.raises(ValueError, match="max_hedges"):
            AsyncBackend(2, hedge_after_s=0.5, max_hedges=0)

    def test_async_backend_builds_fresh_scheduler_per_run(self):
        backend = AsyncBackend(2, rate_limit_per_s=10.0,
                               hedge_after_s=0.5, max_hedges=2)
        first = backend.make_scheduler()
        second = backend.make_scheduler()
        assert first is not second
        assert backend.last_scheduler is second
        assert second.hedge is not None
        assert second.hedge.after_s == pytest.approx(0.5)
        assert second.hedge.max_hedges == 2

    def test_hard_deadline(self):
        backend = ProcessBackend(workers=1, hard_deadline_factor=2.0,
                                 hard_deadline_grace=0.5)
        assert backend.hard_deadline(None) is None
        assert backend.hard_deadline(1.0) == pytest.approx(2.5)


class TestUnitSpecs:
    def test_round_trip_registry_provider(self, chipvqa):
        unit = WorkUnit(model=build_model("gpt-4o"),
                        dataset=chipvqa.by_category(Category.DIGITAL),
                        setting=WITH_CHOICE, resolution_factor=2)
        spec = spec_for(unit)
        assert spec.provider_name == "gpt-4o"
        assert spec.provider_pickle is None
        assert spec.dataset_spec == (
            "chipvqa", "by_category", Category.DIGITAL.value)
        rebuilt = pickle.loads(pickle.dumps(spec)).build_unit()
        assert rebuilt.unit_id == unit.unit_id
        assert (rebuilt.provider.config_fingerprint()
                == unit.provider.config_fingerprint())
        assert [q.qid for q in rebuilt.dataset] == [
            q.qid for q in unit.dataset]

    def test_non_registry_provider_travels_as_pickle(self, chipvqa):
        wrapped = RemoteStubProvider(create_provider("gpt-4o"),
                                     transient_rate=0.5, seed=3)
        unit = WorkUnit(model=wrapped, dataset=chipvqa, setting=WITH_CHOICE)
        spec = spec_for(unit)
        assert spec.provider_name is None
        assert spec.provider_pickle is not None
        rebuilt = spec.build_unit()
        assert (rebuilt.provider.config_fingerprint()
                == wrapped.config_fingerprint())

    def test_dataset_without_build_spec_rejected(self, chipvqa):
        subset = chipvqa.by_category(Category.DIGITAL)
        subset.build_spec = None
        unit = WorkUnit(model=build_model("gpt-4o"), dataset=subset,
                        setting=WITH_CHOICE)
        with pytest.raises(ExecutorConfigError, match="build_spec"):
            spec_for(unit)

    def test_registered_builder_resolves(self, chipvqa):
        register_dataset_builder("digital-only",
                                 lambda: chipvqa.by_category(
                                     Category.DIGITAL))
        dataset = dataset_from_spec(("digital-only",))
        assert len(dataset) == len(chipvqa.by_category(Category.DIGITAL))

    def test_dataset_spec_errors(self):
        with pytest.raises(ExecutorConfigError, match="empty"):
            dataset_from_spec(())
        with pytest.raises(ExecutorConfigError, match="unknown dataset"):
            dataset_from_spec(("no-such-dataset",))
        with pytest.raises(ExecutorConfigError, match="malformed"):
            dataset_from_spec(("chipvqa", "by_category"))
        with pytest.raises(ExecutorConfigError, match="unknown dataset op"):
            dataset_from_spec(("chipvqa", "shuffle", "7"))

    def test_ensure_picklable_names_the_culprit(self):
        options = WorkerOptions(harness=lambda: None)  # lambdas don't pickle
        with pytest.raises(ExecutorConfigError, match="worker options"):
            ensure_picklable([], options)


class TestGoldenCrossBackend:
    """The tentpole acceptance pin: a full-zoo Table II sweep produces
    byte-identical artifacts on every backend, with and without the
    on-disk spill tier."""

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    @pytest.mark.parametrize("spill", [False, True],
                             ids=["nospill", "spill"])
    def test_full_zoo_digest(self, backend, spill, tmp_path):
        run_dir = tmp_path / "run"
        spill_dir = tmp_path / "spill" if spill else None
        if spill:
            # cold in-memory caches, so the run actually exercises the
            # disk tier instead of hitting memory warmed by earlier tests
            perfstats.reset()
        runner = ParallelRunner(workers=4, run_dir=run_dir,
                                backend=backend, spill_dir=spill_dir)
        results = run_table2(build_zoo(), runner=runner)
        assert len(results) == 12
        assert runner.last_stats is not None
        assert runner.last_stats.completed == 24
        assert run_dir_digest(run_dir) == GOLDEN_TABLE2_DIGEST
        if spill:
            caches = runner.last_stats.perf_caches
            assert any(entry.get("spill_hits", 0)
                       + entry.get("spill_misses", 0) > 0
                       for entry in caches.values())

    def test_spill_warm_start_shares_work(self, tmp_path):
        """A second run over a warm spill directory serves perception
        work from disk — and still reproduces the golden digest."""
        spill_dir = tmp_path / "spill"
        perfstats.reset()
        first = ParallelRunner(workers=2, run_dir=tmp_path / "a",
                               backend="process", spill_dir=spill_dir)
        run_table2(["gpt-4o", "llava-7b"], runner=first)
        perfstats.reset()  # forget memory; disk is the only warm tier
        second = ParallelRunner(workers=2, run_dir=tmp_path / "b",
                                backend="process", spill_dir=spill_dir)
        run_table2(["gpt-4o", "llava-7b"], runner=second)
        assert (run_dir_digest(tmp_path / "a")
                == run_dir_digest(tmp_path / "b"))
        caches = second.last_stats.perf_caches
        assert sum(entry.get("spill_hits", 0)
                   for entry in caches.values()) > 0


class _KillEveryTime(FaultBoundary):
    """SIGKILL the current process at every crossing of one scripted
    key (a qid or ``unit_id::qid``) — a worker that can never survive
    this unit (no latch, unlike
    :class:`repro.core.faults.WorkerKillBoundary`)."""

    def __init__(self, kill_on: str):
        self.kill_on = kill_on

    def check(self, unit_id: str, qid: str) -> None:
        if qid == self.kill_on or f"{unit_id}::{qid}" == self.kill_on:
            os.kill(os.getpid(), signal.SIGKILL)


class TestProcessFailureHandling:
    def test_wedged_worker_is_killed_and_timed_out(self, chipvqa):
        """A worker that wedges inside a model call (where cooperative
        deadline checks cannot run) is killed at the parent-side hard
        deadline and its unit recorded ``timed_out``."""
        subset = chipvqa.by_category(Category.DIGITAL)
        unit = WorkUnit(model=build_model("gpt-4o"), dataset=subset,
                        setting=WITH_CHOICE)
        runner = ParallelRunner(
            workers=1,
            backend=ProcessBackend(workers=1, hard_deadline_factor=2.0,
                                   hard_deadline_grace=0.2),
            fault_boundary=LatencyBoundary(per_question=60.0),
            deadline_s=0.1)
        outcome = runner.run([unit])
        stats = runner.last_stats.unit(unit.unit_id)
        assert stats.status == "timed_out"
        assert "hard deadline" in (stats.error or "")
        assert outcome.failures == {unit.unit_id: stats.error}

    def test_persistent_killer_convicted_without_collateral(self, chipvqa):
        """A unit whose worker dies on every attempt is recorded
        ``failed`` after ``max_respawns`` solo re-runs; its siblings
        complete normally."""
        subset = chipvqa.by_category(Category.DIGITAL)
        victim_qid = subset[0].qid
        units = [WorkUnit(model=build_model(name), dataset=subset,
                          setting=WITH_CHOICE)
                 for name in ("gpt-4o", "llava-7b", "kosmos-2")]
        runner = ParallelRunner(
            workers=2,
            backend=ProcessBackend(workers=2, max_respawns=2),
            fault_boundary=_KillEveryTime(
                f"{units[1].unit_id}::{victim_qid}"))
        outcome = runner.run(units)
        killer = runner.last_stats.unit(units[1].unit_id)
        assert killer.status == "failed"
        assert "WorkerCrash" in (killer.error or "")
        assert killer.worker_respawns == 3  # initial + 2 respawns, all died
        for survivor in (units[0], units[2]):
            assert runner.last_stats.unit(survivor.unit_id).status == \
                "completed"
            assert len(outcome.results[survivor.unit_id]) == len(subset)
        assert set(outcome.failures) == {units[1].unit_id}


class TestAsyncBackendSemantics:
    """The async backend preserves the runner's resilience semantics —
    retries, breaker fast-fails, deadlines, and resume all behave as
    they do on the in-process sync backends."""

    def _digital_unit(self, chipvqa, model="gpt-4o", **stub_kwargs):
        """One digital-category unit over a (possibly faulty) stub."""
        provider = build_model(model)
        if stub_kwargs:
            provider = RemoteStubProvider(create_provider(model),
                                          **stub_kwargs)
        return WorkUnit(model=provider,
                        dataset=chipvqa.by_category(Category.DIGITAL),
                        setting=WITH_CHOICE)

    def test_retry_recovers_transient_faults(self, chipvqa):
        unit = self._digital_unit(chipvqa, transient_rate=1.0,
                                  transient_failures=2)
        runner = ParallelRunner(workers=2, backend="async")
        runner.run([unit]).raise_on_failure()
        stats = runner.last_stats.unit(unit.unit_id)
        assert stats.status == "completed"
        assert stats.retries == 2

    def test_breaker_fast_fails_sibling_units(self, chipvqa):
        subset = chipvqa.by_category(Category.DIGITAL)
        broken = [WorkUnit(model=RemoteStubProvider(
                               create_provider("gpt-4o"),
                               permanent_rate=1.0),
                           dataset=subset, setting=WITH_CHOICE,
                           resolution_factor=factor)
                  for factor in (1, 2, 3)]
        healthy = WorkUnit(model=build_model("llava-7b"), dataset=subset,
                           setting=WITH_CHOICE)
        runner = ParallelRunner(workers=1, backend="async",
                                breaker=CircuitBreaker(
                                    failure_threshold=2))
        runner.run(broken + [healthy])
        statuses = [runner.last_stats.unit(u.unit_id).status
                    for u in broken]
        assert statuses.count("failed") == 2
        assert statuses.count("fast_failed") == 1
        assert runner.last_stats.unit(healthy.unit_id).status == \
            "completed"

    def test_deadline_times_out_unit(self, chipvqa):
        unit = self._digital_unit(chipvqa)
        runner = ParallelRunner(
            workers=1, backend="async", deadline_s=0.05,
            fault_boundary=LatencyBoundary(per_question=10.0))
        runner.run([unit])
        stats = runner.last_stats.unit(unit.unit_id)
        assert stats.status == "timed_out"

    def test_resume_skips_completed_units(self, chipvqa, tmp_path):
        subset = chipvqa.by_category(Category.DIGITAL)
        units = [WorkUnit(model=build_model(name), dataset=subset,
                          setting=WITH_CHOICE)
                 for name in ("gpt-4o", "llava-7b")]
        first = ParallelRunner(workers=2, backend="async",
                               run_dir=tmp_path)
        first.run(units).raise_on_failure()
        second = ParallelRunner(workers=2, backend="async",
                                run_dir=tmp_path)
        outcome = second.run(units)
        assert second.last_stats.resumed == 2
        assert second.last_stats.completed == 0
        assert len(outcome.results) == 2

    def test_scheduler_telemetry_counts_unit_calls(self, chipvqa):
        units = [WorkUnit(model=build_model(name),
                          dataset=chipvqa.by_category(Category.DIGITAL),
                          setting=WITH_CHOICE)
                 for name in ("gpt-4o", "llava-7b", "kosmos-2")]
        backend = AsyncBackend(4, rate_limit_per_s=1000.0)
        runner = ParallelRunner(workers=4, backend=backend)
        runner.run(units).raise_on_failure()
        assert backend.last_scheduler is not None
        assert backend.last_scheduler.calls == 3
        bucket = backend.last_scheduler.bucket_for("gpt-4o")
        assert bucket.granted >= 1

    def test_hedged_rate_limited_run_matches_plain_digest(self, tmp_path):
        """Hedging and client-side pacing shape latency only: a run
        under both knobs reproduces the golden Table II digest."""
        backend = AsyncBackend(8, rate_limit_per_s=1000.0,
                               hedge_after_s=5.0)
        runner = ParallelRunner(workers=8, run_dir=tmp_path / "run",
                                backend=backend)
        results = run_table2(build_zoo(), runner=runner)
        assert len(results) == 12
        assert run_dir_digest(tmp_path / "run") == GOLDEN_TABLE2_DIGEST
