"""Tests for the extension studies: domain fine-tuning and few-shot."""

import pytest
from hypothesis import given, strategies as st

from repro.core.benchmark import build_chipvqa
from repro.core.fewshot import (
    fewshot_prompt,
    fewshot_uplift,
    select_exemplars,
    with_fewshot,
)
from repro.core.question import Category
from repro.models import WITH_CHOICE, build_model
from repro.models.finetune import (
    FinetuneRecipe,
    data_budget_sweep,
    finetune,
    projected_rates,
)


class TestFinetuneRecipe:
    def test_uniform_constructor(self):
        recipe = FinetuneRecipe.uniform(1000)
        assert all(recipe.examples_per_category[c] == 1000
                   for c in Category)

    def test_validation(self):
        with pytest.raises(ValueError):
            FinetuneRecipe.uniform(100, epochs=0)
        with pytest.raises(ValueError):
            FinetuneRecipe({Category.DIGITAL: -5})

    def test_learning_units_diminishing(self):
        small = FinetuneRecipe.uniform(500)
        large = FinetuneRecipe.uniform(5000)
        gain_ratio = (large.learning_units(Category.DIGITAL)
                      / small.learning_units(Category.DIGITAL))
        assert 1.0 < gain_ratio < 10.0  # sub-linear in data

    def test_zero_examples_zero_units(self):
        recipe = FinetuneRecipe({c: 0 for c in Category})
        assert recipe.learning_units(Category.ANALOG) == 0.0


class TestProjectedRates:
    BASE = {c: 0.2 for c in Category}

    def test_no_data_no_change(self):
        recipe = FinetuneRecipe({c: 0 for c in Category})
        assert projected_rates(self.BASE, recipe) == self.BASE

    def test_rates_improve_monotonically(self):
        small = projected_rates(self.BASE, FinetuneRecipe.uniform(500))
        large = projected_rates(self.BASE, FinetuneRecipe.uniform(5000))
        for category in Category:
            assert self.BASE[category] <= small[category] \
                <= large[category]

    def test_ceiling_respected(self):
        huge = projected_rates(self.BASE, FinetuneRecipe.uniform(10 ** 9))
        for category in Category:
            assert huge[category] <= 0.2 + 0.6 * 0.8 + 1e-9

    def test_transfer_between_disciplines(self):
        # training only on Digital must still lift Architecture
        recipe = FinetuneRecipe({Category.DIGITAL: 5000})
        rates = projected_rates(self.BASE, recipe)
        assert rates[Category.ARCHITECTURE] > self.BASE[Category.ARCHITECTURE]
        assert rates[Category.DIGITAL] > rates[Category.ARCHITECTURE]

    def test_sa_gains_smaller(self):
        recipe = FinetuneRecipe.uniform(2000)
        mc = projected_rates(self.BASE, recipe, sa=False)
        sa = projected_rates(self.BASE, recipe, sa=True)
        for category in Category:
            assert sa[category] <= mc[category]


class TestFinetunedModel:
    def test_finetuned_model_improves(self, chipvqa):
        from repro.core.harness import EvaluationHarness

        harness = EvaluationHarness()
        base = build_model("llava-7b")
        tuned = finetune(base, FinetuneRecipe.uniform(4000))
        base_score = harness.zero_shot_standard(base).pass_at_1()
        tuned_score = harness.zero_shot_standard(tuned).pass_at_1()
        assert tuned_score > base_score
        assert tuned.name.startswith("llava-7b-")

    def test_budget_sweep(self):
        base = build_model("llava-7b")
        sweep = data_budget_sweep(base, {"1k": 1000, "10k": 10000})
        assert set(sweep) == {"1k", "10k"}
        d = Category.DIGITAL
        assert sweep["10k"].calibration.with_choice[d] >= \
            sweep["1k"].calibration.with_choice[d]


class TestFewshot:
    def test_uplift_monotone_saturating(self):
        values = [fewshot_uplift(k) for k in (0, 1, 2, 4, 8, 16)]
        assert values[0] == 0.0
        assert all(a < b for a, b in zip(values, values[1:]))
        # saturating: per-exemplar marginal gain shrinks
        assert (fewshot_uplift(2) - fewshot_uplift(1)
                > fewshot_uplift(16) - fewshot_uplift(15))

    def test_uplift_validation(self):
        with pytest.raises(ValueError):
            fewshot_uplift(-1)

    def test_exemplars_never_share_category(self, chipvqa):
        target = chipvqa.get("dig-01")
        exemplars = select_exemplars(chipvqa, target, 8)
        assert len(exemplars) == 8
        assert all(e.category is not target.category for e in exemplars)
        assert len({e.qid for e in exemplars}) == 8

    def test_exemplars_deterministic(self, chipvqa):
        target = chipvqa.get("ana-05")
        first = [e.qid for e in select_exemplars(chipvqa, target, 5)]
        second = [e.qid for e in select_exemplars(chipvqa, target, 5)]
        assert first == second

    def test_prompt_contains_exemplar_answers(self, chipvqa):
        target = chipvqa.get("phy-02")
        prompt = fewshot_prompt(chipvqa, target, 2)
        assert "Example 1:" in prompt
        assert "Example 2:" in prompt
        assert target.prompt in prompt
        # no leakage of the target's own gold
        assert f"Answer: {target.gold_text}" not in prompt

    def test_zero_shot_passthrough(self):
        model = build_model("gpt-4o")
        assert with_fewshot(model, 0) is model

    def test_fewshot_improves_scores(self, chipvqa):
        from repro.core.harness import EvaluationHarness

        harness = EvaluationHarness()
        base = build_model("llava-13b")
        shot4 = with_fewshot(base, 4)
        assert harness.zero_shot_standard(shot4).pass_at_1() >= \
            harness.zero_shot_standard(base).pass_at_1()
