"""Tests for the raster canvas, scene interpreter and figure builders."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.question import VisualContent, VisualType
from repro.visual import content_key, render, render_scene
from repro.visual.canvas import BLACK, WHITE, Canvas
from repro.visual.diagram import (
    block_diagram_scene,
    flow_chart_scene,
    graph_scene,
    pipeline_scene,
    tree_scene,
)
from repro.visual.glyphs import GLYPH_HEIGHT, GLYPH_WIDTH, glyph_bitmap, text_width
from repro.visual.layout import cross_section_scene, layout_scene, mask_pattern_scene
from repro.visual.scene import draw_scene, min_stroke_scale, scene_bounds, translate
from repro.visual.schematic import (
    bode_plot_scene,
    common_source_scene,
    differential_pair_scene,
    flash_adc_scene,
    logic_network_scene,
    opamp_stage_scene,
    resistor_network_scene,
)
from repro.visual.table import kmap_scene, table_scene, truth_table_scene
from repro.visual.waveform import curve_scene, shmoo_scene, waveform_scene


class TestCanvas:
    def test_background_white(self):
        canvas = Canvas(10, 10)
        assert (canvas.pixels == WHITE).all()

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            Canvas(0, 10)

    def test_set_pixel_clipped(self):
        canvas = Canvas(5, 5)
        canvas.set_pixel(100, 100)  # silently out of bounds
        assert canvas.ink_fraction() == 0.0

    def test_horizontal_line(self):
        canvas = Canvas(10, 10)
        canvas.line(0, 5, 9, 5)
        assert (canvas.pixels[5, :] == BLACK).all()

    def test_diagonal_line_connected(self):
        canvas = Canvas(20, 20)
        canvas.line(0, 0, 19, 19)
        # Bresenham: exactly one ink pixel per row
        for row in range(20):
            assert (canvas.pixels[row] == BLACK).sum() == 1

    def test_thick_line(self):
        canvas = Canvas(10, 10)
        canvas.line(0, 5, 9, 5, thickness=3)
        assert (canvas.pixels[4:7, 2] == BLACK).all()

    def test_rect_outline_hollow(self):
        canvas = Canvas(20, 20)
        canvas.rect(2, 2, 10, 10)
        assert canvas.pixels[7, 7] == WHITE
        assert canvas.pixels[2, 5] == BLACK

    def test_fill_rect(self):
        canvas = Canvas(10, 10)
        canvas.fill_rect(2, 2, 3, 3, ink=100)
        assert (canvas.pixels[2:5, 2:5] == 100).all()

    def test_circle_symmetry(self):
        canvas = Canvas(21, 21)
        canvas.circle(10, 10, 6)
        assert (canvas.pixels == np.flip(canvas.pixels, axis=0)).all()
        assert (canvas.pixels == np.flip(canvas.pixels, axis=1)).all()

    def test_fill_circle_center_inked(self):
        canvas = Canvas(21, 21)
        canvas.fill_circle(10, 10, 5)
        assert canvas.pixels[10, 10] == BLACK

    def test_text_inks_pixels(self):
        canvas = Canvas(60, 20)
        canvas.text(2, 2, "AB")
        assert canvas.ink_fraction() > 0

    def test_text_scale_doubles_extent(self):
        small = Canvas(80, 40)
        small.text(0, 0, "X", scale=1)
        big = Canvas(80, 40)
        big.text(0, 0, "X", scale=2)
        assert big.ink_fraction() > small.ink_fraction() * 2

    def test_copy_independent(self):
        canvas = Canvas(5, 5)
        clone = canvas.copy()
        canvas.fill_rect(0, 0, 5, 5)
        assert clone.ink_fraction() == 0.0


def _ref_text(canvas, x, y, message, ink=BLACK, scale=1):
    """The seed repo's scalar ``text`` loop, kept as the byte-level oracle
    for the vectorized glyph blit."""
    cursor = x
    for character in message:
        bitmap = glyph_bitmap(character)
        for row, bits in enumerate(bitmap):
            for col, bit in enumerate(bits):
                if bit:
                    if scale == 1:
                        canvas.set_pixel(cursor + col, y + row, ink)
                    else:
                        canvas.fill_rect(cursor + col * scale,
                                         y + row * scale, scale, scale, ink)
        cursor += (GLYPH_WIDTH + 1) * scale


def _ref_circle(canvas, cx, cy, radius, ink=BLACK, thickness=1):
    """The seed repo's scalar midpoint-circle loop (byte-level oracle)."""
    x, y = radius, 0
    err = 1 - radius
    while x >= y:
        for px, py in (
            (cx + x, cy + y), (cx - x, cy + y),
            (cx + x, cy - y), (cx - x, cy - y),
            (cx + y, cy + x), (cx - y, cy + x),
            (cx + y, cy - x), (cx - y, cy - x),
        ):
            canvas._stroke_point(px, py, ink, thickness)
        y += 1
        if err < 0:
            err += 2 * y + 1
        else:
            x -= 1
            err += 2 * (y - x) + 1


def _ref_hatch_rect(canvas, x, y, width, height, ink=BLACK, pitch=6):
    """The seed repo's scalar ``hatch_rect`` loop (byte-level oracle)."""
    canvas.rect(x, y, width, height, ink)
    for offset in range(-height, width, pitch):
        x0 = x + max(0, offset)
        y0 = y + max(0, -offset)
        length = min(width - max(0, offset), height - max(0, -offset))
        if length > 0:
            canvas.line(x0, y0, x0 + length, y0 + length, ink)


class TestVectorizedKernels:
    """The numpy-kernel rewrites of ``text``/``circle``/``hatch_rect``
    must stay byte-identical to the original per-pixel loops — renders
    feed content-addressed caches and golden run digests, so a single
    drifted pixel would silently invalidate every pinned artifact."""

    @given(x=st.integers(-20, 70), y=st.integers(-15, 40),
           scale=st.integers(1, 3), ink=st.integers(0, 254),
           message=st.text(
               alphabet="ABXZ09 .-+Ωµ%?abz€", min_size=0, max_size=6))
    def test_text_matches_scalar_reference(self, x, y, scale, ink, message):
        fast, slow = Canvas(64, 48), Canvas(64, 48)
        fast.text(x, y, message, ink, scale)
        _ref_text(slow, x, y, message, ink, scale)
        assert (fast.pixels == slow.pixels).all()

    @given(cx=st.integers(-10, 70), cy=st.integers(-10, 55),
           radius=st.integers(0, 40), thickness=st.integers(1, 5),
           ink=st.integers(0, 254))
    def test_circle_matches_scalar_reference(self, cx, cy, radius,
                                             thickness, ink):
        fast, slow = Canvas(60, 45), Canvas(60, 45)
        fast.circle(cx, cy, radius, ink, thickness)
        _ref_circle(slow, cx, cy, radius, ink, thickness)
        assert (fast.pixels == slow.pixels).all()

    @given(x=st.integers(-10, 55), y=st.integers(-10, 40),
           width=st.integers(0, 50), height=st.integers(0, 40),
           pitch=st.integers(1, 9), ink=st.integers(0, 254))
    def test_hatch_rect_matches_scalar_reference(self, x, y, width,
                                                 height, pitch, ink):
        fast, slow = Canvas(56, 42), Canvas(56, 42)
        fast.hatch_rect(x, y, width, height, ink, pitch)
        _ref_hatch_rect(slow, x, y, width, height, ink, pitch)
        assert (fast.pixels == slow.pixels).all()

    def test_text_clips_like_set_pixel(self):
        canvas = Canvas(8, 8)
        canvas.text(-3, -2, "WW", scale=2)  # mostly off-canvas
        slow = Canvas(8, 8)
        _ref_text(slow, -3, -2, "WW", scale=2)
        assert (canvas.pixels == slow.pixels).all()

    def test_seed_raster_digest_pinned(self):
        """Every rendered visual in the standard collection, chained into
        one digest captured from the pre-vectorization seed renderer."""
        import hashlib

        from repro.core.benchmark import build_chipvqa

        digest = hashlib.sha256()
        count = 0
        for question in sorted(build_chipvqa().questions,
                               key=lambda q: q.qid):
            for visual in question.all_visuals:
                if visual.render_spec:
                    digest.update(content_key(visual).encode("utf-8"))
                    digest.update(render(visual, use_cache=False).tobytes())
                    count += 1
        assert count == 144
        assert digest.hexdigest() == (
            "9088b2c7f3c233f06fe6eb2afbc589701bd4227cf75914cd4a0468a2e3514230"
        )


class TestGlyphs:
    def test_dimensions(self):
        for ch in "A9+ ":
            bitmap = glyph_bitmap(ch)
            assert len(bitmap) == GLYPH_HEIGHT
            assert all(len(row) == GLYPH_WIDTH for row in bitmap)

    def test_lowercase_maps_to_upper(self):
        assert glyph_bitmap("a") == glyph_bitmap("A")

    def test_unknown_renders_box(self):
        bitmap = glyph_bitmap("€")
        assert bitmap[0] == [1, 1, 1, 1, 1]

    def test_text_width(self):
        assert text_width("AB") == 2 * GLYPH_WIDTH + 1
        assert text_width("") == 0


class TestSceneInterpreter:
    def test_all_ops_draw(self):
        scene = [
            {"op": "line", "p0": [0, 0], "p1": [10, 10]},
            {"op": "polyline", "points": [[0, 10], [10, 10], [10, 0]]},
            {"op": "rect", "xy": [20, 20], "size": [10, 10]},
            {"op": "fill_rect", "xy": [40, 20], "size": [5, 5]},
            {"op": "hatch_rect", "xy": [50, 20], "size": [10, 10]},
            {"op": "circle", "center": [70, 30], "radius": 5},
            {"op": "fill_circle", "center": [85, 30], "radius": 3},
            {"op": "arrow", "p0": [0, 40], "p1": [20, 40]},
            {"op": "text", "xy": [0, 50], "s": "HI"},
            {"op": "text_centered", "xy": [50, 55], "s": "MID"},
        ]
        image = render_scene(scene, 100, 70)
        assert (image < 255).sum() > 50

    def test_unknown_op_raises(self):
        with pytest.raises(ValueError, match="unknown scene op"):
            render_scene([{"op": "sparkle"}], 10, 10)

    def test_translate(self):
        scene = [{"op": "fill_rect", "xy": [0, 0], "size": [2, 2]}]
        moved = translate(scene, 5, 7)
        assert moved[0]["xy"] == [5, 7]
        assert scene[0]["xy"] == [0, 0]  # original untouched

    def test_scene_bounds(self):
        scene = [{"op": "rect", "xy": [10, 20], "size": [30, 5]}]
        assert scene_bounds(scene) == (10, 20, 40, 25)

    def test_min_stroke_scale(self):
        scene = [{"op": "text", "xy": [0, 0], "s": "A", "scale": 3},
                 {"op": "line", "p0": [0, 0], "p1": [1, 1], "thickness": 2}]
        assert min_stroke_scale(scene) == 2.0


BUILDERS = [
    lambda: resistor_network_scene([("R1", "1K"), ("R2", "2K")]),
    lambda: opamp_stage_scene("inverting", "RIN", "RF"),
    lambda: opamp_stage_scene("noninverting", "RG", "RF"),
    lambda: common_source_scene("GM", "RD"),
    lambda: common_source_scene("GM", "RD", with_degeneration=True),
    lambda: differential_pair_scene(),
    lambda: logic_network_scene([("AND", "G1", ["A", "B"])], "F"),
    lambda: flash_adc_scene(3),
    lambda: bode_plot_scene([2.0], [0.0, -20.0]),
    lambda: block_diagram_scene([("a", "A"), ("b", "B")], [("a", "b")]),
    lambda: pipeline_scene(["IF", "ID", "EX"], bypass=(2, 1)),
    lambda: graph_scene(["x", "y"], [("x", "y")]),
    lambda: graph_scene(["x", "y", "z", "w"], [], layout="grid"),
    lambda: flow_chart_scene(["S1", "S2"], loop_back=0),
    lambda: tree_scene([(1, 1, "P0"), (3, 2, "P1")], [(0, 1)]),
    lambda: layout_scene({"metal1": [(0, 0, 2, 2)]}),
    lambda: cross_section_scene([("silicon", 1.0), ("resist", 0.5)],
                                resist_openings=[(3, 2)]),
    lambda: mask_pattern_scene([(1, 1, 1, 4)],
                               assist_features=[(0.2, 1, 0.2, 4)]),
    lambda: table_scene([["A", "B"], ["1", "2"]]),
    lambda: truth_table_scene(["A"], ["F"], [(0, 1), (1, 0)]),
    lambda: kmap_scene(["A", "B", "C"], [["0", "1", "1", "0"],
                                         ["1", "0", "0", "1"]]),
    lambda: waveform_scene([("CLK", [0, 1, 0, 1])]),
    lambda: curve_scene([("G", [(1.0, 0.0), (10.0, -20.0)])], log_x=True),
    lambda: shmoo_scene([[True, False], [True, True]]),
]


@pytest.mark.parametrize("builder", BUILDERS,
                         ids=[f"builder{i}" for i in range(len(BUILDERS))])
def test_every_builder_renders_nonempty(builder):
    scene = builder()
    image = render_scene(scene, 512, 384)
    assert image.shape == (384, 512)
    ink = (image < 255).mean()
    assert 0.0005 < ink < 0.6


class TestRenderDispatch:
    def test_scene_spec(self):
        visual = VisualContent(
            VisualType.TABLE, "t",
            render_spec=("scene", [{"op": "fill_rect", "xy": [0, 0],
                                    "size": [10, 10]}]))
        image = render(visual, use_cache=False)
        assert image[5, 5] == 0

    def test_placeholder_without_scene(self):
        visual = VisualContent(VisualType.FIGURE, "a mystery photograph")
        image = render(visual, use_cache=False)
        assert (image < 255).sum() > 0

    def test_unknown_spec_kind(self):
        visual = VisualContent(VisualType.FIGURE, "x",
                               render_spec=("svg", []))
        with pytest.raises(ValueError):
            render(visual, use_cache=False)

    def test_cache_returns_same_array(self):
        visual = VisualContent(
            VisualType.TABLE, "t",
            render_spec=("scene", [{"op": "fill_rect", "xy": [0, 0],
                                    "size": [4, 4]}]))
        assert render(visual) is render(visual)


def _fill_visual(x, size=8):
    """A visual whose raster is uniquely determined by ``x``."""
    return VisualContent(
        VisualType.TABLE, f"fill at {x}",
        render_spec=("scene", [{"op": "fill_rect", "xy": [x, 0],
                                "size": [size, size]}]))


class TestRenderCacheContentKeying:
    def test_content_key_stable_across_instances(self):
        a = _fill_visual(2)
        b = _fill_visual(2)
        assert a is not b
        assert content_key(a) == content_key(b)

    def test_content_key_differs_on_any_pixel_relevant_field(self):
        base = _fill_visual(2)
        assert content_key(base) != content_key(_fill_visual(3))
        taller = VisualContent(base.visual_type, base.description,
                               base.render_spec, base.width,
                               base.height + 1)
        assert content_key(base) != content_key(taller)

    def test_equal_content_shares_one_cached_raster(self):
        assert render(_fill_visual(4)) is render(_fill_visual(4))

    def test_recycled_object_id_never_aliases(self):
        """Regression: the old ``id(visual)``-keyed cache could serve a
        *different* figure's raster after garbage collection reused the
        id.  Content keying makes aliasing impossible no matter how ids
        are recycled."""
        import gc

        stale_ids = set()
        for x in range(0, 64, 8):
            doomed = _fill_visual(x)
            render(doomed)
            stale_ids.add(id(doomed))
            del doomed
        gc.collect()
        recycled = 0
        for x in range(64, 256, 8):
            fresh = _fill_visual(x, size=4)
            recycled += id(fresh) in stale_ids
            image = render(fresh)
            # the raster must reflect *this* visual's content
            assert image[0, x] == 0
            assert image[0, (x + 32) % fresh.width] == WHITE
        # CPython recycles small-object ids aggressively; if this ever
        # stops holding the test still checks content correctness above.
        assert recycled >= 0

    def test_cached_raster_is_readonly(self):
        image = render(_fill_visual(5))
        with pytest.raises(ValueError):
            image[0, 0] = 7

    def test_use_cache_false_returns_private_writable_copy(self):
        visual = _fill_visual(6)
        image = render(visual, use_cache=False)
        image[0, 0] = 7  # a private raster: mutation must not poison
        assert render(visual)[0, 0] == WHITE

    def test_render_thread_hammer(self):
        """8 threads rendering a shared working set agree bit-for-bit."""
        import threading

        visuals = [_fill_visual(x) for x in range(0, 80, 8)]
        expected = [render(v, use_cache=False) for v in visuals]
        errors = []

        def worker():
            try:
                for _ in range(20):
                    for v, ref in zip(visuals, expected):
                        assert (render(v) == ref).all()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
