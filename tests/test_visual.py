"""Tests for the raster canvas, scene interpreter and figure builders."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.question import VisualContent, VisualType
from repro.visual import render, render_scene
from repro.visual.canvas import BLACK, WHITE, Canvas
from repro.visual.diagram import (
    block_diagram_scene,
    flow_chart_scene,
    graph_scene,
    pipeline_scene,
    tree_scene,
)
from repro.visual.glyphs import GLYPH_HEIGHT, GLYPH_WIDTH, glyph_bitmap, text_width
from repro.visual.layout import cross_section_scene, layout_scene, mask_pattern_scene
from repro.visual.scene import draw_scene, min_stroke_scale, scene_bounds, translate
from repro.visual.schematic import (
    bode_plot_scene,
    common_source_scene,
    differential_pair_scene,
    flash_adc_scene,
    logic_network_scene,
    opamp_stage_scene,
    resistor_network_scene,
)
from repro.visual.table import kmap_scene, table_scene, truth_table_scene
from repro.visual.waveform import curve_scene, shmoo_scene, waveform_scene


class TestCanvas:
    def test_background_white(self):
        canvas = Canvas(10, 10)
        assert (canvas.pixels == WHITE).all()

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            Canvas(0, 10)

    def test_set_pixel_clipped(self):
        canvas = Canvas(5, 5)
        canvas.set_pixel(100, 100)  # silently out of bounds
        assert canvas.ink_fraction() == 0.0

    def test_horizontal_line(self):
        canvas = Canvas(10, 10)
        canvas.line(0, 5, 9, 5)
        assert (canvas.pixels[5, :] == BLACK).all()

    def test_diagonal_line_connected(self):
        canvas = Canvas(20, 20)
        canvas.line(0, 0, 19, 19)
        # Bresenham: exactly one ink pixel per row
        for row in range(20):
            assert (canvas.pixels[row] == BLACK).sum() == 1

    def test_thick_line(self):
        canvas = Canvas(10, 10)
        canvas.line(0, 5, 9, 5, thickness=3)
        assert (canvas.pixels[4:7, 2] == BLACK).all()

    def test_rect_outline_hollow(self):
        canvas = Canvas(20, 20)
        canvas.rect(2, 2, 10, 10)
        assert canvas.pixels[7, 7] == WHITE
        assert canvas.pixels[2, 5] == BLACK

    def test_fill_rect(self):
        canvas = Canvas(10, 10)
        canvas.fill_rect(2, 2, 3, 3, ink=100)
        assert (canvas.pixels[2:5, 2:5] == 100).all()

    def test_circle_symmetry(self):
        canvas = Canvas(21, 21)
        canvas.circle(10, 10, 6)
        assert (canvas.pixels == np.flip(canvas.pixels, axis=0)).all()
        assert (canvas.pixels == np.flip(canvas.pixels, axis=1)).all()

    def test_fill_circle_center_inked(self):
        canvas = Canvas(21, 21)
        canvas.fill_circle(10, 10, 5)
        assert canvas.pixels[10, 10] == BLACK

    def test_text_inks_pixels(self):
        canvas = Canvas(60, 20)
        canvas.text(2, 2, "AB")
        assert canvas.ink_fraction() > 0

    def test_text_scale_doubles_extent(self):
        small = Canvas(80, 40)
        small.text(0, 0, "X", scale=1)
        big = Canvas(80, 40)
        big.text(0, 0, "X", scale=2)
        assert big.ink_fraction() > small.ink_fraction() * 2

    def test_copy_independent(self):
        canvas = Canvas(5, 5)
        clone = canvas.copy()
        canvas.fill_rect(0, 0, 5, 5)
        assert clone.ink_fraction() == 0.0


class TestGlyphs:
    def test_dimensions(self):
        for ch in "A9+ ":
            bitmap = glyph_bitmap(ch)
            assert len(bitmap) == GLYPH_HEIGHT
            assert all(len(row) == GLYPH_WIDTH for row in bitmap)

    def test_lowercase_maps_to_upper(self):
        assert glyph_bitmap("a") == glyph_bitmap("A")

    def test_unknown_renders_box(self):
        bitmap = glyph_bitmap("€")
        assert bitmap[0] == [1, 1, 1, 1, 1]

    def test_text_width(self):
        assert text_width("AB") == 2 * GLYPH_WIDTH + 1
        assert text_width("") == 0


class TestSceneInterpreter:
    def test_all_ops_draw(self):
        scene = [
            {"op": "line", "p0": [0, 0], "p1": [10, 10]},
            {"op": "polyline", "points": [[0, 10], [10, 10], [10, 0]]},
            {"op": "rect", "xy": [20, 20], "size": [10, 10]},
            {"op": "fill_rect", "xy": [40, 20], "size": [5, 5]},
            {"op": "hatch_rect", "xy": [50, 20], "size": [10, 10]},
            {"op": "circle", "center": [70, 30], "radius": 5},
            {"op": "fill_circle", "center": [85, 30], "radius": 3},
            {"op": "arrow", "p0": [0, 40], "p1": [20, 40]},
            {"op": "text", "xy": [0, 50], "s": "HI"},
            {"op": "text_centered", "xy": [50, 55], "s": "MID"},
        ]
        image = render_scene(scene, 100, 70)
        assert (image < 255).sum() > 50

    def test_unknown_op_raises(self):
        with pytest.raises(ValueError, match="unknown scene op"):
            render_scene([{"op": "sparkle"}], 10, 10)

    def test_translate(self):
        scene = [{"op": "fill_rect", "xy": [0, 0], "size": [2, 2]}]
        moved = translate(scene, 5, 7)
        assert moved[0]["xy"] == [5, 7]
        assert scene[0]["xy"] == [0, 0]  # original untouched

    def test_scene_bounds(self):
        scene = [{"op": "rect", "xy": [10, 20], "size": [30, 5]}]
        assert scene_bounds(scene) == (10, 20, 40, 25)

    def test_min_stroke_scale(self):
        scene = [{"op": "text", "xy": [0, 0], "s": "A", "scale": 3},
                 {"op": "line", "p0": [0, 0], "p1": [1, 1], "thickness": 2}]
        assert min_stroke_scale(scene) == 2.0


BUILDERS = [
    lambda: resistor_network_scene([("R1", "1K"), ("R2", "2K")]),
    lambda: opamp_stage_scene("inverting", "RIN", "RF"),
    lambda: opamp_stage_scene("noninverting", "RG", "RF"),
    lambda: common_source_scene("GM", "RD"),
    lambda: common_source_scene("GM", "RD", with_degeneration=True),
    lambda: differential_pair_scene(),
    lambda: logic_network_scene([("AND", "G1", ["A", "B"])], "F"),
    lambda: flash_adc_scene(3),
    lambda: bode_plot_scene([2.0], [0.0, -20.0]),
    lambda: block_diagram_scene([("a", "A"), ("b", "B")], [("a", "b")]),
    lambda: pipeline_scene(["IF", "ID", "EX"], bypass=(2, 1)),
    lambda: graph_scene(["x", "y"], [("x", "y")]),
    lambda: graph_scene(["x", "y", "z", "w"], [], layout="grid"),
    lambda: flow_chart_scene(["S1", "S2"], loop_back=0),
    lambda: tree_scene([(1, 1, "P0"), (3, 2, "P1")], [(0, 1)]),
    lambda: layout_scene({"metal1": [(0, 0, 2, 2)]}),
    lambda: cross_section_scene([("silicon", 1.0), ("resist", 0.5)],
                                resist_openings=[(3, 2)]),
    lambda: mask_pattern_scene([(1, 1, 1, 4)],
                               assist_features=[(0.2, 1, 0.2, 4)]),
    lambda: table_scene([["A", "B"], ["1", "2"]]),
    lambda: truth_table_scene(["A"], ["F"], [(0, 1), (1, 0)]),
    lambda: kmap_scene(["A", "B", "C"], [["0", "1", "1", "0"],
                                         ["1", "0", "0", "1"]]),
    lambda: waveform_scene([("CLK", [0, 1, 0, 1])]),
    lambda: curve_scene([("G", [(1.0, 0.0), (10.0, -20.0)])], log_x=True),
    lambda: shmoo_scene([[True, False], [True, True]]),
]


@pytest.mark.parametrize("builder", BUILDERS,
                         ids=[f"builder{i}" for i in range(len(BUILDERS))])
def test_every_builder_renders_nonempty(builder):
    scene = builder()
    image = render_scene(scene, 512, 384)
    assert image.shape == (384, 512)
    ink = (image < 255).mean()
    assert 0.0005 < ink < 0.6


class TestRenderDispatch:
    def test_scene_spec(self):
        visual = VisualContent(
            VisualType.TABLE, "t",
            render_spec=("scene", [{"op": "fill_rect", "xy": [0, 0],
                                    "size": [10, 10]}]))
        image = render(visual, use_cache=False)
        assert image[5, 5] == 0

    def test_placeholder_without_scene(self):
        visual = VisualContent(VisualType.FIGURE, "a mystery photograph")
        image = render(visual, use_cache=False)
        assert (image < 255).sum() > 0

    def test_unknown_spec_kind(self):
        visual = VisualContent(VisualType.FIGURE, "x",
                               render_spec=("svg", []))
        with pytest.raises(ValueError):
            render(visual, use_cache=False)

    def test_cache_returns_same_array(self):
        visual = VisualContent(
            VisualType.TABLE, "t",
            render_spec=("scene", [{"op": "fill_rect", "xy": [0, 0],
                                    "size": [4, 4]}]))
        assert render(visual) is render(visual)
