"""Sweep-coordinator tests: commit-log chaining and tail repair, lease
ownership with steal detection, the shared result store's corruption
quarantine, and multi-node fleets converging byte-identically to a
single-runner run through node deaths and heartbeat blackouts."""

import json

import pytest

from repro.core import results_io
from repro.core.coordinator import (
    GENESIS,
    CommitConflict,
    CommitLog,
    LeaseTable,
    Node,
    ResultStore,
    SweepCoordinator,
    audit_commit_log,
    payload_digest,
)
from repro.core.faults import (
    FaultBoundary,
    GateBoundary,
    NodeCrashBoundary,
    PermanentError,
)
from repro.core.harness import EvaluationHarness
from repro.core.question import Category
from repro.core.resilience import CircuitBreaker
from repro.core.runner import ParallelRunner, WorkUnit, read_manifest
from repro.models import WITH_CHOICE, build_model


def _units(chipvqa, model_names=("gpt-4o", "llava-7b", "kosmos-2")):
    subset = chipvqa.by_category(Category.DIGITAL)
    return [WorkUnit(model=build_model(name), dataset=subset,
                     setting=WITH_CHOICE) for name in model_names]


def _payload(unit) -> str:
    """The canonical checkpoint payload a fault-free run writes."""
    result = EvaluationHarness().evaluate(unit.provider, unit.dataset,
                                          unit.setting)
    return results_io.dumps(result, telemetry=False) + "\n"


class TestCommitLog:
    def test_commit_then_duplicate_then_conflict(self):
        log = CommitLog()
        assert log.commit("u1", "a" * 64, "node-0") == "committed"
        assert log.commit("u1", "a" * 64, "node-1") == "duplicate"
        assert len(log) == 1
        assert log.committed("u1") == "a" * 64
        assert log.committed("u2") is None
        with pytest.raises(CommitConflict, match="double-commit"):
            log.commit("u1", "b" * 64, "node-1")

    def test_persistence_and_chain_audit(self, tmp_path):
        path = tmp_path / "commits.jsonl"
        log = CommitLog.open(path)
        for index in range(3):
            log.commit(f"u{index}", f"{index}" * 64, "node-0")
        valid, total, detail = audit_commit_log(path)
        assert (valid, total, detail) == (3, 3, "")
        reopened = CommitLog.open(path)
        assert reopened.repaired == 0
        assert len(reopened) == 3
        assert reopened.committed("u1") == "1" * 64
        # the chain extends across reopen: prev links stay verifiable
        reopened.commit("u3", "3" * 64, "node-1")
        assert audit_commit_log(path)[:2] == (4, 4)

    def test_first_entry_chains_to_genesis(self, tmp_path):
        path = tmp_path / "commits.jsonl"
        CommitLog.open(path).commit("u0", "f" * 64, "node-0")
        entry = json.loads(path.read_text(encoding="utf-8"))
        assert entry["prev"] == GENESIS
        assert entry["seq"] == 0

    def test_mid_chain_edit_breaks_audit(self, tmp_path):
        path = tmp_path / "commits.jsonl"
        log = CommitLog.open(path)
        log.commit("u0", "a" * 64, "node-0")
        log.commit("u1", "b" * 64, "node-0")
        path.write_text(
            path.read_text(encoding="utf-8").replace("a" * 64, "c" * 64),
            encoding="utf-8")
        valid, total, detail = audit_commit_log(path)
        assert valid == 0 and total == 2
        assert "checksum" in detail

    def test_torn_tail_is_repaired_on_open(self, tmp_path):
        path = tmp_path / "commits.jsonl"
        log = CommitLog.open(path)
        log.commit("u0", "a" * 64, "node-0")
        log.commit("u1", "b" * 64, "node-0")
        whole = path.read_text(encoding="utf-8")
        path.write_text(whole[:-25], encoding="utf-8")  # tear last line
        repaired = CommitLog.open(path)
        assert repaired.repaired == 1
        assert repaired.committed("u0") == "a" * 64
        assert repaired.committed("u1") is None
        assert audit_commit_log(path)[:2] == (1, 1)
        # the repaired log keeps accepting chained commits
        repaired.commit("u1", "b" * 64, "node-2")
        assert audit_commit_log(path)[:2] == (2, 2)

    def test_fresh_discards_existing_log(self, tmp_path):
        path = tmp_path / "commits.jsonl"
        CommitLog.open(path).commit("u0", "a" * 64, "node-0")
        fresh = CommitLog.open(path, fresh=True)
        assert len(fresh) == 0
        assert not path.exists()


class TestLeaseTable:
    def test_acquire_release_holder(self):
        table = LeaseTable(lease_s=10.0)
        assert table.acquire("u1", "node-0", now=0.0) is False
        assert table.holder("u1") == "node-0"
        table.release("u1", "node-1")  # not the holder: no-op
        assert table.holder("u1") == "node-0"
        table.release("u1", "node-0")
        assert table.holder("u1") is None

    def test_expiry_and_renew(self):
        table = LeaseTable(lease_s=5.0)
        table.acquire("u1", "node-0", now=0.0)
        assert table.expired(now=4.9) == []
        assert table.expired(now=5.0) == [("u1", "node-0")]
        table.renew_node("node-0", now=4.0)
        assert table.expired(now=5.0) == []
        assert table.expired(now=9.0) == [("u1", "node-0")]

    def test_reacquire_by_other_node_is_a_steal(self):
        table = LeaseTable(lease_s=1.0)
        table.acquire("u1", "node-0", now=0.0)
        table.release("u1", "node-0")
        assert table.acquire("u1", "node-1", now=2.0) is True
        # same node taking its own unit back is not a steal
        table.release("u1", "node-1")
        assert table.acquire("u1", "node-1", now=3.0) is False

    def test_validation(self):
        with pytest.raises(ValueError):
            LeaseTable(lease_s=0.0)


class TestResultStore:
    def test_put_get_and_counters(self, chipvqa, tmp_path):
        unit = _units(chipvqa, ("gpt-4o",))[0]
        store = ResultStore(tmp_path)
        assert store.get(unit) is None
        payload = _payload(unit)
        store.put(unit, payload)
        assert store.get(unit) == payload
        assert store.get(unit, expected_sha256=payload_digest(payload)) \
            == payload
        assert store.counters() == {"store_hits": 2, "store_misses": 1,
                                    "store_quarantined": 0,
                                    "store_digest_reuse": 0}

    def test_bit_flip_is_quarantined_not_fatal(self, chipvqa, tmp_path):
        unit = _units(chipvqa, ("gpt-4o",))[0]
        store = ResultStore(tmp_path)
        store.put(unit, _payload(unit))
        entry = store.path_for(unit)
        blob = entry.read_bytes()
        entry.write_bytes(blob.replace(b"correct", b"cXrrect", 1))
        assert store.get(unit) is None
        assert store.counters()["store_quarantined"] == 1
        assert not entry.exists()  # evicted, so a rebuild can land
        store.put(unit, _payload(unit))
        assert store.get(unit) is not None

    def test_commit_log_disagreement_is_quarantined(self, chipvqa,
                                                    tmp_path):
        unit = _units(chipvqa, ("gpt-4o",))[0]
        store = ResultStore(tmp_path)
        store.put(unit, _payload(unit))
        assert store.get(unit, expected_sha256="0" * 64) is None
        assert store.counters()["store_quarantined"] == 1

    def test_wrong_units_payload_is_quarantined(self, chipvqa, tmp_path):
        gpt, llava = _units(chipvqa, ("gpt-4o", "llava-7b"))
        store = ResultStore(tmp_path)
        store.put(gpt, _payload(llava))  # cross-wired artifact
        assert store.get(gpt) is None
        assert store.counters()["store_quarantined"] == 1


class TestValidation:
    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="nodes"):
            SweepCoordinator(nodes=0)
        with pytest.raises(ValueError, match="node backend"):
            SweepCoordinator(nodes=2, node_backend="gpu")
        with pytest.raises(ValueError, match="lease_s"):
            SweepCoordinator(nodes=2, lease_s=0.0)
        with pytest.raises(ValueError, match="poll_interval"):
            SweepCoordinator(nodes=2, poll_interval=0.0)
        with pytest.raises(ValueError, match="node backend"):
            Node("node-0", "gpu")

    def test_duplicate_unit_ids_rejected(self, chipvqa):
        units = _units(chipvqa, ("gpt-4o", "gpt-4o"))
        coordinator = SweepCoordinator(nodes=2)
        with pytest.raises(ValueError, match="duplicate unit ids"):
            coordinator.run(units)

    def test_workers_mirrors_fleet_width(self):
        assert SweepCoordinator(nodes=3).workers == 3


class TestCoordinatedRuns:
    def test_fleet_matches_single_runner_bytes(self, chipvqa, tmp_path):
        units = _units(chipvqa)
        fleet_dir = tmp_path / "fleet"
        coordinator = SweepCoordinator(nodes=3, run_dir=fleet_dir)
        outcome = coordinator.run(units)
        assert not outcome.failures
        stats = coordinator.last_stats
        assert stats.completed == len(units)
        assert stats.coordinator["nodes"] == 3
        assert stats.coordinator["nodes_lost"] == 0

        solo_dir = tmp_path / "solo"
        solo = ParallelRunner(workers=1, run_dir=solo_dir)
        assert not solo.run(units).failures
        for unit in units:
            name = f"{unit.unit_id}.jsonl"
            assert ((fleet_dir / name).read_bytes()
                    == (solo_dir / name).read_bytes())

        manifest = read_manifest(fleet_dir)
        assert manifest["coordinator"]["nodes"] == 3
        assert manifest["totals"]["coordinator"]["nodes"] == 3
        nodes = {u["node"] for u in manifest["units"]}
        assert nodes <= {"node-0", "node-1", "node-2"}
        audit = results_io.verify_run(fleet_dir)
        assert audit.ok
        assert {f.name for f in audit.files} >= {"commits.jsonl"}

    def test_resume_skips_committed_units(self, chipvqa, tmp_path):
        units = _units(chipvqa, ("gpt-4o", "llava-7b"))
        first = SweepCoordinator(nodes=2, run_dir=tmp_path)
        assert not first.run(units).failures
        log_bytes = (tmp_path / "commits.jsonl").read_bytes()

        second = SweepCoordinator(nodes=2, run_dir=tmp_path)
        outcome = second.run(units)
        assert not outcome.failures
        assert second.last_stats.resumed == len(units)
        # exactly-once: resume re-commits nothing already in the log
        assert (tmp_path / "commits.jsonl").read_bytes() == log_bytes

    def test_lost_checkpoint_recovers_from_shared_store(self, chipvqa,
                                                        tmp_path):
        units = _units(chipvqa, ("gpt-4o", "llava-7b"))
        run_dir, store_dir = tmp_path / "run", tmp_path / "store"
        first = SweepCoordinator(nodes=2, run_dir=run_dir,
                                 store_dir=store_dir)
        assert not first.run(units).failures
        victim = run_dir / f"{units[0].unit_id}.jsonl"
        original = victim.read_bytes()
        victim.unlink()

        second = SweepCoordinator(nodes=2, run_dir=run_dir,
                                  store_dir=store_dir)
        assert not second.run(units).failures
        stats = second.last_stats
        assert stats.resumed == len(units)
        assert stats.coordinator["store_hits"] >= 1
        assert victim.read_bytes() == original

    def test_torn_commit_log_repairs_and_reconciles(self, chipvqa,
                                                    tmp_path):
        units = _units(chipvqa, ("gpt-4o", "llava-7b"))
        first = SweepCoordinator(nodes=2, run_dir=tmp_path)
        assert not first.run(units).failures
        log_path = tmp_path / "commits.jsonl"
        whole = log_path.read_text(encoding="utf-8")
        log_path.write_text(whole[:-30], encoding="utf-8")

        second = SweepCoordinator(nodes=2, run_dir=tmp_path)
        outcome = second.run(units)
        assert not outcome.failures
        stats = second.last_stats
        assert stats.resumed == len(units)
        assert stats.coordinator["commit_repairs"] == 1
        # the dropped entry was re-committed from its intact checkpoint
        assert audit_commit_log(log_path)[:2] == (len(units), len(units))
        assert results_io.verify_run(tmp_path).ok

    def test_node_death_steals_unit_and_converges(self, chipvqa,
                                                  tmp_path):
        units = _units(chipvqa)
        subset = chipvqa.by_category(Category.DIGITAL)
        boundary = NodeCrashBoundary(
            flag_path=tmp_path / "crash.flag",
            crash_on=f"{units[1].unit_id}::{subset[2].qid}")
        fleet_dir = tmp_path / "fleet"
        coordinator = SweepCoordinator(nodes=2, run_dir=fleet_dir,
                                       fault_boundary=boundary,
                                       lease_s=30.0)
        outcome = coordinator.run(units)
        assert not outcome.failures
        stats = coordinator.last_stats
        assert stats.completed == len(units)
        assert stats.coordinator["nodes_lost"] == 1
        assert stats.coordinator["units_stolen"] >= 1
        assert stats.unit(units[1].unit_id).steals >= 1

        solo_dir = tmp_path / "solo"
        assert not ParallelRunner(workers=1,
                                  run_dir=solo_dir).run(units).failures
        for unit in units:
            name = f"{unit.unit_id}.jsonl"
            assert ((fleet_dir / name).read_bytes()
                    == (solo_dir / name).read_bytes())

    def test_every_node_lost_degrades_instead_of_hanging(self, chipvqa,
                                                         tmp_path):
        units = _units(chipvqa, ("gpt-4o", "llava-7b"))
        subset = chipvqa.by_category(Category.DIGITAL)
        boundary = NodeCrashBoundary(flag_path=tmp_path / "crash.flag",
                                     crash_on=subset[0].qid)
        coordinator = SweepCoordinator(nodes=1, run_dir=tmp_path / "run",
                                       fault_boundary=boundary)
        outcome = coordinator.run(units)
        assert set(outcome.failures) == {u.unit_id for u in units}
        assert all("NodeLost" in error
                   for error in outcome.failures.values())
        stats = coordinator.last_stats
        assert stats.coordinator["nodes_lost"] == 1
        assert stats.coordinator["nodes"] == 1

    def test_heartbeat_blackout_is_stolen_and_deduplicated(self, chipvqa,
                                                           tmp_path):
        """A wedged node blacks out mid-unit: its lease expires, a
        healthy node steals and re-executes the unit, and the victim's
        late result is deduplicated at commit time — not double-counted,
        not corrupting."""
        units = _units(chipvqa)
        subset = chipvqa.by_category(Category.DIGITAL)
        gate = GateBoundary(flag_path=tmp_path / "gate.flag",
                            block_on=f"{units[0].unit_id}::{subset[3].qid}",
                            max_block_s=0.6)
        fleet_dir = tmp_path / "fleet"
        coordinator = SweepCoordinator(
            nodes=2, run_dir=fleet_dir, fault_boundary=gate,
            lease_s=0.1, heartbeat_timeout_s=60.0, poll_interval=0.02)
        outcome = coordinator.run(units)
        assert not outcome.failures
        stats = coordinator.last_stats
        assert stats.completed == len(units)
        counters = stats.coordinator
        assert counters["nodes_lost"] == 0
        assert counters["lease_expirations"] >= 1
        assert counters["units_stolen"] >= 1
        assert counters["duplicate_commits"] == 1
        # the log holds exactly one commit per unit despite the dup
        assert audit_commit_log(fleet_dir / "commits.jsonl")[:2] \
            == (len(units), len(units))

        solo_dir = tmp_path / "solo"
        assert not ParallelRunner(workers=1,
                                  run_dir=solo_dir).run(units).failures
        for unit in units:
            name = f"{unit.unit_id}.jsonl"
            assert ((fleet_dir / name).read_bytes()
                    == (solo_dir / name).read_bytes())


class _ModelDown(FaultBoundary):
    """Permanently fault every crossing of one model's units."""

    def __init__(self, model_prefix: str):
        self.model_prefix = model_prefix

    def check(self, unit_id: str, qid: str) -> None:
        if unit_id.startswith(self.model_prefix):
            raise PermanentError(f"{self.model_prefix} is down")


class TestBreakerIntegration:
    def _gpt_units(self, chipvqa):
        return [
            WorkUnit(model=build_model("gpt-4o"),
                     dataset=chipvqa.by_category(category),
                     setting=WITH_CHOICE)
            for category in (Category.DIGITAL, Category.ANALOG,
                             Category.PHYSICAL)
        ]

    def test_open_circuit_fast_fails_across_the_fleet(self, chipvqa,
                                                      tmp_path):
        units = self._gpt_units(chipvqa)
        breaker = CircuitBreaker(failure_threshold=1)
        coordinator = SweepCoordinator(nodes=1, run_dir=tmp_path,
                                       fault_boundary=_ModelDown("gpt-4o"),
                                       breaker=breaker)
        outcome = coordinator.run(units)
        assert set(outcome.failures) == {u.unit_id for u in units}
        stats = coordinator.last_stats
        assert stats.failed == 1
        assert stats.fast_failed == 2
        manifest = read_manifest(tmp_path)
        assert manifest["breaker"]["open"] == ["gpt-4o"]
        assert manifest["breaker"]["fast_fails"] == {"gpt-4o": 2}

    def test_half_open_probe_recovers_the_model(self, chipvqa, tmp_path):
        """With a cooldown, an open circuit admits one trial unit; the
        trial's success closes the circuit and the rest of the model's
        units run normally instead of fast-failing."""
        units = self._gpt_units(chipvqa)
        first_qid = chipvqa.by_category(Category.DIGITAL)[0].qid
        from repro.core.faults import ScriptedFaults
        boundary = ScriptedFaults({
            f"{units[0].unit_id}::{first_qid}":
                [PermanentError("transient outage")],
        })
        # a stepping clock makes the cooldown elapse deterministically
        # between breaker calls, independent of wall time
        ticks = iter(range(10 ** 6))
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=1.0,
                                 clock=lambda: float(next(ticks)))
        coordinator = SweepCoordinator(nodes=1, run_dir=tmp_path,
                                       fault_boundary=boundary,
                                       breaker=breaker)
        outcome = coordinator.run(units)
        assert set(outcome.failures) == {units[0].unit_id}
        stats = coordinator.last_stats
        assert stats.failed == 1
        assert stats.fast_failed == 0
        assert stats.completed == 2
        assert breaker.state("gpt-4o") == "closed"


class TestProcessNodes:
    def test_process_fleet_matches_inline_bytes(self, chipvqa, tmp_path):
        units = _units(chipvqa, ("gpt-4o", "llava-7b"))
        proc_dir = tmp_path / "proc"
        coordinator = SweepCoordinator(nodes=2, node_backend="process",
                                       run_dir=proc_dir, lease_s=60.0)
        outcome = coordinator.run(units)
        assert not outcome.failures
        assert coordinator.last_stats.completed == len(units)

        inline_dir = tmp_path / "inline"
        inline = SweepCoordinator(nodes=2, run_dir=inline_dir)
        assert not inline.run(units).failures
        for unit in units:
            name = f"{unit.unit_id}.jsonl"
            assert ((proc_dir / name).read_bytes()
                    == (inline_dir / name).read_bytes())
