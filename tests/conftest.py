"""Shared fixtures: the benchmark is expensive enough to build once."""

import pytest

from repro.core.benchmark import build_chipvqa, build_chipvqa_challenge


@pytest.fixture(scope="session")
def chipvqa():
    return build_chipvqa()


@pytest.fixture(scope="session")
def chipvqa_challenge():
    return build_chipvqa_challenge()
