"""Tests for the leaderboard report, question cards, and the agent's
follow-up tool-call behaviour."""

import pytest

from repro.agent import ChipDesignerAgent
from repro.agent.messages import Role
from repro.core.harness import run_table2
from repro.core.question import Category
from repro.core.report import render_leaderboard
from repro.models import WITH_CHOICE, build_model
from repro.visual.export import _wrap, render_question_card


@pytest.fixture(scope="module")
def three_model_results():
    results = run_table2([build_model(n)
                          for n in ("gpt-4o", "llava-7b", "kosmos-2")])
    return {name: settings[WITH_CHOICE]
            for name, settings in results.items()}


class TestLeaderboard:
    def test_rank_order(self, three_model_results):
        text = render_leaderboard(three_model_results)
        assert text.index("gpt-4o") < text.index("llava-7b") \
            < text.index("kosmos-2")

    def test_significance_separators_present(self, three_model_results):
        text = render_leaderboard(three_model_results)
        assert text.count("~~~ significant gap ~~~") == 2

    def test_without_significance(self, three_model_results):
        text = render_leaderboard(three_model_results, significance=False)
        assert "significant gap" not in text


class TestQuestionCards:
    def test_card_contains_figure(self, chipvqa):
        question = chipvqa.get("dig-01")
        card = render_question_card(question)
        assert card.shape[1] >= question.visual.width
        assert (card < 255).mean() > 0.005

    def test_sa_card_has_no_options(self, chipvqa):
        mc = render_question_card(chipvqa.get("ana-01"))
        sa = render_question_card(chipvqa.get("mfg-02"))
        # MC cards are taller relative to their figure (options appended)
        assert mc.shape[0] - 384 > sa.shape[0] - 384 - 40

    def test_wrap_respects_width(self):
        lines = _wrap("one two three four five six seven", 12)
        assert all(len(line) <= 12 for line in lines)
        assert " ".join(lines) == "one two three four five six seven"

    def test_wrap_long_word(self):
        lines = _wrap("supercalifragilistic", 5)
        assert lines == ["supercalifragilistic"]


class TestAgentFollowups:
    def test_low_fidelity_triggers_followup(self, chipvqa):
        agent = ChipDesignerAgent()
        plan = agent.plan(list(chipvqa), WITH_CHOICE)
        layout_q = next(q for q in chipvqa
                        if q.category is Category.MANUFACTURING
                        and agent.tool.fidelity(q) <
                        ChipDesignerAgent.FOLLOWUP_FIDELITY)
        trace = agent.solve(layout_q, plan)
        assert trace.tool_calls == 2
        tool_messages = trace.conversation.tool_calls()
        assert len(tool_messages) == 2
        assert "Annotations" in tool_messages[1].content

    def test_high_fidelity_single_call(self, chipvqa):
        agent = ChipDesignerAgent()
        plan = agent.plan(list(chipvqa), WITH_CHOICE)
        diagram_q = next(q for q in chipvqa
                         if agent.tool.fidelity(q) >= 0.9)
        trace = agent.solve(diagram_q, plan)
        assert trace.tool_calls == 1

    def test_followups_do_not_change_table3(self):
        """The follow-up is conversational realism; calibration holds."""
        from repro.agent import run_table3

        results = run_table3()
        assert results["agent"]["with_choice"].pass_at_1() == \
            pytest.approx(0.49, abs=0.01)
