"""Tests for MOS operating points and small-signal stage formulas."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.analog import smallsignal as ss
from repro.analog.smallsignal import MosParams, bias_from_current, bias_from_vgs


class TestOperatingPoint:
    def test_vov_from_current(self):
        op = bias_from_current(MosParams(k=2e-3, v_th=0.5), 1e-3)
        assert op.v_ov == pytest.approx(1.0)
        assert op.v_gs == pytest.approx(1.5)

    def test_gm_identities(self):
        params = MosParams(k=2e-3, v_th=0.5)
        op = bias_from_current(params, 1e-3)
        assert op.gm == pytest.approx(2 * op.i_d / op.v_ov)
        assert op.gm == pytest.approx(math.sqrt(2 * params.k * op.i_d))

    def test_ro_infinite_without_lambda(self):
        op = bias_from_current(MosParams(k=1e-3, v_th=0.4), 1e-3)
        assert math.isinf(op.ro)

    def test_ro_with_lambda(self):
        op = bias_from_current(MosParams(k=1e-3, v_th=0.4, lam=0.02), 1e-3)
        assert op.ro == pytest.approx(50e3)
        assert op.intrinsic_gain == pytest.approx(op.gm * 50e3)

    def test_bias_from_vgs_round_trip(self):
        params = MosParams(k=2e-3, v_th=0.5)
        op = bias_from_vgs(params, 1.5)
        assert op.i_d == pytest.approx(1e-3)

    def test_off_device_raises(self):
        with pytest.raises(ValueError):
            bias_from_vgs(MosParams(k=1e-3, v_th=0.7), 0.5)

    def test_saturation_check(self):
        params = MosParams(k=1e-3, v_th=0.6)
        assert ss.in_saturation(params, v_gs=1.1, v_ds=0.6)
        assert not ss.in_saturation(params, v_gs=1.1, v_ds=0.3)
        assert not ss.in_saturation(params, v_gs=0.5, v_ds=1.0)  # cutoff


class TestStageGains:
    def test_common_source(self):
        assert ss.common_source_gain(2e-3, 10e3) == pytest.approx(-20.0)

    def test_common_source_with_ro(self):
        gain = ss.common_source_gain(2e-3, 10e3, ro=50e3)
        assert gain == pytest.approx(-2e-3 * (10e3 * 50e3) / 60e3)

    def test_degeneration_reduces_gain(self):
        plain = abs(ss.common_source_gain(2e-3, 10e3))
        degen = abs(ss.common_source_degenerated_gain(2e-3, 10e3, 500.0))
        assert degen < plain
        assert degen == pytest.approx(20.0 / 2.0)

    def test_follower_below_unity(self):
        gain = ss.common_drain_gain(5e-3, 2e3)
        assert 0.0 < gain < 1.0
        assert gain == pytest.approx(10.0 / 11.0)

    def test_common_gate_positive(self):
        assert ss.common_gate_gain(4e-3, 5e3) == pytest.approx(20.0)

    def test_cascode_boost(self):
        rout = ss.cascode_output_resistance(2e-3, 50e3, 50e3)
        assert rout > 50e3 * 50
        assert rout == pytest.approx(2e-3 * 50e3 * 50e3 + 1e5)

    def test_diff_pair(self):
        assert ss.diff_pair_gain(3e-3, 4e3) == pytest.approx(12.0)

    def test_cmrr(self):
        assert ss.diff_pair_cmrr(2e-3, 5e3, 100e3) == pytest.approx(400.0)

    def test_five_transistor_ota(self):
        assert ss.five_transistor_ota_gain(1e-3, 100e3, 100e3) == \
            pytest.approx(50.0)

    def test_source_follower_rout(self):
        assert ss.source_follower_rout(4e-3) == pytest.approx(250.0)

    def test_degenerated_rout(self):
        assert ss.degenerated_rout(2e-3, 50e3, 1e3) == pytest.approx(151e3)


class TestMnaCrossChecks:
    """The closed forms must agree with the generic MNA solver."""

    @given(st.floats(1e-4, 1e-2), st.floats(1e3, 1e5))
    def test_common_source_formula_vs_mna(self, gm, rd):
        formula = ss.common_source_gain(gm, rd)
        mna = ss.common_source_gain_mna(gm, rd)
        assert mna == pytest.approx(formula, rel=1e-9)

    @given(st.floats(1e-4, 1e-2), st.floats(1e3, 1e5), st.floats(1e4, 1e6))
    def test_common_source_with_ro_vs_mna(self, gm, rd, ro):
        formula = ss.common_source_gain(gm, rd, ro=ro)
        mna = ss.common_source_gain_mna(gm, rd, ro=ro)
        assert mna == pytest.approx(formula, rel=1e-9)

    @given(st.floats(1e-4, 1e-2), st.floats(1e2, 1e5))
    def test_source_follower_vs_mna(self, gm, rs):
        formula = ss.common_drain_gain(gm, rs)
        mna = ss.source_follower_gain_mna(gm, rs)
        assert mna == pytest.approx(formula, rel=1e-9)
