"""Tests for the boolean-algebra engine (parser, evaluation, equivalence)."""

import pytest
from hypothesis import given, strategies as st

from repro.digital.expr import (
    And,
    Const,
    ExprError,
    Not,
    Or,
    Var,
    Xor,
    equivalent,
    equivalent_text,
    evaluate,
    from_minterms,
    minterms_of,
    parse,
    truth_vector,
    variables,
)


class TestParser:
    def test_single_variable(self):
        assert parse("A") == Var("A")

    def test_juxtaposition_is_and(self):
        expr = parse("AB")
        assert isinstance(expr, And)
        assert expr.operands == (Var("A"), Var("B"))

    def test_plus_is_or(self):
        expr = parse("A + B")
        assert isinstance(expr, Or)

    def test_postfix_apostrophe_is_not(self):
        assert parse("A'") == Not(Var("A"))

    def test_prefix_tilde(self):
        assert parse("~A") == Not(Var("A"))

    def test_double_negation_parses(self):
        expr = parse("A''")
        assert expr == Not(Not(Var("A")))

    def test_parentheses(self):
        expr = parse("(A + B)C")
        assert isinstance(expr, And)

    def test_xor(self):
        assert isinstance(parse("A ^ B"), Xor)

    def test_constants(self):
        assert parse("1") == Const(True)
        assert parse("0") == Const(False)

    def test_lhs_equals_stripped(self):
        assert parse("Q = S + R'Q") == parse("S + R'Q")

    def test_numbered_variables(self):
        assert parse("A1 B2") == And((Var("A1"), Var("B2")))

    def test_empty_raises(self):
        with pytest.raises(ExprError):
            parse("")

    def test_unbalanced_parens_raise(self):
        with pytest.raises(ExprError):
            parse("(A + B")

    def test_trailing_junk_raises(self):
        with pytest.raises(ExprError):
            parse("A + B)")

    def test_precedence_and_over_or(self):
        # AB + C  ==  (A AND B) OR C
        expr = parse("AB + C")
        assert evaluate(expr, {"A": False, "B": False, "C": True})
        assert not evaluate(expr, {"A": True, "B": False, "C": False})


class TestEvaluation:
    def test_and(self):
        expr = parse("AB")
        assert evaluate(expr, {"A": True, "B": True})
        assert not evaluate(expr, {"A": True, "B": False})

    def test_demorgan(self):
        assert equivalent(parse("(AB)'"), parse("A' + B'"))
        assert equivalent(parse("(A + B)'"), parse("A'B'"))

    def test_xor_expansion(self):
        assert equivalent(parse("A ^ B"), parse("AB' + A'B"))

    def test_unbound_variable_raises(self):
        with pytest.raises(ExprError):
            evaluate(parse("A"), {})

    def test_truth_vector_order(self):
        # binary counting order: 00, 01, 10, 11 over (A, B)
        assert truth_vector(parse("A"), ["A", "B"]) == (
            False, False, True, True)


class TestEquivalence:
    def test_absorption(self):
        assert equivalent(parse("A + AB"), parse("A"))

    def test_consensus(self):
        assert equivalent(parse("AB + A'C + BC"), parse("AB + A'C"))

    def test_non_equivalent(self):
        assert not equivalent(parse("A + B"), parse("AB"))

    def test_over_disjoint_variables(self):
        assert not equivalent(parse("A"), parse("B"))

    def test_text_interface_tolerates_garbage(self):
        assert not equivalent_text("A +", "A")
        assert equivalent_text("Q = A + B", "B + A")

    def test_sr_latch_paper_example(self):
        # The characteristic equation of the SR latch.
        assert equivalent_text("S + R'Q", "R'Q + S")
        assert not equivalent_text("S + R'Q", "S'Q + SR'")


class TestMinterms:
    def test_minterms_of_and(self):
        assert minterms_of(parse("AB"), ["A", "B"]) == [3]

    def test_from_minterms_round_trip(self):
        names = ["A", "B", "C"]
        for minterms in ([0], [1, 2, 4], [0, 7], list(range(8))):
            expr = from_minterms(names, minterms)
            assert minterms_of(expr, names) == sorted(minterms)

    def test_from_no_minterms_is_false(self):
        assert from_minterms(["A"], []) == Const(False)

    def test_str_renders_textbook_style(self):
        text = str(parse("A'B + C"))
        assert "'" in text and "+" in text


@st.composite
def exprs(draw, depth=0):
    if depth > 3 or draw(st.booleans()):
        return Var(draw(st.sampled_from(["A", "B", "C", "D"])))
    kind = draw(st.sampled_from(["not", "and", "or", "xor"]))
    if kind == "not":
        return Not(draw(exprs(depth=depth + 1)))
    if kind == "xor":
        return Xor(draw(exprs(depth=depth + 1)),
                   draw(exprs(depth=depth + 1)))
    operands = tuple(
        draw(exprs(depth=depth + 1))
        for _ in range(draw(st.integers(2, 3))))
    return And(operands) if kind == "and" else Or(operands)


@given(exprs())
def test_str_parse_round_trip(expr):
    """Printing then re-parsing preserves the boolean function."""
    assert equivalent(parse(str(expr)), expr)


@given(exprs())
def test_double_negation_invariant(expr):
    assert equivalent(Not(Not(expr)), expr)


@given(exprs(), exprs())
def test_de_morgan_general(a, b):
    assert equivalent(Not(And((a, b))), Or((Not(a), Not(b))))
