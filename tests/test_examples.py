"""Smoke tests: the shipped examples must run end to end."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "custom_benchmark.py",
    "agent_vqa_session.py",
    "grow_the_benchmark.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, tmp_path, monkeypatch, capsys):
    # examples write into examples/output relative to the cwd
    monkeypatch.chdir(tmp_path)
    (tmp_path / "examples").mkdir()
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), script


def test_quickstart_reports_table2_numbers(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    runpy.run_path(str(EXAMPLES / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "0.44" in out


def test_resolution_example(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "examples").mkdir()
    runpy.run_path(str(EXAMPLES / "resolution_study.py"),
                   run_name="__main__")
    out = capsys.readouterr().out
    assert "0.37" in out
