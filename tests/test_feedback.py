"""Tests for feedback analysis and op-amp closed-loop formulas."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.analog import feedback as fb
from repro.analog.feedback import LoopAnalysis, Topology


class TestLoopAnalysis:
    def test_loop_gain(self):
        loop = LoopAnalysis(1000.0, 0.1)
        assert loop.loop_gain == pytest.approx(100.0)
        assert loop.desensitivity == pytest.approx(101.0)

    def test_closed_loop_approaches_ideal(self):
        loop = LoopAnalysis(1e6, 0.1)
        assert loop.closed_loop_gain == pytest.approx(10.0, rel=1e-4)

    def test_gain_error(self):
        loop = LoopAnalysis(1000.0, 0.01)
        assert loop.gain_error_percent() == pytest.approx(100.0 / 11.0,
                                                          rel=1e-6)

    def test_ideal_gain_requires_feedback(self):
        with pytest.raises(ValueError):
            LoopAnalysis(100.0, 0.0).ideal_gain

    @pytest.mark.parametrize("topology,z_in_up,z_out_up", [
        (Topology.SERIES_SHUNT, True, False),
        (Topology.SHUNT_SERIES, False, True),
        (Topology.SERIES_SERIES, True, True),
        (Topology.SHUNT_SHUNT, False, False),
    ])
    def test_impedance_transformations(self, topology, z_in_up, z_out_up):
        loop = LoopAnalysis(1000.0, 0.1)
        z_in = loop.input_impedance(1e4, topology)
        z_out = loop.output_impedance(100.0, topology)
        assert (z_in > 1e4) == z_in_up
        assert (z_out > 100.0) == z_out_up

    def test_bandwidth_extension(self):
        loop = LoopAnalysis(100.0, 0.1)
        assert loop.bandwidth_extension(10e3) == pytest.approx(110e3)

    @given(st.floats(1.0, 1e6), st.floats(0.001, 1.0))
    def test_closed_loop_below_both_bounds(self, a, beta):
        loop = LoopAnalysis(a, beta)
        assert loop.closed_loop_gain <= a + 1e-9
        assert loop.closed_loop_gain <= loop.ideal_gain + 1e-9


class TestOpampFormulas:
    def test_inverting_ideal(self):
        assert fb.inverting_gain(10e3, 100e3) == pytest.approx(-10.0)

    def test_inverting_finite_gain_is_smaller(self):
        finite = abs(fb.inverting_gain(10e3, 100e3, open_loop=1000.0))
        assert finite < 10.0
        assert finite == pytest.approx(10.0 / (1 + 11.0 / 1000.0), rel=1e-6)

    def test_noninverting_ideal(self):
        assert fb.noninverting_gain(1e3, 9e3) == pytest.approx(10.0)

    def test_noninverting_finite(self):
        gain = fb.noninverting_gain(1e3, 9e3, open_loop=1000.0)
        assert gain == pytest.approx(10.0 / 1.01, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            fb.inverting_gain(-1.0, 10.0)

    def test_inamp(self):
        gain = fb.instrumentation_amp_gain(1e3, 10e3, 10e3, 10e3)
        assert gain == pytest.approx(21.0)

    def test_summing(self):
        v = fb.summing_amp_output([(1.0, 10e3), (2.0, 20e3)], 20e3)
        assert v == pytest.approx(-4.0)

    def test_relaxation_period(self):
        period = fb.relaxation_oscillator_period(10e3, 10e-9, 0.5)
        assert period == pytest.approx(2 * 1e-4 * math.log(3.0))

    def test_relaxation_beta_bounds(self):
        with pytest.raises(ValueError):
            fb.relaxation_oscillator_period(1e3, 1e-9, 1.0)
