"""Tests for the vector-machine timing model and OoO hazard analysis."""

import pytest
from hypothesis import given, strategies as st

from repro.arch import vector
from repro.arch.ooo import (
    Scoreboard,
    classify_hazards,
    false_hazards_removed_by_renaming,
    hazard_counts,
    rob_entries_needed,
)
from repro.arch.pipeline import alu, load
from repro.arch.vector import VectorOp


class TestChimes:
    def _daxpy(self):
        return [VectorOp("LV", "ls", "v1"),
                VectorOp("MULVS", "mul", "v2", ("v1",)),
                VectorOp("LV2", "ls", "v3"),
                VectorOp("ADDVV", "add", "v4", ("v2", "v3")),
                VectorOp("SV", "ls", "v5", ("v4",))]

    def test_daxpy_is_three_chimes_with_chaining(self):
        assert vector.chimes(self._daxpy(), allow_chaining=True) == 3

    def test_no_chaining_needs_more_chimes(self):
        with_chaining = vector.chimes(self._daxpy(), allow_chaining=True)
        without = vector.chimes(self._daxpy(), allow_chaining=False)
        assert without >= with_chaining

    def test_independent_ops_one_chime(self):
        ops = [VectorOp("A", "u1", "v1"), VectorOp("B", "u2", "v2")]
        assert vector.chimes(ops) == 1

    def test_empty_is_zero(self):
        assert vector.chimes([]) == 0


class TestTiming:
    def test_execution_cycles(self):
        assert vector.vector_execution_cycles(64, 3) == 192
        assert vector.vector_execution_cycles(64, 3, startup=12) == 204

    def test_strip_mining(self):
        assert vector.strip_mine_iterations(1000, 64) == 16
        assert vector.strip_mine_iterations(64, 64) == 1
        assert vector.strip_mine_iterations(0, 64) == 0

    def test_lanes_speedup(self):
        assert vector.lanes_speedup(64, 4, 2) == pytest.approx(4.0)

    def test_amdahl(self):
        assert vector.amdahl_speedup(0.8, 16.0) == pytest.approx(4.0)
        assert vector.amdahl_speedup(0.0, 100.0) == 1.0

    @given(st.floats(0.0, 1.0), st.floats(1.0, 1000.0))
    def test_amdahl_bounded_by_serial_fraction(self, fraction, factor):
        value = vector.amdahl_speedup(fraction, factor)
        assert 1.0 - 1e-9 <= value <= factor + 1e-9
        if fraction < 1.0:
            assert value <= 1.0 / (1.0 - fraction) + 1e-9

    def test_roofline(self):
        assert vector.roofline_gflops(100.0, 50.0, 0.5) == 25.0
        assert vector.roofline_gflops(100.0, 50.0, 10.0) == 100.0

    def test_arithmetic_intensity(self):
        assert vector.arithmetic_intensity(200.0, 100.0) == 2.0


class TestHazards:
    def test_classification(self):
        trace = [load("r1"), alu("r2", "r1", "r3"), alu("r3", "r4"),
                 alu("r2", "r5")]
        counts = hazard_counts(trace)
        assert counts == {"RAW": 1, "WAR": 1, "WAW": 1}

    def test_renaming_removes_false_hazards(self):
        trace = [alu("r1", "r2"), alu("r2", "r3"), alu("r1", "r4")]
        assert false_hazards_removed_by_renaming(trace) == 2

    def test_no_hazards_in_independent_code(self):
        trace = [alu("r1"), alu("r2"), alu("r3")]
        assert classify_hazards(trace) == []

    def test_raw_found_across_distance(self):
        trace = [alu("r1"), alu("r9"), alu("r2", "r1")]
        kinds = [h.kind for h in classify_hazards(trace)]
        assert "RAW" in kinds


class TestScoreboard:
    def test_raw_stalls_issue(self):
        board = Scoreboard(latencies={"mul": 4})
        trace = [alu("r1", label="mul"), alu("r2", "r1", label="add")]
        schedule = board.run(trace)
        assert schedule[1][0] > schedule[0][1]  # issue after producer done

    def test_waw_stalls_without_renaming(self):
        board = Scoreboard(latencies={"slow": 5})
        trace = [alu("r1", label="slow"), alu("r1", label="fast")]
        no_rename = board.total_cycles(trace)
        renamed = Scoreboard(latencies={"slow": 5},
                             renaming=True).total_cycles(trace)
        assert renamed < no_rename

    def test_independent_ops_overlap(self):
        board = Scoreboard(latencies={"x": 3})
        trace = [alu("r1", label="x"), alu("r2", label="x")]
        schedule = board.run(trace)
        assert schedule[1][0] == schedule[0][0] + 1

    def test_rob_sizing(self):
        assert rob_entries_needed(4, 20) == 80
        with pytest.raises(ValueError):
            rob_entries_needed(0, 20)
