"""Tests for the evaluation service (:mod:`repro.service`).

Covers the serving stack end-to-end over real HTTP sockets: golden
byte-identity through the ``table2 --service`` driver, offset-resumable
result streaming (including a torn connection mid-stream), mid-run job
cancellation, replica failover under a tripped circuit breaker,
saturation rejection (503, never a hang), and the Prometheus text
exposition shared with ``table2 --metrics-out``.
"""

import hashlib
import json
import re
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.core.faults import TransientModelError
from repro.core.resilience import AdmissionPolicy, CircuitBreaker
from repro.models.providers import create_provider
from repro.service.client import EvalServiceClient, ServiceError
from repro.service.jobs import JobQueue, JobRejected, validate_spec
from repro.service.metrics import render_prometheus
from repro.service.router import ProviderRouter
from repro.service.server import serve

#: Same pin as tests/test_provider_contract.py: sha256 over the sorted
#: checkpoint artifacts of a serial full-zoo ``run_table2``.  A *served*
#: sweep runs the same EvalEngine substrate, so its artifacts must
#: reproduce the digest byte-for-byte.
GOLDEN_TABLE2_DIGEST = (
    "0cc1564958013cfdc74622cfc12c3c559f8660e6ceadd87b606ec64ef7a39f9f")
GOLDEN_TABLE2_FILES = 24


def _digest_run_dir(run_dir) -> str:
    files = sorted(p for p in run_dir.glob("*.jsonl")
                   if p.name != "commits.jsonl")
    combined = hashlib.sha256()
    for path in files:
        combined.update(
            path.name.encode() + b"\0" + path.read_bytes() + b"\0")
    return combined.hexdigest()


@pytest.fixture()
def server(tmp_path):
    srv = serve(queue_workers=2, run_root=tmp_path / "serve")
    yield srv
    srv.shutdown()
    srv.queue.shutdown()


class _Flaky:
    """A replica that fails its first ``fail_times`` calls, then
    delegates — same name/fingerprint as its inner, so it satisfies the
    router's identity check."""

    def __init__(self, inner, fail_times):
        self.inner = inner
        self.fail_times = fail_times
        self.calls = 0

    @property
    def name(self):
        return self.inner.name

    def config_fingerprint(self):
        return self.inner.config_fingerprint()

    def answer_batch(self, questions, setting, resolution_factor=1,
                     use_raster=True):
        self.calls += 1
        if self.calls <= self.fail_times:
            raise TransientModelError("simulated replica outage")
        return self.inner.answer_batch(questions, setting,
                                       resolution_factor,
                                       use_raster=use_raster)


class TestSpecValidation:
    def test_models_required(self):
        with pytest.raises(ValueError, match="non-empty list"):
            validate_spec({"models": []})

    def test_bad_setting_rejected(self):
        with pytest.raises(ValueError, match="setting"):
            validate_spec({"models": ["gpt-4o"], "setting": "sideways"})

    def test_defaults_normalised(self):
        spec = validate_spec({"models": ["gpt-4o"]})
        assert spec["setting"] == "both"
        assert spec["backend"] == "async"
        assert spec["workers"] == 1

    def test_unknown_model_rejected_at_submit(self, tmp_path):
        queue = JobQueue(queue_workers=1, run_root=tmp_path)
        try:
            with pytest.raises(ValueError, match="unknown model"):
                queue.submit({"models": ["made-up-model"]})
        finally:
            queue.shutdown()


class TestServedGoldenIdentity:
    def test_table2_service_reproduces_golden_digest(self, server,
                                                     capsys):
        """The acceptance pin through the third driver: a full-zoo
        sweep submitted via ``table2 --service`` writes server-side
        checkpoints byte-identical to the batch golden digest."""
        assert main(["table2", "--service", server.url,
                     "--backend", "serial"]) == 0
        out = capsys.readouterr().out
        assert "GPT4o" in out and "fuyu-8b" in out
        match = re.search(r"server artifacts in (\S+)", out)
        assert match, out
        from pathlib import Path

        run_dir = Path(match.group(1))
        files = sorted(run_dir.glob("*.jsonl"))
        assert len(files) == GOLDEN_TABLE2_FILES
        assert _digest_run_dir(run_dir) == GOLDEN_TABLE2_DIGEST

    def test_streamed_lines_match_checkpoint_bytes(self, server):
        """The stream IS the artifact: every line a client receives is
        the canonical checkpoint payload, byte-for-byte."""
        client = EvalServiceClient(server.url)
        job_id = client.submit_job({"models": ["gpt-4o", "llava-7b"],
                                    "backend": "serial"})
        lines = client.collect(job_id)
        snapshot = client.job_status(job_id)
        assert snapshot["status"] == "completed"
        assert snapshot["units_done"] == snapshot["units_total"] == 4
        from pathlib import Path

        run_dir = Path(snapshot["run_dir"])
        disk = sorted(p.read_text(encoding="utf-8")
                      for p in run_dir.glob("*.jsonl"))
        assert sorted(lines) == disk

    def test_single_setting_job(self, server):
        client = EvalServiceClient(server.url)
        job_id = client.submit_job({"models": ["kosmos-2"],
                                    "setting": "standard",
                                    "backend": "serial"})
        client.wait(job_id, timeout_s=60)
        snapshot = client.job_status(job_id)
        assert snapshot["units_total"] == 1
        (line,) = client.collect(job_id)
        header = json.loads(line.splitlines()[0])
        assert header["setting"] == "with_choice"
        assert header["model"] == "kosmos-2"


class TestCancellation:
    def _slow_spec(self, models):
        # Real latency per provider call so a cancel lands mid-run.
        return {"models": models, "backend": "serial",
                "latency_s": 0.15}

    def test_cancel_mid_run_stops_at_unit_boundary(self, tmp_path):
        queue = JobQueue(queue_workers=1, run_root=tmp_path)
        try:
            job = queue.submit(self._slow_spec(
                ["gpt-4o", "llava-7b", "kosmos-2"]))
            # wait for the first completed unit, then cancel
            while True:
                lines, _, complete = job.results_since(0)
                if lines or complete:
                    break
                time.sleep(0.01)
            queue.cancel(job.job_id)
            assert job.wait(timeout=60)
            assert job.status == "cancelled"
            assert "cancelled" in (job.error or "")
            # progress was made, but the sweep did not run to the end
            assert 0 < job.units_done < job.units_total
            # refused units are accounted, not silently dropped
            assert job.units_failed > 0
            assert queue.metrics()["jobs_cancelled"] == 1
        finally:
            queue.shutdown()

    def test_cancel_queued_job_never_runs(self, tmp_path):
        queue = JobQueue(queue_workers=1, run_root=tmp_path)
        try:
            blocker = queue.submit(self._slow_spec(["gpt-4o"]))
            queued = queue.submit({"models": ["kosmos-2"],
                                   "backend": "serial"})
            queue.cancel(queued.job_id)
            assert queued.status == "cancelled"
            assert queued.units_done == 0
            queue.cancel(blocker.job_id)
            assert blocker.wait(timeout=60)
        finally:
            queue.shutdown()

    def test_cancel_over_http(self, server):
        client = EvalServiceClient(server.url)
        job_id = client.submit_job(self._slow_spec(
            ["gpt-4o", "llava-7b", "kosmos-2", "fuyu-8b"]))
        stream = client.stream_results(job_id)
        next(stream)  # at least one unit landed
        snapshot = client.cancel(job_id)
        assert snapshot["status"] in ("running", "cancelled")
        final = client.wait(job_id, timeout_s=60)
        assert final["status"] == "cancelled"
        # the stream drains cleanly instead of hanging
        remaining = list(stream)
        assert len(remaining) + 1 < 8


class TestRouterFailover:
    def test_identity_mismatch_rejected(self):
        with pytest.raises(ValueError, match="one provider name"):
            ProviderRouter([create_provider("gpt-4o"),
                            create_provider("kosmos-2")])

    def test_failover_on_mid_call_fault(self, chipvqa):
        healthy = create_provider("gpt-4o")
        flaky = _Flaky(create_provider("gpt-4o"), fail_times=1)
        router = ProviderRouter([flaky, healthy])
        questions = list(chipvqa)[:3]
        answers = router.answer_batch(questions, "with_choice")
        assert len(answers) == 3
        stats = router.stats()
        assert stats["failovers"] == 1
        assert stats["dispatches"] == [1, 1]

    def test_tripped_breaker_ejects_replica(self, chipvqa):
        """Once the flaky replica's circuit opens, traffic routes to
        the healthy replica without even trying the ejected one."""
        healthy = create_provider("gpt-4o")
        flaky = _Flaky(create_provider("gpt-4o"), fail_times=10 ** 9)
        router = ProviderRouter([flaky, healthy], failure_threshold=2)
        questions = list(chipvqa)[:2]
        for _ in range(5):
            router.answer_batch(questions, "with_choice")
        # two failures tripped the breaker; after that the flaky
        # replica's call count stops growing
        assert flaky.calls == 2
        stats = router.stats()
        assert stats["failovers"] == 2
        assert stats["ejections"] >= 3
        assert stats["breaker"]["open"] == ["replica-0"]

    def test_all_ejected_raises_transient(self, chipvqa):
        flaky = _Flaky(create_provider("gpt-4o"), fail_times=10 ** 9)
        breaker = CircuitBreaker(1)
        router = ProviderRouter([flaky], breaker=breaker)
        questions = list(chipvqa)[:1]
        with pytest.raises(TransientModelError):
            router.answer_batch(questions, "with_choice")
        with pytest.raises(TransientModelError, match="ejected"):
            router.answer_batch(questions, "with_choice")

    def test_served_job_with_replicas(self, server):
        """A replicated job still reproduces the canonical bytes —
        routing is invisible in the artifacts."""
        client = EvalServiceClient(server.url)
        solo = client.submit_job({"models": ["kosmos-2"],
                                  "backend": "serial"})
        replicated = client.submit_job({"models": ["kosmos-2"],
                                        "backend": "serial",
                                        "replicas": 3})
        assert sorted(client.collect(solo)) == sorted(
            client.collect(replicated))


class TestClientRetry:
    def test_torn_stream_resumes_from_offset(self, server):
        """A connection reset mid-stream is retried with backoff and
        the offset cursor guarantees no dropped or duplicated lines."""
        real_open = urllib.request.urlopen
        calls = {"n": 0}

        def torn_opener(request, timeout=None):
            calls["n"] += 1
            if calls["n"] == 2:  # tear the first results poll
                raise ConnectionResetError("connection torn mid-read")
            return real_open(request, timeout=timeout)

        client = EvalServiceClient(server.url, opener=torn_opener,
                                   backoff_s=0.01)
        job_id = client.submit_job({"models": ["gpt-4o"],
                                    "backend": "serial"})
        lines = client.collect(job_id)
        assert len(lines) == 2
        assert len(set(lines)) == 2
        assert client.transport_retries == 1

    def test_retries_exhausted_raise_service_error(self):
        def always_torn(request, timeout=None):
            raise ConnectionResetError("nope")

        client = EvalServiceClient("http://127.0.0.1:9", retries=2,
                                   backoff_s=0.0, opener=always_torn)
        with pytest.raises(ServiceError, match="after 3 attempt"):
            client.job_status("whatever")
        assert client.transport_retries == 2

    def test_http_error_is_not_retried(self, server):
        client = EvalServiceClient(server.url)
        with pytest.raises(ServiceError, match="404"):
            client.job_status("no-such-job")
        assert client.transport_retries == 0


class TestSaturation:
    def test_queue_rejects_past_max_pending(self, tmp_path):
        queue = JobQueue(queue_workers=1, run_root=tmp_path,
                         admission=AdmissionPolicy(max_pending=1))
        try:
            blocker = queue.submit({"models": ["gpt-4o"],
                                    "backend": "serial",
                                    "latency_s": 0.2})
            with pytest.raises(JobRejected, match="queue full"):
                queue.submit({"models": ["kosmos-2"]})
            assert queue.metrics()["jobs_rejected"] == 1
            queue.cancel(blocker.job_id)
            assert blocker.wait(timeout=60)
        finally:
            queue.shutdown()

    def test_http_503_raises_job_rejected(self, tmp_path):
        srv = serve(queue_workers=1, run_root=tmp_path,
                    admission=AdmissionPolicy(max_pending=1))
        try:
            client = EvalServiceClient(srv.url)
            blocker = client.submit_job({"models": ["gpt-4o"],
                                         "backend": "serial",
                                         "latency_s": 0.2})
            with pytest.raises(JobRejected, match="queue full"):
                client.submit_job({"models": ["kosmos-2"]})
            client.cancel(blocker)
            client.wait(blocker, timeout_s=60)
        finally:
            srv.shutdown()
            srv.queue.shutdown()

    def test_shutdown_queue_rejects(self, tmp_path):
        queue = JobQueue(queue_workers=1, run_root=tmp_path)
        queue.shutdown()
        with pytest.raises(JobRejected, match="shut down"):
            queue.submit({"models": ["gpt-4o"]})


class TestMetricsEndpoint:
    def test_render_is_deterministic(self):
        kwargs = dict(
            perf_caches={"figure": {"hits": 3, "misses": 1,
                                    "evictions": 0, "size": 2}},
            extra={"jobs_submitted": 2, "jobs_running": 1})
        first = render_prometheus(**kwargs)
        assert first == render_prometheus(**kwargs)
        assert 'repro_cache_hits{cache="figure"} 3' in first
        assert "# TYPE repro_cache_size gauge" in first
        assert "repro_service_jobs_submitted 2" in first
        assert first.endswith("\n")

    def test_empty_render_is_empty(self):
        assert render_prometheus() == ""

    def test_metrics_endpoint_tracks_queue(self, server):
        client = EvalServiceClient(server.url)
        job_id = client.submit_job({"models": ["kosmos-2"],
                                    "backend": "serial"})
        client.wait(job_id, timeout_s=60)
        text = client.metrics()
        assert "repro_service_jobs_submitted 1" in text
        assert "repro_service_jobs_completed 1" in text
        assert "repro_service_units_evaluated 2" in text

    def test_healthz(self, server):
        with urllib.request.urlopen(f"{server.url}/healthz") as response:
            assert response.read() == b"ok\n"

    def test_unknown_route_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{server.url}/nope")
        assert excinfo.value.code == 404


class TestConcurrentJobs:
    def test_parallel_clients_share_the_queue(self, server):
        """Several clients submitting concurrently all complete, and
        consecutive jobs over the same models reuse the shared
        harness's perception caches."""
        client = EvalServiceClient(server.url)
        results = {}
        errors = []

        def one(index):
            try:
                job_id = client.submit_job({"models": ["kosmos-2"],
                                            "backend": "serial"})
                results[index] = sorted(client.collect(job_id))
            except BaseException as exc:  # surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=one, args=(i,))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        assert len(results) == 4
        baseline = results[0]
        assert all(lines == baseline for lines in results.values())
