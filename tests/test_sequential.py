"""Tests for flip-flops, state machines and sequence detectors."""

import pytest
from hypothesis import given, strategies as st

from repro.digital import sequential
from repro.digital.expr import equivalent, parse
from repro.digital.kmap import sop_text
from repro.digital.sequential import (
    StateMachine,
    Transition,
    counter_sequence,
    johnson_counter_states,
    next_state_expression,
    ring_counter_states,
    sequence_detector,
    sr_latch_table,
)


class TestFlipFlops:
    def test_d_ff(self):
        assert sequential.d_ff_next(1, 0) == 1
        assert sequential.d_ff_next(0, 1) == 0

    def test_t_ff_toggles(self):
        assert sequential.t_ff_next(1, 0) == 1
        assert sequential.t_ff_next(1, 1) == 0
        assert sequential.t_ff_next(0, 1) == 1

    def test_jk_modes(self):
        assert sequential.jk_ff_next(0, 0, 1) == 1  # hold
        assert sequential.jk_ff_next(1, 0, 0) == 1  # set
        assert sequential.jk_ff_next(0, 1, 1) == 0  # reset
        assert sequential.jk_ff_next(1, 1, 1) == 0  # toggle

    def test_sr_invalid_is_none(self):
        assert sequential.sr_ff_next(1, 1, 0) is None

    def test_sr_set_reset_hold(self):
        assert sequential.sr_ff_next(1, 0, 0) == 1
        assert sequential.sr_ff_next(0, 1, 1) == 0
        assert sequential.sr_ff_next(0, 0, 1) == 1


class TestNextStateDerivation:
    def test_sr_latch_characteristic(self):
        expr = next_state_expression(["S", "R"], "Q", sr_latch_table())
        assert equivalent(parse(sop_text(expr)), parse("S + R'Q"))

    def test_jk_characteristic(self):
        table = {}
        for j in (0, 1):
            for k in (0, 1):
                for q in (0, 1):
                    table[(j, k, q)] = sequential.jk_ff_next(j, k, q)
        expr = next_state_expression(["J", "K"], "Q", table)
        assert equivalent(parse(sop_text(expr)), parse("JQ' + K'Q"))

    def test_bad_key_length_raises(self):
        with pytest.raises(ValueError):
            next_state_expression(["A"], "Q", {(0, 0, 0): 1})


class TestStateMachine:
    def _toggler(self):
        return StateMachine(
            states=["S0", "S1"], inputs=("t",),
            transitions=[Transition("S0", "t", "S1"),
                         Transition("S1", "t", "S0")],
            initial="S0", moore_outputs={"S0": "0", "S1": "1"})

    def test_run_trace(self):
        machine = self._toggler()
        trace, outputs = machine.run(["t", "t", "t"])
        assert trace == ["S0", "S1", "S0", "S1"]
        assert outputs == ["1", "0", "1"]

    def test_missing_transition_raises(self):
        machine = StateMachine(["S0"], ("a", "b"),
                               [Transition("S0", "a", "S0")], "S0")
        with pytest.raises(ValueError, match="no transition"):
            machine.run(["b"])

    def test_duplicate_transition_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            StateMachine(["S0"], ("a",),
                         [Transition("S0", "a", "S0"),
                          Transition("S0", "a", "S0")], "S0")

    def test_unknown_initial_rejected(self):
        with pytest.raises(ValueError):
            StateMachine(["S0"], ("a",), [], "S9")

    def test_min_flipflops(self):
        machine = StateMachine([f"S{i}" for i in range(6)], ("a",),
                               [], "S0")
        assert machine.min_flipflops() == 3

    def test_state_table_rows(self):
        rows = self._toggler().state_table_rows()
        assert rows == [["S0", "S1"], ["S1", "S0"]]


class TestSequenceDetector:
    def test_detects_pattern(self):
        machine = sequence_detector("101")
        _, outputs = machine.run(list("0101011"))
        assert outputs.count("1") == 2  # at ...101 and overlapping ..101

    def test_overlap_vs_no_overlap(self):
        overlapping = sequence_detector("11", overlapping=True)
        plain = sequence_detector("11", overlapping=False)
        _, out_a = overlapping.run(list("1111"))
        _, out_b = plain.run(list("1111"))
        assert out_a.count("1") == 3
        assert out_b.count("1") == 2

    def test_state_count_equals_pattern_length(self):
        for pattern in ("1", "10", "101", "1101"):
            assert len(sequence_detector(pattern).states) == len(pattern)

    def test_invalid_pattern_rejected(self):
        with pytest.raises(ValueError):
            sequence_detector("abc")

    @given(st.text(alphabet="01", min_size=1, max_size=6),
           st.text(alphabet="01", max_size=40))
    def test_against_naive_scan(self, pattern, stream):
        """The FSM detects exactly the occurrences a string scan finds."""
        machine = sequence_detector(pattern, overlapping=True)
        _, outputs = machine.run(list(stream))
        detected = outputs.count("1")
        expected = sum(
            1 for i in range(len(stream) - len(pattern) + 1)
            if stream[i:i + len(pattern)] == pattern)
        assert detected == expected


class TestCounters:
    def test_up_counter_wraps(self):
        assert counter_sequence(2, 5) == [0, 1, 2, 3, 0, 1]

    def test_down_counter(self):
        assert counter_sequence(2, 2, start=1, down=True) == [1, 0, 3]

    def test_ring_counter_states(self):
        assert ring_counter_states(3) == [1, 2, 4]

    def test_johnson_period_is_2n(self):
        states = johnson_counter_states(4)
        assert len(states) == 8
        assert len(set(states)) == 8  # all distinct

    def test_johnson_returns_to_start(self):
        width = 3
        states = johnson_counter_states(width)
        # next state after the last is the first again
        last = states[-1]
        msb_complement = 1 - ((last >> (width - 1)) & 1)
        nxt = ((last << 1) | msb_complement) & ((1 << width) - 1)
        assert nxt == states[0]
