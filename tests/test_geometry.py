"""Tests and property tests for the planar-geometry primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.physical.geometry import Point, Rect, bounding_box, hpwl, total_hpwl


class TestPoint:
    def test_manhattan(self):
        assert Point(0, 0).manhattan(Point(3, 4)) == 7

    def test_unpack(self):
        x, y = Point(2, 5)
        assert (x, y) == (2, 5)


class TestRect:
    def test_properties(self):
        rect = Rect(1, 2, 3, 4)
        assert rect.x2 == 4 and rect.y2 == 6
        assert rect.area == 12
        assert rect.center == Point(2.5, 4.0)

    def test_negative_dims_rejected(self):
        with pytest.raises(ValueError):
            Rect(0, 0, -1, 1)

    def test_overlap_strict_interior(self):
        a = Rect(0, 0, 2, 2)
        assert a.overlaps(Rect(1, 1, 2, 2))
        assert not a.overlaps(Rect(2, 0, 2, 2))  # shared edge

    def test_spacing(self):
        a = Rect(0, 0, 1, 1)
        assert a.spacing_to(Rect(3, 0, 1, 1)) == 2.0
        assert a.spacing_to(Rect(0.5, 0.5, 1, 1)) == 0.0

    def test_contains_point(self):
        assert Rect(0, 0, 2, 2).contains_point(Point(1, 1))
        assert not Rect(0, 0, 2, 2).contains_point(Point(3, 1))


class TestHpwl:
    def test_single_point(self):
        assert hpwl([Point(5, 5)]) == 0

    def test_rectangle_half_perimeter(self):
        assert hpwl([Point(0, 0), Point(3, 4)]) == 7

    def test_interior_points_free(self):
        base = hpwl([Point(0, 0), Point(4, 4)])
        assert hpwl([Point(0, 0), Point(2, 2), Point(4, 4)]) == base

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_box([])

    def test_total_hpwl(self):
        nets = [[Point(0, 0), Point(1, 1)], [Point(0, 0), Point(2, 0)]]
        assert total_hpwl(nets) == 4


points_strategy = st.lists(
    st.tuples(st.floats(-100, 100), st.floats(-100, 100)),
    min_size=1, max_size=12).map(lambda c: [Point(x, y) for x, y in c])


@given(points_strategy)
def test_hpwl_nonnegative(points):
    assert hpwl(points) >= 0


@given(points_strategy, st.tuples(st.floats(-50, 50), st.floats(-50, 50)))
def test_hpwl_monotone_under_extension(points, extra):
    """Adding a pin can never shrink the bounding box."""
    grown = points + [Point(*extra)]
    assert hpwl(grown) >= hpwl(points) - 1e-9


@given(points_strategy, st.floats(-20, 20), st.floats(-20, 20))
def test_hpwl_translation_invariant(points, dx, dy):
    moved = [Point(p.x + dx, p.y + dy) for p in points]
    assert hpwl(moved) == pytest.approx(hpwl(points), abs=1e-6)


@given(st.floats(0, 10), st.floats(0, 10), st.floats(0.1, 10),
       st.floats(0.1, 10))
def test_rect_spacing_symmetric(x, y, w, h):
    a = Rect(0, 0, 5, 5)
    b = Rect(x, y, w, h)
    assert a.spacing_to(b) == pytest.approx(b.spacing_to(a))
