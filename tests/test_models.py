"""Tests for the simulated VLM substrate: encoder, IRT, phrasing, zoo."""

import pytest
from hypothesis import given, strategies as st

from repro.core.question import (
    AnswerKind,
    AnswerSpec,
    Category,
    VisualContent,
    VisualType,
    make_mc_question,
    make_sa_question,
)
from repro.judge import answers_equivalent
from repro.models import (
    LLAVA_BACKBONE_STUDY,
    NO_CHOICE,
    TABLE2_ROW_ORDER,
    WITH_CHOICE,
    LlmBackbone,
    Projector,
    SimulatedVLM,
    VisualEncoder,
    build_model,
    build_zoo,
    model_names,
    paper_rates,
    quota,
    rate_scaling,
)
from repro.models.encoder import PRIOR_FLOOR
from repro.models.irt import (
    abilities_from_rates,
    aptitude,
    jitter,
    plan_outcomes,
    sigmoid,
)


def _question(qid="m-1", difficulty=0.5, legibility=8.0):
    return make_mc_question(
        qid, Category.DIGITAL, "Pick.",
        VisualContent(VisualType.DIAGRAM, "d", legibility_scale=legibility),
        ("w", "x", "y", "z"), 0, difficulty=difficulty)


class TestEncoder:
    def test_perception_bounded(self):
        encoder = VisualEncoder()
        visual = VisualContent(VisualType.DIAGRAM, "d")
        for factor in (1, 2, 8, 16):
            score = encoder.perceive(visual, factor, use_raster=False)
            assert PRIOR_FLOOR <= score <= 1.0

    def test_degrades_with_factor(self):
        encoder = VisualEncoder()
        visual = VisualContent(VisualType.DIAGRAM, "d", legibility_scale=8.0)
        native = encoder.perceive(visual, 1, use_raster=False)
        degraded = encoder.perceive(visual, 32, use_raster=False)
        assert degraded < native

    def test_intrinsic_factor(self):
        encoder = VisualEncoder(input_resolution=256)
        visual = VisualContent(VisualType.DIAGRAM, "d", width=512,
                               height=384)
        assert encoder.intrinsic_factor(visual) == pytest.approx(2.0)

    def test_tokens_per_image(self):
        encoder = VisualEncoder(input_resolution=336, patch_size=14)
        assert encoder.tokens_per_image == 24 * 24

    def test_quality_bounds(self):
        with pytest.raises(ValueError):
            VisualEncoder(quality=0.0)

    def test_rate_scaling(self):
        assert rate_scaling(1.0) == 1.0
        assert rate_scaling(0.5) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            rate_scaling(1.5)


class TestProjector:
    def test_alignment_scales_perception(self):
        projector = Projector(alignment=0.8)
        assert projector.project(1.0) == pytest.approx(0.8)

    def test_token_budget(self):
        assert Projector(tokens_out=576).token_budget(2) == 1152


class TestIrt:
    def test_sigmoid_symmetry(self):
        assert sigmoid(0.0) == 0.5
        assert sigmoid(3.0) + sigmoid(-3.0) == pytest.approx(1.0)

    def test_jitter_deterministic_and_bounded(self):
        a = jitter("model", "q-1")
        assert a == jitter("model", "q-1")
        assert 0.0 <= a < 0.05
        assert jitter("model", "q-2") != a

    def test_quota(self):
        assert quota(0.49, 35) == 17
        assert quota(0.0, 20) == 0
        assert quota(1.0, 5) == 5

    def test_quota_validation(self):
        with pytest.raises(ValueError):
            quota(1.5, 10)

    def test_aptitude_increases_with_ability(self):
        question = _question()
        low = aptitude("m", 0.1, question, 1.0)
        high = aptitude("m", 0.9, question, 1.0)
        assert high > low

    def test_aptitude_scales_with_perception(self):
        question = _question()
        full = aptitude("m", 0.5, question, 1.0)
        blind = aptitude("m", 0.5, question, 0.1)
        assert blind < full

    def test_plan_outcomes_respects_quota(self):
        questions = [_question(f"m-{i}", difficulty=i / 10) for i in range(10)]
        rates = {Category.DIGITAL: 0.3}
        abilities = abilities_from_rates(rates)
        plan = plan_outcomes("m", abilities, rates, questions,
                             {q.qid: 1.0 for q in questions})
        assert sum(plan.is_correct(q.qid) for q in questions) == 3

    def test_plan_prefers_easier_questions(self):
        questions = [_question(f"m-{i}", difficulty=i / 10) for i in range(10)]
        rates = {Category.DIGITAL: 0.3}
        plan = plan_outcomes("m", abilities_from_rates(rates), rates,
                             questions, {q.qid: 1.0 for q in questions})
        correct = [q.difficulty for q in questions
                   if plan.is_correct(q.qid)]
        wrong = [q.difficulty for q in questions
                 if not plan.is_correct(q.qid)]
        assert max(correct) <= min(wrong) + 0.2  # roughly easiest-first


class TestPhrasing:
    def _backbone(self):
        return LlmBackbone("test-llm", 7.0, 0.5)

    def test_correct_mc_accepted_by_judge(self):
        question = _question()
        response = self._backbone().phrase_correct(question)
        assert answers_equivalent(question, response)

    def test_incorrect_mc_rejected_by_judge(self):
        question = _question()
        response = self._backbone().phrase_incorrect(question)
        assert not answers_equivalent(question, response)

    def test_correct_sa_numeric(self):
        question = make_sa_question(
            "m-sa", Category.PHYSICAL, "How much?",
            VisualContent(VisualType.LAYOUT, "l"),
            AnswerSpec(AnswerKind.NUMERIC, "4.5", unit="um",
                       aliases=("4.5 um",)))
        response = self._backbone().phrase_correct(question)
        assert answers_equivalent(question, response)

    def test_incorrect_sa_numeric_rejected(self):
        question = make_sa_question(
            "m-sa2", Category.PHYSICAL, "How much?",
            VisualContent(VisualType.LAYOUT, "l"),
            AnswerSpec(AnswerKind.NUMERIC, "4.5", unit="um"))
        response = self._backbone().phrase_incorrect(question)
        assert not answers_equivalent(question, response)

    def test_weak_model_refuses_sometimes(self):
        backbone = LlmBackbone("tiny", 1.0, 0.2)
        refusals = sum(
            backbone.refuses(_question(f"m-{i}")) for i in range(200))
        assert 0 < refusals < 60

    def test_strong_model_never_refuses(self):
        backbone = LlmBackbone("big", 100.0, 0.9)
        assert not any(
            backbone.refuses(_question(f"m-{i}")) for i in range(100))


class TestZoo:
    def test_twelve_models(self):
        assert len(model_names()) == 12
        assert len(build_zoo()) == 12

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            build_model("gpt-17")

    def test_gpt4o_leads_open_source(self):
        rates = paper_rates("gpt-4o", WITH_CHOICE)
        for name, _ in TABLE2_ROW_ORDER[:-1]:
            other = paper_rates(name, WITH_CHOICE)
            total = sum(rates.values())
            assert total >= sum(other.values())

    def test_backbone_study_is_ordered_subset(self):
        names = {name for name, _ in TABLE2_ROW_ORDER}
        for name, _ in LLAVA_BACKBONE_STUDY:
            assert name in names

    def test_model_metadata(self):
        model = build_model("paligemma")
        assert model.supports_system_prompt is False
        assert build_model("gpt-4o").supports_system_prompt is True

    def test_plan_matches_calibration(self, chipvqa):
        model = build_model("llava-34b")
        questions = list(chipvqa)
        plan = model.plan(questions, WITH_CHOICE)
        by_cat = {}
        for question in questions:
            by_cat.setdefault(question.category, []).append(
                plan.is_correct(question.qid))
        for category, flags in by_cat.items():
            expected = quota(paper_rates("llava-34b", WITH_CHOICE)[category],
                             len(flags))
            assert sum(flags) == expected

    def test_answers_deterministic(self, chipvqa):
        model = build_model("phi3-vision")
        questions = list(chipvqa)[:20]
        first = [a.text for a in model.answer_all(questions, WITH_CHOICE)]
        second = [a.text for a in model.answer_all(questions, WITH_CHOICE)]
        assert first == second
