"""Watch the agent system solve questions, conversation included.

Reproduces the Section IV-C setup interactively: a text-only GPT-4-Turbo
"chip designer" converses with a GPT-4o vision tool, then answers.  Prints
the full message transcript for a few questions plus the judged outcome.

Run with::

    python examples/agent_vqa_session.py
"""

from repro.agent import ChipDesignerAgent
from repro.core.benchmark import build_chipvqa
from repro.judge import HybridJudge
from repro.models import WITH_CHOICE


def main() -> None:
    benchmark = build_chipvqa()
    agent = ChipDesignerAgent()
    judge = HybridJudge()

    plan = agent.plan(list(benchmark), WITH_CHOICE)

    # one showcase question per discipline
    showcase = ["dig-01", "ana-01", "arc-13", "mfg-01", "phy-20"]
    score = 0
    for qid in showcase:
        question = benchmark.get(qid)
        trace = agent.solve(question, plan)
        verdict = judge.judge(question, trace.answer)
        score += verdict.correct

        print("=" * 72)
        print(f"{qid} ({question.category.value}) "
              f"difficulty={question.difficulty}")
        print("-" * 72)
        print(trace.conversation.render())
        print("-" * 72)
        print(f"gold: {question.gold_text!r}")
        print(f"verdict: {'CORRECT' if verdict.correct else 'WRONG'} "
              f"(judged by {verdict.method})")
        print()

    print(f"showcase score: {score}/{len(showcase)}")
    print("\nThe designer lacks eyes: every question triggered a "
          "describe_image tool call, and quantitative process figures "
          "(Manufacturing) survive that description worst — the paper's "
          "Table III regression.")


if __name__ == "__main__":
    main()
