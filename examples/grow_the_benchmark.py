"""Grow the benchmark — the paper's first future-work item, end to end.

Demonstrates the dataset-collection pipeline on top of the 142-question
seed: authoring a question *from Verilog source* (the digital substrate
parses it and computes the gold), screening near-duplicates, running the
expert-review checklist, and reading the balancing reports that say what
to author next.

Run with::

    python examples/grow_the_benchmark.py
"""

from repro.core.benchmark import build_chipvqa
from repro.core.collection import (
    CollectionPipeline,
    balance_report,
    mc_sa_report,
)
from repro.core.question import (
    AnswerKind,
    Category,
    VisualContent,
    VisualType,
    make_mc_question,
)
from repro.digital.kmap import minimized_expr, sop_text
from repro.digital.verilog import parse_verilog
from repro.visual.resolution import infer_legibility_scale
from repro.visual.schematic import logic_network_scene

AOI_SOURCE = """
// and-or-invert cell
module aoi21 (input a, input b, input c, output y);
  wire ab, s;
  and g1 (ab, a, b);
  or  g2 (s, ab, c);
  not g3 (y, s);
endmodule
"""


def author_from_verilog() -> "tuple":
    """Parse Verilog, compute the minimal gold, draw the figure."""
    module = parse_verilog(AOI_SOURCE)
    netlist = module.netlist
    gold_expr = minimized_expr(list(module.inputs), netlist.minterms("y"))
    gold = sop_text(gold_expr)

    scene = logic_network_scene(
        [("AND", "G1", ["A", "B"]), ("OR", "G2", ["G1", "C"]),
         ("NOT", "Y", ["G2"])], "Y")
    visual = VisualContent(
        VisualType.SCHEMATIC, "AOI21 cell drawn from its Verilog netlist",
        render_spec=("scene", scene),
        legibility_scale=infer_legibility_scale(scene))
    question = make_mc_question(
        "dig-new-aoi21", Category.DIGITAL,
        "The gate network shown implements an AOI21 cell. Which minimal "
        "sum-of-products expression equals its output Y?",
        visual,
        (gold, "AB + C", "(A + B)C'", "A'B' + C'"),
        0, difficulty=0.5, topics=("logic design", "aoi"),
        answer_kind=AnswerKind.BOOLEAN_EXPR)
    return question, gold


def main() -> None:
    seed = build_chipvqa()
    pipeline = CollectionPipeline(seed_corpus=seed)

    question, gold = author_from_verilog()
    print(f"authored from Verilog: {question.qid}, gold = {gold!r}")
    pipeline.submit(question)
    record = pipeline.review(question.qid, reviewer="senior-designer")
    print(f"review: {record.status.value}"
          + (f" — issues: {record.issues}" if record.issues else ""))

    # a sloppy draft: near-duplicate prompt of an existing question
    duplicate = make_mc_question(
        "dig-dup", Category.DIGITAL,
        seed.get("dig-10").prompt + " Explain briefly.",
        question.visual,
        ("A' + B'", "A'B'", "(A + B)'", "A + B"), 0,
        difficulty=0.3, topics=("boolean algebra",))
    pipeline.submit(duplicate)
    record = pipeline.review("dig-dup")
    print(f"duplicate draft: {record.status.value} — {record.issues}")

    print(f"\nacceptance rate so far: {pipeline.acceptance_rate():.0%}")
    print(f"collection size: {len(pipeline.accepted)}")

    print("\nWhat to author next (to 44 questions per discipline):")
    for category, needed in balance_report(pipeline.accepted, 44).items():
        print(f"  {category.value:<22} {needed} more")

    print("\nShort-answer gaps (target 30% SA per discipline):")
    for category, needed in mc_sa_report(pipeline.accepted, 0.3).items():
        print(f"  {category.value:<22} {needed} more SA questions")


if __name__ == "__main__":
    main()
