"""Author new benchmark questions with the domain solvers.

Shows the full authoring loop a benchmark contributor would use:

1. compute a gold answer with a substrate solver (here: the MNA circuit
   solver and the static-timing engine),
2. draw the figure declaratively with the scene builders,
3. assemble a :class:`Question`, bundle it into a :class:`Dataset`,
4. evaluate a model on the custom set and export the figure + JSONL.

Run with::

    python examples/custom_benchmark.py
"""

from pathlib import Path

import numpy as np

from repro.analog.netlist import Circuit
from repro.core.dataset import Dataset
from repro.core.harness import EvaluationHarness
from repro.core.question import (
    AnswerKind,
    AnswerSpec,
    Category,
    VisualContent,
    VisualType,
    make_mc_question,
    make_sa_question,
)
from repro.models import WITH_CHOICE, build_model
from repro.physical.sta import TimingGraph
from repro.visual import render
from repro.visual.resolution import infer_legibility_scale
from repro.visual.schematic import resistor_network_scene
from repro.visual.table import table_scene


def save_pgm(path: Path, image: np.ndarray) -> None:
    """Write a grayscale image as a portable graymap (no deps needed)."""
    height, width = image.shape
    with open(path, "wb") as f:
        f.write(f"P5 {width} {height} 255\n".encode("ascii"))
        f.write(image.tobytes())


def bridge_question():
    """An MC question whose gold comes from a live MNA solve."""
    circuit = Circuit()
    circuit.vsource("vs", "top", 0, 9.0)
    circuit.resistor("r1", "top", "m", 1000.0)
    circuit.resistor("r2", "m", 0, 2000.0)
    circuit.resistor("r3", "top", "n", 2000.0)
    circuit.resistor("r4", "n", 0, 1000.0)
    circuit.resistor("bridge", "m", "n", 500.0)
    v_bridge = circuit.solve().voltage_across("m", "n")
    gold = f"{v_bridge:.2f} V"

    scene = resistor_network_scene(
        [("R1", "1K"), ("R2", "2K"), ("R3", "2K"), ("R4", "1K"),
         ("RB", "500")], source_label="9V")
    visual = VisualContent(
        VisualType.SCHEMATIC, "Unbalanced bridge with a 500 Ohm detector",
        render_spec=("scene", scene),
        legibility_scale=infer_legibility_scale(scene))
    return make_mc_question(
        "custom-01", Category.ANALOG,
        "The unbalanced bridge shown is driven from 9 V. What voltage "
        "appears across the 500 Ohm bridge resistor?",
        visual,
        (gold, "0.00 V", f"{v_bridge * 2:.2f} V", "4.50 V"),
        0, difficulty=0.7, topics=("bridges",),
        answer_kind=AnswerKind.NUMERIC, unit="V")


def timing_question():
    """A short-answer question whose gold comes from the STA engine."""
    graph = TimingGraph()
    graph.arc("FF/Q", "u1", 0.8).arc("u1", "u2", 1.2)
    graph.arc("u2", "u3", 0.9).arc("u3", "FF2/D", 0.6)
    period = graph.min_clock_period(setup_time=0.2, clk_to_q=0.3)

    scene = table_scene(
        [["ARC", "NS"], ["FF/Q-U1", "0.8"], ["U1-U2", "1.2"],
         ["U2-U3", "0.9"], ["U3-FF2/D", "0.6"], ["CLK-Q/SETUP", "0.3/0.2"]])
    visual = VisualContent(
        VisualType.TABLE, "Delay table of a register-to-register path",
        render_spec=("scene", scene),
        legibility_scale=infer_legibility_scale(scene))
    answer = AnswerSpec(AnswerKind.NUMERIC, f"{period:.1f}", unit="ns",
                        aliases=(f"{period:.1f} ns",))
    return make_sa_question(
        "custom-02", Category.PHYSICAL,
        "Using the delays tabulated, what is the minimum clock period of "
        "this path (clock-to-Q plus logic plus setup)?",
        visual, answer, difficulty=0.6, topics=("timing",))


def main() -> None:
    out_dir = Path("examples/output")
    out_dir.mkdir(exist_ok=True)

    questions = [bridge_question(), timing_question()]
    custom = Dataset(questions, name="custom-chipvqa-extension")
    custom.save(out_dir / "custom_questions.jsonl")
    print(f"authored {len(custom)} questions "
          f"-> {out_dir / 'custom_questions.jsonl'}")

    for question in custom:
        image = render(question.visual)
        path = out_dir / f"{question.qid}.pgm"
        save_pgm(path, image)
        print(f"  {question.qid}: gold={question.gold_text!r}, "
              f"figure -> {path}")

    # evaluate a zoo model on the custom set (quota calibration applies
    # per category, so tiny sets just exercise the plumbing)
    harness = EvaluationHarness()
    result = harness.evaluate(build_model("gpt-4o"), custom, WITH_CHOICE)
    print(f"\ngpt-4o on the custom set: "
          f"{result.correct_count()}/{len(result)} correct")


if __name__ == "__main__":
    main()
