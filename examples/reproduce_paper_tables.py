"""Reproduce every table and study in the paper in one run.

Regenerates Table I (statistics), Table II (12-model zero-shot sweep),
Table III (agent system), the Section IV-B resolution study, and the
Section IV-A backbone study.  Takes a minute or two.

Run with::

    python examples/reproduce_paper_tables.py
"""

from repro import EvaluationHarness, build_chipvqa, build_model, build_zoo
from repro.agent import run_table3
from repro.core.harness import run_table2
from repro.core.metrics import spearman_rank_correlation
from repro.core.report import (
    render_composition,
    render_resolution_study,
    render_table1,
    render_table2,
    render_table3,
)
from repro.models import LLAVA_BACKBONE_STUDY
from repro.models.zoo import TABLE2_ROW_ORDER


def main() -> None:
    benchmark = build_chipvqa()
    harness = EvaluationHarness()

    print(render_table1(benchmark))
    print()
    print(render_composition(benchmark))
    print()

    print("Running the 12-model sweep (Table II)...")
    table2 = run_table2(build_zoo(), harness)
    print(render_table2(table2, dict(TABLE2_ROW_ORDER)))
    print()

    print("Running the agent comparison (Table III)...")
    table3 = run_table3()
    print(render_table3(table3["gpt4o"], table3["agent"]))
    print()

    print("Running the resolution study (Section IV-B)...")
    study = harness.resolution_study(build_model("gpt-4o"))
    print(render_resolution_study(study))
    print()

    print("LLaVA backbone study (Section IV-A)")
    abilities, scores = [], []
    for name, backbone in LLAVA_BACKBONE_STUDY:
        model = build_model(name)
        score = harness.zero_shot_challenge(model).pass_at_1()
        abilities.append(model.backbone.text_ability)
        scores.append(score)
        print(f"  {name:<16} backbone={backbone:<20} "
              f"text-ability={model.backbone.text_ability:.2f} "
              f"SA-pass@1={score:.2f}")
    rho = spearman_rank_correlation(abilities, scores)
    print(f"  Spearman rho(text ability, score) = {rho:.2f}")


if __name__ == "__main__":
    main()
