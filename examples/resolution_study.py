"""The Section IV-B resolution study, with the image pipeline made visible.

Downsamples actual rendered figures 8x and 16x, prints the measured ink
retention per factor, and re-runs the Digital evaluation to show where the
pass rate breaks (paper: 0.49 / 0.49 / 0.37).  Also exports a side-by-side
PGM of one figure at each resolution so the degradation can be eyeballed.

Run with::

    python examples/resolution_study.py
"""

from pathlib import Path

import numpy as np

from repro.core.benchmark import build_chipvqa
from repro.core.harness import EvaluationHarness
from repro.core.question import Category
from repro.core.report import render_resolution_study
from repro.models import build_model
from repro.visual import downsample, legibility_score, render
from repro.visual.resolution import upsample_nearest


def save_pgm(path: Path, image: np.ndarray) -> None:
    height, width = image.shape
    with open(path, "wb") as f:
        f.write(f"P5 {width} {height} 255\n".encode("ascii"))
        f.write(image.tobytes())


def main() -> None:
    benchmark = build_chipvqa()
    digital = benchmark.by_category(Category.DIGITAL)

    print("Per-factor mean ink retention over the Digital figures:")
    for factor in (1, 2, 4, 8, 16):
        scores = [legibility_score(render(q.visual), factor)
                  for q in digital]
        bar = "#" * int(40 * sum(scores) / len(scores))
        print(f"  {factor:>2}x  {sum(scores) / len(scores):5.3f}  {bar}")

    out_dir = Path("examples/output")
    out_dir.mkdir(exist_ok=True)
    sample = benchmark.get("dig-18")  # the state-table figure
    native = render(sample.visual)
    panels = [native]
    for factor in (8, 16):
        reduced = downsample(native, factor)
        restored = upsample_nearest(reduced, factor)
        panels.append(restored[: native.shape[0], : native.shape[1]])
    strip = np.concatenate(panels, axis=1)
    save_pgm(out_dir / "dig-18_resolutions.pgm", strip)
    print(f"\nside-by-side (native | 8x | 16x) -> "
          f"{out_dir / 'dig-18_resolutions.pgm'}")

    print("\nRe-running GPT-4o on Digital at each resolution...")
    harness = EvaluationHarness()
    study = harness.resolution_study(build_model("gpt-4o"),
                                     factors=(1, 8, 16))
    print(render_resolution_study(study))
    print("Paper: 0.49 at native and 8x, 0.37 at 16x.")


if __name__ == "__main__":
    main()
