"""Quickstart: build ChipVQA and evaluate one model end to end.

Run with::

    python examples/quickstart.py
"""

from repro import EvaluationHarness, build_chipvqa, build_model
from repro.core.report import CATEGORY_ORDER


def main() -> None:
    # 1. Build the 142-question benchmark (validated against Table I).
    benchmark = build_chipvqa()
    print(f"ChipVQA: {len(benchmark)} questions, "
          f"{benchmark.visual_component_total()} visual components")

    # 2. Pick a model from the zoo (the twelve VLMs of Table II).
    model = build_model("gpt-4o")
    print(f"Evaluating {model.name} "
          f"(backbone: {model.backbone.name}, "
          f"encoder: {model.encoder.input_resolution}px)")

    # 3. Zero-shot evaluation with the hybrid judge.
    harness = EvaluationHarness()
    result = harness.zero_shot_standard(model)

    # 4. Report pass@1, the paper's metric.
    print(f"\npass@1 (with choices): {result.pass_at_1():.2f}")
    for category in CATEGORY_ORDER:
        rate = result.pass_at_1_by_category()[category]
        correct, total = result.category_counts()[category]
        print(f"  {category.value:<22} {rate:.2f}  ({correct}/{total})")

    # 5. The challenge collection: options removed.
    challenge = harness.zero_shot_challenge(model)
    print(f"\npass@1 (challenge, no choices): {challenge.pass_at_1():.2f}")
    print("Expected from Table II: 0.44 with choices, 0.20 without.")


if __name__ == "__main__":
    main()
