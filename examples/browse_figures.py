"""Export browsable contact sheets and question cards for the benchmark.

Writes one contact sheet per discipline (all its figures, thumbnailed and
labelled) plus full question cards for the paper's five Fig.-3-style
samples — the quickest way to eyeball the rendered dataset.

Run with::

    python examples/browse_figures.py
"""

from pathlib import Path

from repro.core.benchmark import build_chipvqa
from repro.core.question import Category
from repro.visual.export import contact_sheet, render_question_card, save_pgm


def main() -> None:
    out_dir = Path("examples/output")
    out_dir.mkdir(exist_ok=True)
    benchmark = build_chipvqa()

    for category in Category:
        subset = list(benchmark.by_category(category))
        sheet = contact_sheet(subset, columns=6, thumb_width=150)
        name = category.short.lower()
        path = save_pgm(out_dir / f"sheet_{name}.pgm", sheet)
        print(f"{category.value:<22} {len(subset):>3} figures "
              f"-> {path} ({sheet.shape[1]}x{sheet.shape[0]})")

    samples = ["dig-18", "ana-01", "arc-01", "mfg-01", "phy-01"]
    for qid in samples:
        question = benchmark.get(qid)
        card = render_question_card(question)
        path = save_pgm(out_dir / f"card_{qid}.pgm", card)
        print(f"question card {qid} -> {path}")
    print("\nView PGM files with any image viewer "
          "(e.g. `convert sheet_digital.pgm sheet_digital.png`).")


if __name__ == "__main__":
    main()
