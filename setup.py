"""Setup shim for environments whose setuptools predates PEP 660 editable
installs; configuration lives in pyproject.toml."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy", "networkx"],
    python_requires=">=3.9",
    entry_points={"console_scripts": ["chipvqa-repro=repro.cli:main"]},
)
