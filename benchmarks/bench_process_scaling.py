"""E16 — Process-backend scaling: the CPU-bound Table II sweep, thread
pool vs. process pool.

``bench_runner_scaling.py`` measures the API-bound regime, where thread
workers overlap provider latency and win.  This bench measures the
opposite regime: a :class:`~repro.core.faults.BusyBoundary` burns CPU
inside every question (sha256 chains over tiny buffers, which hold the
GIL), so thread workers serialize behind the interpreter lock while
process workers spread across cores.  Shape pinned: at 8 workers the
process backend beats the thread backend by >= 2x on the full 12-model
x 2-setting sweep, with identical published numbers (run with ``-s`` to
see the table).

Both tests need real cores; they skip on machines with fewer than four.
"""

import os
import time

import pytest

from repro.core.executor import create_backend
from repro.core.faults import BusyBoundary
from repro.core.harness import run_table2
from repro.core.runner import ParallelRunner
from repro.models import WITH_CHOICE, build_zoo

#: sha256 chain length per question — roughly half a millisecond of
#: GIL-holding CPU work, standing in for local decode/scoring compute.
SPINS = 800

FEW_CORES = (os.cpu_count() or 1) < 4


def _timed_sweep(models, backend, workers, spins=SPINS):
    runner = ParallelRunner(
        workers=workers,
        backend=create_backend(backend, workers),
        fault_boundary=BusyBoundary(spins=spins))
    start = time.perf_counter()
    results = run_table2(models, runner=runner)
    return time.perf_counter() - start, results


def test_process_backend_parity():
    """Smoke (any machine): the process backend reproduces the thread
    backend's numbers exactly on a compute-laden sub-sweep."""
    models = build_zoo()[:2]
    _, thread = _timed_sweep(models, "thread", workers=2, spins=50)
    _, process = _timed_sweep(models, "process", workers=2, spins=50)
    for name, settings in thread.items():
        for setting, result in settings.items():
            assert process[name][setting].pass_at_1() == \
                result.pass_at_1()


@pytest.mark.slow
@pytest.mark.skipif(FEW_CORES, reason="needs >= 4 CPU cores to show "
                    "process-over-thread scaling")
def test_process_beats_thread_on_cpu_bound_sweep():
    """Acceptance: >= 2x throughput over the thread backend at 8
    workers on the CPU-bound full-zoo sweep, same numbers."""
    zoo = build_zoo()
    thread_s, thread = _timed_sweep(zoo, "thread", workers=8)
    process_s, process = _timed_sweep(zoo, "process", workers=8)

    print(f"\nTable II sweep under {SPINS} sha256 spins/question of "
          f"GIL-holding CPU work ({os.cpu_count()} cores)")
    for label, elapsed in (("thread x8", thread_s),
                           ("process x8", process_s)):
        print(f"  {label:<11} {elapsed:6.2f} s   "
              f"throughput {thread_s / elapsed:4.1f}x threads")

    assert thread_s / process_s >= 2.0
    for name, settings in thread.items():
        for setting, result in settings.items():
            assert process[name][setting].pass_at_1() == \
                result.pass_at_1()


@pytest.mark.slow
@pytest.mark.skipif(FEW_CORES, reason="needs >= 4 CPU cores to show "
                    "process-over-thread scaling")
def test_process_scaling_is_monotone():
    """More process workers keep helping through 8 on the CPU-bound
    sweep (no fork/IPC collapse past the knee)."""
    models = build_zoo()[:6]
    timings = {
        workers: _timed_sweep(models, "process", workers)[0]
        for workers in (1, 4, 8)
    }
    print("\n" + "  ".join(f"w{w}={t:.2f}s" for w, t in timings.items()))
    assert timings[4] < timings[1]
    assert timings[8] <= timings[4] * 1.2
    assert timings[1] / timings[8] >= 2.0


def test_warm_fork_inherits_caches():
    """Forked workers inherit the parent's warm perception caches: a
    pre-warmed process sweep never redoes perception work, so it costs
    no more than a freshly-warmed thread sweep (any machine)."""
    models = build_zoo()[:2]
    warm_s, _ = _timed_sweep(models, "thread", workers=2, spins=0)
    fork_s, _ = _timed_sweep(models, "process", workers=2, spins=0)
    print(f"\nwarm thread {warm_s:.2f} s vs warm fork {fork_s:.2f} s")
    # generous bound: fork setup + result IPC must stay a small constant
    assert fork_s < warm_s + 5.0
