"""E20 — Pipelined sweeps: overlapped shard prefetch and the
serialize-once byte path (``repro.core.pipeline``, ``docs/PERF.md``).

The workload models the regime the paper's sweeps actually ran in:
shard *building* is local CPU (procedural generation plus the disk-tier
spill write that makes restarts warm), while *evaluation* waits on a
remote endpoint.  The endpoint is a
:class:`~repro.models.providers.RemoteStubProvider` around a zero-CPU
gold-echo model, with per-call latency **calibrated at runtime** from
two probes — per-shard build cost and the consumer's own per-shard CPU
— so the sweep lands in the balanced ``build ~= eval`` regime where
pipelining pays, on fast and slow machines alike.

Shapes pinned (slow; the non-slow smoke checks identity + artifact):

* **prefetch >= 2 gives >= 1.8x serial** on a ~10k-question sweep
  (multi-core hosts; one-core hosts pin 85% of their measured overlap
  ceiling — see the slow test's docstring): the serial loop's
  per-shard ``build + eval`` collapses to ``max(build, eval)``, with
  the builders additionally warming each question's digest memo so the
  runner's cache-key serialisation rides in the overlapped stage too.
* **serialize-once >= 30% less serialization time** — the legacy byte
  path encoded every result twice (checkpoint, then the store/stream
  copy); the serialize-once path encodes exactly once and carries
  bytes + digest.  The bench replays the second encode over the run's
  actual checkpoints and pins the saving.

Every run writes ``BENCH_sweep_pipeline.json`` at the repo root:
throughput, per-stage times (from :func:`repro.core.perfstats.
stage_snapshot` deltas), and the speedup — the artifact the CI bench
step uploads.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.core import databuild, perfstats, results_io
from repro.core.sweep import run_scaled_table2

from repro.models.providers import RemoteStubProvider, register_provider
from repro.models.vlm import ModelAnswer

ARTIFACT = Path(__file__).resolve().parent.parent \
    / "BENCH_sweep_pipeline.json"

SEED = 23
#: Smoke-sweep size: five canonical cycles, one cycle per shard.
SMOKE_N, SMOKE_SHARD = 5 * 142, 142
#: Pinned-shape size: ~10k questions in thirty-five 2-cycle shards —
#: enough shards that the un-overlappable first build amortises away.
SCALE_N, SCALE_SHARD = 70 * 142, 284


@pytest.fixture(autouse=True)
def _pristine_provider_registry():
    from repro.models.providers import default_registry

    before = dict(default_registry._factories)
    yield
    default_registry._factories.clear()
    default_registry._factories.update(before)


class _GoldEcho:
    """A zero-CPU stand-in for a remote endpoint: echoes the gold
    answer, so client-side model cost is nil and eval time is the
    stub's latency plus the harness's own judge/bookkeeping work."""

    name = "bench-pipe"

    def answer_all(self, questions, setting, *args, **kwargs):
        return [ModelAnswer(qid=q.qid, text=q.answer.text,
                            planned_correct=True, perception=1.0,
                            prompt=None)
                for q in questions]


def _calibrate(total: int, shard_size: int, base: Path) -> dict:
    """Derive the stub latency that balances the pipeline's two sides.

    One four-shard zero-latency pilot sweep measures both sides at
    once: its ``build_wait`` stage time is the true in-sweep per-shard
    build cost (generation + spill write), and the wall time beyond
    that is the consumer's own per-shard CPU (judge, cache keys,
    serialize-once, commit).  A second probe times the per-shard
    question-digest warm, which the prefetcher performs on the builder
    side while the serial loop pays it at eval.

    The calibrated latency is ``build + digest_warm`` — the builder
    side's whole per-shard budget.  In steady state the builders can
    hide at most their own work per consumed shard (with one core
    that bound is exact: the pipelined floor is the sweep's total CPU),
    so this is the largest eval wait prefetching can fully absorb;
    past it the builders idle, short of it some build cost stays
    exposed.
    """
    databuild.canonical_cycle()  # warm the canonical build once

    _register_endpoint(0.0)
    perfstats.reset()
    databuild._SHARD_CACHE.clear()
    pilot_shards = 4
    start = time.perf_counter()
    run_scaled_table2([_GoldEcho.name],
                      total=pilot_shards * shard_size, seed=SEED,
                      samples=1, shard_size=shard_size,
                      include_challenge=False,
                      run_dir=base / "pilot",
                      spill_dir=base / "pilot-cache")
    pilot_s = (time.perf_counter() - start) / pilot_shards
    stages = perfstats.stage_snapshot()
    build_s = stages.get("build_wait_ns", 0) / 1e9 / pilot_shards
    consumer_s = max(0.0, pilot_s - build_s)

    from repro.core.runcache import question_digest

    databuild._SHARD_CACHE.clear()
    shard = databuild.shard_dataset(total, SEED, shard_size, 0)
    start = time.perf_counter()
    for question in shard:
        question_digest(question)
    digest_s = time.perf_counter() - start
    databuild._SHARD_CACHE.clear()

    latency_s = build_s + digest_s
    return {"build_s": build_s, "consumer_s": consumer_s,
            "digest_warm_s": digest_s, "latency_s": latency_s}


def _cores() -> int:
    """CPUs actually available to this process (affinity-aware)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _register_endpoint(latency_s: float) -> str:
    register_provider(
        _GoldEcho.name,
        lambda: RemoteStubProvider(_GoldEcho(),
                                   base_latency_s=latency_s),
        replace=True)
    return _GoldEcho.name


def _timed_sweep(model: str, total: int, shard_size: int, base: Path,
                 prefetch: int, builder: str, tag: str = "") -> dict:
    """One cold sweep; returns wall time, stage deltas, and summary.

    ``tag`` keeps repeated attempts on fresh run and spill directories —
    reusing them would resume from checkpoints / build from a warm disk
    tier instead of measuring a cold sweep.
    """
    perfstats.reset()
    databuild._SHARD_CACHE.clear()
    run_dir = base / f"run-p{prefetch}{tag}"
    start = time.perf_counter()
    report = run_scaled_table2([model], total=total, seed=SEED,
                               samples=1, shard_size=shard_size,
                               include_challenge=False,
                               run_dir=run_dir,
                               spill_dir=base / f"cache-p{prefetch}{tag}",
                               prefetch=prefetch,
                               prefetch_builder=builder)
    wall_s = time.perf_counter() - start
    stages = perfstats.stage_snapshot()
    summary = results_io.write_summary(
        run_dir / "sweep_summary.json", report.passk_summary(ks=(1,)))
    return {
        "wall_s": wall_s,
        "throughput_qps": total / wall_s,
        "stage_seconds": {
            name: round(stages.get(f"{name}_ns", 0) / 1e9, 4)
            for name in perfstats.PIPELINE_STAGES
            if f"{name}_calls" in stages
        },
        "run_dir": run_dir,
        "summary_path": summary,
    }


def _second_encode_seconds(run_dir: Path) -> float:
    """Replay the legacy byte path's *extra* serialization: re-encode
    every checkpointed result once more, exactly as the pre-pipeline
    store/stream copies did."""
    results = [results_io.loads(path.read_text())
               for path in sorted(run_dir.glob("*__*.jsonl"))]
    assert results
    start = time.perf_counter()
    for result in results:
        results_io.dumps(result, telemetry=False)
    return time.perf_counter() - start


def _run_shape(total: int, shard_size: int, tmp_path: Path,
               prefetch: int, builder: str, repeats: int = 1) -> dict:
    """Calibrate, then time serial vs prefetched sweeps.

    With ``repeats > 1`` each side runs that many times (alternating,
    so slow-neighbour noise hits both sides alike) and the best wall
    time per side is kept — the timeit convention: external load only
    ever *adds* time, so the minimum is the closest observation of the
    code's own cost.  Byte-identity is asserted across every run.
    """
    probe = _calibrate(total, shard_size, tmp_path)
    model = _register_endpoint(probe["latency_s"])

    serial = piped = None
    for attempt in range(max(1, repeats)):
        serial_try = _timed_sweep(model, total, shard_size, tmp_path,
                                  prefetch=0, builder="thread",
                                  tag=f"-t{attempt}")
        piped_try = _timed_sweep(model, total, shard_size, tmp_path,
                                 prefetch=prefetch, builder=builder,
                                 tag=f"-t{attempt}")
        assert (piped_try["summary_path"].read_bytes()
                == serial_try["summary_path"].read_bytes())
        if serial is None or serial_try["wall_s"] < serial["wall_s"]:
            serial = serial_try
        if piped is None or piped_try["wall_s"] < piped["wall_s"]:
            piped = piped_try

    # Serialization accounting comes from the *serial* run: stage
    # timers record wall time, and in the prefetched run consumer-side
    # stages are dilated by builder-thread timeslices (work that is
    # concurrently useful, but charged to whichever stage holds the
    # timer), which would overstate the serialize cost.
    once_s = serial["stage_seconds"]["serialize"]
    extra_s = _second_encode_seconds(piped["run_dir"])
    serialize_reduction = extra_s / (once_s + extra_s)

    # One-core ceiling: the pipelined floor is the sweep's total CPU
    # (build + consumer per shard), and the hideable eval wait is the
    # builder side's own budget — so the best any overlap can do is
    # 1 + hidden/total.  Multi-core hosts (process builders) are not
    # bound by this; the artifact records it for the regression trail.
    single_core_cap = 1.0 + ((probe["build_s"] + probe["digest_warm_s"])
                             / (probe["build_s"] + probe["consumer_s"]))

    payload = {
        "total_questions": total,
        "shard_size": shard_size,
        "prefetch": prefetch,
        "prefetch_builder": builder,
        "cpu_cores": _cores(),
        "single_core_cap": round(single_core_cap, 3),
        "calibration": {k: round(v, 4) for k, v in probe.items()},
        "serial": {
            "wall_s": round(serial["wall_s"], 4),
            "throughput_qps": round(serial["throughput_qps"], 1),
            "stage_seconds": serial["stage_seconds"],
        },
        "prefetched": {
            "wall_s": round(piped["wall_s"], 4),
            "throughput_qps": round(piped["throughput_qps"], 1),
            "stage_seconds": piped["stage_seconds"],
        },
        "speedup": round(serial["wall_s"] / piped["wall_s"], 3),
        "serialize_once_s": round(once_s, 4),
        "legacy_second_encode_s": round(extra_s, 4),
        "serialize_reduction": round(serialize_reduction, 3),
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"\n{total}-question sweep "
          f"(build {probe['build_s'] * 1e3:5.1f} ms/shard, "
          f"consumer {probe['consumer_s'] * 1e3:5.1f} ms/shard, "
          f"stub latency {probe['latency_s'] * 1e3:5.1f} ms): "
          f"serial {serial['wall_s']:6.2f} s "
          f"({serial['throughput_qps']:6.0f} q/s)   "
          f"prefetch={prefetch}/{builder} {piped['wall_s']:6.2f} s "
          f"({piped['throughput_qps']:6.0f} q/s)   "
          f"speedup {payload['speedup']:.2f}x")
    print(f"build_wait serial "
          f"{serial['stage_seconds']['build_wait']:6.2f} s -> "
          f"prefetch {piped['stage_seconds']['build_wait']:6.2f} s   "
          f"serialize once {once_s * 1e3:6.1f} ms vs legacy extra "
          f"{extra_s * 1e3:6.1f} ms (saves "
          f"{serialize_reduction:.0%})   -> {ARTIFACT.name}")
    return payload


def test_smoke_pipeline_identity_and_artifact(tmp_path):
    """Smoke (any machine): prefetch=2 and serial produce byte-identical
    artifacts, the stage ledger shows the overlap, and the bench
    artifact lands; no wall-clock floor is pinned at this size.  Thread
    builders keep the smoke free of pool-spawn noise; the slow shape
    covers the process pool."""
    payload = _run_shape(SMOKE_N, SMOKE_SHARD, tmp_path,
                         prefetch=2, builder="thread")
    assert ARTIFACT.exists()
    assert payload["speedup"] > 0
    for side in ("serial", "prefetched"):
        stages = payload[side]["stage_seconds"]
        assert set(stages) >= {"build_wait", "eval", "serialize",
                               "commit"}
    # the prefetched run waits on builds strictly less than the serial
    # run charges for building them
    assert (payload["prefetched"]["stage_seconds"]["build_wait"]
            < payload["serial"]["stage_seconds"]["build_wait"])
    assert payload["serialize_reduction"] >= 0.30


@pytest.mark.slow
def test_prefetch_speedup_at_least_1_8x_on_10k_sweep(tmp_path):
    """Acceptance (E20): prefetch >= 2 gives >= 1.8x serial wall-clock
    on a ~10k-question sweep with eval latency calibrated against build
    cost, and the serialize-once path saves >= 30% of serialization
    time.

    The builder pool is chosen for the host: with >= 2 cores the
    process pool runs build CPU truly in parallel with the evaluating
    consumer and the full 1.8x target is pinned.  On a one-core host no
    overlap design can beat ``1 + hidden/total_cpu`` (the pipelined
    floor is the sweep's total CPU; the hideable wait is the builder
    side's own budget — with the measured build:consumer ratio that cap
    sits around 1.8), so the pin there is 85% of the host's *measured*
    cap: the pipeline must realize the physics it has, and a regression
    in overlap or in the serialize-once path still fails the test.
    (The idle-window phased scheduler measures ~90% of cap on this
    shape; the 85% pin leaves headroom for run-to-run machine noise
    while still failing the un-phased scheduler, which peaks ~77%.)
    """
    multi_core = _cores() >= 2
    payload = _run_shape(SCALE_N, SCALE_SHARD, tmp_path,
                         prefetch=2,
                         builder="process" if multi_core else "thread",
                         repeats=2)
    target = 1.8 if multi_core \
        else min(1.8, 0.85 * payload["single_core_cap"])
    assert payload["speedup"] >= target, (
        f"speedup {payload['speedup']} below target {target:.3f} "
        f"(cores={payload['cpu_cores']}, "
        f"single-core cap {payload['single_core_cap']})")
    assert payload["serialize_reduction"] >= 0.30
