"""Load benchmark for the evaluation service (docs/SERVICE.md).

An open-loop load generator drives a real in-process
``eval-serve`` instance over HTTP sockets: job arrivals follow a
seeded Poisson process (exponential inter-arrival times) dispatched by
at least eight concurrent client threads — open-loop, so arrivals do
NOT slow down when the service does, which is what exposes queueing
behaviour that closed-loop (request-response-request) loops hide.

Two shapes are pinned:

* **throughput + latency distribution** — a paced arrival stream over
  a 2-worker queue completes every job; the bench reports offered and
  achieved QPS and p50/p95/p99 job turnaround (submit -> terminal
  status) from the client's perspective;
* **graceful saturation** — arrivals far past capacity against a
  ``max_pending=2`` queue are *rejected fast* with a 503-style
  :class:`~repro.service.jobs.JobRejected` (the admission seam), never
  queued into an unbounded hang: rejections must come back orders of
  magnitude faster than an evaluation takes, and accepted jobs still
  all complete.

Latency knobs are simulated (``latency_s`` rides on
:class:`~repro.models.providers.RemoteStubProvider`), so the bench
measures scheduling/admission policy, not model compute.
"""

import random
import statistics
import threading
import time

import pytest

from repro.core.resilience import AdmissionPolicy
from repro.service.client import EvalServiceClient
from repro.service.jobs import JobRejected
from repro.service.server import serve

#: Concurrent client threads in the load generator (the acceptance
#: floor is eight).
CLIENTS = 8

#: Jobs per load phase.
JOBS = 16

#: Seed for the Poisson arrival process — identical arrival timelines
#: across runs.
SEED = 20260809


def _percentiles(samples):
    ordered = sorted(samples)

    def pct(p):
        index = min(len(ordered) - 1,
                    max(0, round(p / 100 * (len(ordered) - 1))))
        return ordered[index]

    return pct(50), pct(95), pct(99)


class _LoadGenerator:
    """Open-loop Poisson arrivals fanned over a client-thread pool."""

    def __init__(self, url, rate_per_s, jobs=JOBS, clients=CLIENTS,
                 spec=None, seed=SEED):
        self.url = url
        self.rate = rate_per_s
        self.jobs = jobs
        self.clients = clients
        self.spec = spec or {"models": ["kosmos-2"], "backend": "serial"}
        self.rng = random.Random(seed)
        self.latencies = []
        self.rejections = []
        self.rejection_times = []
        self.errors = []
        self._lock = threading.Lock()
        self._work = []

    def _client_loop(self, index):
        client = EvalServiceClient(self.url)
        while True:
            with self._lock:
                if not self._work:
                    return
                fire_at = self._work.pop(0)
            delay = fire_at - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            start = time.perf_counter()
            try:
                job_id = client.submit_job(dict(self.spec))
                client.wait(job_id, timeout_s=120)
                with self._lock:
                    self.latencies.append(time.perf_counter() - start)
            except JobRejected as exc:
                with self._lock:
                    self.rejections.append(str(exc))
                    self.rejection_times.append(
                        time.perf_counter() - start)
            except BaseException as exc:  # pragma: no cover - surfaced
                with self._lock:
                    self.errors.append(exc)

    def run(self):
        """Fire all arrivals; returns wall-clock duration."""
        now = time.perf_counter()
        fire_at = now
        schedule = []
        for _ in range(self.jobs):
            fire_at += self.rng.expovariate(self.rate)
            schedule.append(fire_at)
        self._work = schedule
        threads = [threading.Thread(target=self._client_loop, args=(i,))
                   for i in range(self.clients)]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert not self.errors, self.errors
        return time.perf_counter() - start


def test_open_loop_throughput_and_latency(tmp_path):
    """A paced Poisson stream over a 2-worker queue: every job
    completes, and the client-side turnaround distribution is
    reported."""
    server = serve(queue_workers=2, run_root=tmp_path / "serve")
    try:
        generator = _LoadGenerator(server.url, rate_per_s=6.0)
        wall = generator.run()
        assert len(generator.latencies) == JOBS
        assert not generator.rejections
        p50, p95, p99 = _percentiles(generator.latencies)
        offered = JOBS / (JOBS / 6.0)
        achieved = JOBS / wall
        print(f"\nopen-loop load: {CLIENTS} clients, "
              f"{JOBS} jobs, Poisson rate 6.0/s (seed {SEED})")
        print(f"  offered {offered:.1f} QPS   achieved "
              f"{achieved:.1f} jobs/s over {wall:.2f}s")
        print(f"  turnaround p50 {p50 * 1000:.0f} ms   "
              f"p95 {p95 * 1000:.0f} ms   p99 {p99 * 1000:.0f} ms   "
              f"mean {statistics.mean(generator.latencies) * 1000:.0f} ms")
        # shape pin: the queue keeps up with a paced stream — p95 stays
        # within an order of magnitude of p50, not unboundedly queued
        assert p95 <= max(p50 * 10, p50 + 5.0)
    finally:
        server.shutdown()
        server.queue.shutdown()


def test_saturation_rejects_fast_instead_of_hanging(tmp_path):
    """Past saturation the admission gate answers 503 immediately:
    rejected submissions return far faster than an evaluation, and
    every *accepted* job still completes."""
    server = serve(queue_workers=1, run_root=tmp_path / "serve",
                   admission=AdmissionPolicy(max_pending=2))
    try:
        # each job holds the single worker for ~0.4s of simulated
        # latency; a burst of 16 must overflow max_pending=2
        spec = {"models": ["kosmos-2"], "backend": "serial",
                "latency_s": 0.2}
        generator = _LoadGenerator(server.url, rate_per_s=50.0,
                                   spec=spec)
        generator.run()
        completed = len(generator.latencies)
        rejected = len(generator.rejections)
        assert completed + rejected == JOBS
        assert rejected > 0, "burst never saturated the queue"
        assert completed > 0, "admission rejected everything"
        assert all("queue full" in message
                   for message in generator.rejections)
        # a rejection is an admission decision, not a timeout: it must
        # come back well under one job's simulated service time
        slowest_rejection = max(generator.rejection_times)
        print(f"\nsaturation: {completed} completed, {rejected} "
              f"rejected with 503 (max_pending=2)")
        print(f"  slowest rejection {slowest_rejection * 1000:.0f} ms "
              f"vs >= 400 ms of service time per job")
        assert slowest_rejection < 0.35
    finally:
        server.shutdown()
        server.queue.shutdown()


@pytest.mark.slow
def test_sustained_load_metrics_account_everything(tmp_path):
    """Longer sustained phase: the /metrics ledger balances — every
    submission is exactly one of completed/rejected, and the queue
    drains to idle."""
    server = serve(queue_workers=2, run_root=tmp_path / "serve",
                   admission=AdmissionPolicy(max_pending=8))
    try:
        generator = _LoadGenerator(server.url, rate_per_s=12.0,
                                   jobs=48)
        generator.run()
        client = EvalServiceClient(server.url)
        text = client.metrics()
        counters = {
            line.split()[0]: float(line.split()[1])
            for line in text.splitlines()
            if line.startswith("repro_service_")}
        submitted = counters["repro_service_jobs_submitted"]
        completed = counters["repro_service_jobs_completed"]
        assert submitted == len(generator.latencies)
        assert completed == submitted
        assert counters["repro_service_jobs_rejected"] == len(
            generator.rejections)
        assert counters["repro_service_jobs_queued"] == 0
        assert counters["repro_service_jobs_running"] == 0
        print(f"\nsustained: {submitted:.0f} accepted, "
              f"{len(generator.rejections)} rejected, ledger balanced")
    finally:
        server.shutdown()
        server.queue.shutdown()
