"""E8 (ablation) — the 'choices as RAG' effect of Section IV-A.

The paper attributes MC's higher pass rates to the answer options acting
like retrieval-augmented context.  This bench quantifies the MC -> SA drop
for every model and checks the claimed direction holds universally and is
large (GPT-4o: 0.44 -> 0.20).
"""

import pytest

from repro.core.harness import run_table2
from repro.core.metrics import mc_sa_gap
from repro.models import NO_CHOICE, WITH_CHOICE, build_model, build_zoo
from repro.models.zoo import TABLE2_ROW_ORDER


@pytest.fixture(scope="module")
def gaps(harness):
    results = run_table2(build_zoo(), harness)
    return {
        name: mc_sa_gap(settings[WITH_CHOICE], settings[NO_CHOICE])
        for name, settings in results.items()
    }


def test_gap_computation_speed(benchmark, harness):
    model = build_model("gpt-4o")

    def both():
        return mc_sa_gap(harness.zero_shot_standard(model),
                         harness.zero_shot_challenge(model))

    gap = benchmark.pedantic(both, rounds=2, iterations=1)
    assert gap > 0


def test_gap_positive_for_every_model(gaps):
    for name, gap in gaps.items():
        assert gap >= -0.01, name

    print()
    print("MC-as-RAG gap (pass@1 with choices minus without)")
    for name, _ in TABLE2_ROW_ORDER:
        print(f"  {name:<16}{gaps[name]:+.2f}")


def test_gpt4o_gap_magnitude(gaps):
    # paper: 0.44 -> 0.20, a 24-point drop
    assert gaps["gpt-4o"] == pytest.approx(0.24, abs=0.02)


def test_stronger_models_have_larger_gaps_on_average(gaps):
    """Random-guess floor helps weak models on MC; strong models lose the
    most when options vanish."""
    strong = [gaps["gpt-4o"], gaps["vila-yi-34b"], gaps["llama-3.2-90b"]]
    weak = [gaps["kosmos-2"], gaps["paligemma"]]
    assert sum(strong) / len(strong) > sum(weak) / len(weak)
