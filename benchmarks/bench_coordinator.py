"""Coordinator fleet scaling and degraded-fleet wall time.

Two shapes pinned for the multi-node sweep coordinator
(docs/COORDINATOR.md), both on the CPU-bound regime — a
:class:`~repro.core.faults.BusyBoundary` burns GIL-holding sha256
chains inside every question, so inline nodes serialize on one core
while process-group nodes spread across them:

* **fleet scaling** — a 4-node process fleet beats a 1-node fleet by
  >= 2x on the full-zoo Table II sweep;
* **graceful degradation** — killing one of four nodes mid-sweep
  (:class:`~repro.core.faults.NodeCrashBoundary`) costs <= 1.5x the
  clean 4-node wall: the dead node's unit is stolen, the survivors
  absorb its share, and the results match exactly.

Both need real cores and skip below four; the parity smoke test runs
anywhere.
"""

import os
import time

import pytest

from repro.core.coordinator import SweepCoordinator
from repro.core.faults import BusyBoundary, CompositeBoundary, \
    NodeCrashBoundary
from repro.core.harness import run_table2
from repro.core.runner import ParallelRunner
from repro.models import build_zoo

#: sha256 chain length per question — roughly half a millisecond of
#: GIL-holding CPU work, standing in for local decode/scoring compute.
SPINS = 800

FEW_CORES = (os.cpu_count() or 1) < 4


def _timed_fleet(models, nodes, spins=SPINS, extra_boundary=None,
                 **kwargs):
    boundary = BusyBoundary(spins=spins)
    if extra_boundary is not None:
        boundary = CompositeBoundary(extra_boundary, boundary)
    coordinator = SweepCoordinator(nodes=nodes, node_backend="process",
                                   fault_boundary=boundary,
                                   lease_s=120.0, **kwargs)
    start = time.perf_counter()
    results = run_table2(models, runner=coordinator)
    return time.perf_counter() - start, results, coordinator


def test_fleet_parity():
    """Smoke (any machine): an inline 2-node fleet reproduces the solo
    runner's numbers exactly on a compute-laden sub-sweep."""
    models = build_zoo()[:2]
    solo_runner = ParallelRunner(workers=1,
                                 fault_boundary=BusyBoundary(spins=50))
    solo = run_table2(models, runner=solo_runner)
    fleet_coord = SweepCoordinator(nodes=2,
                                   fault_boundary=BusyBoundary(spins=50))
    fleet = run_table2(models, runner=fleet_coord)
    for name, settings in solo.items():
        for setting, result in settings.items():
            assert fleet[name][setting].pass_at_1() == result.pass_at_1()


@pytest.mark.slow
@pytest.mark.skipif(FEW_CORES, reason="needs >= 4 CPU cores to show "
                    "fleet scaling")
def test_four_nodes_beat_one_on_cpu_bound_sweep():
    """Acceptance: a 4-node process fleet >= 2x a 1-node fleet on the
    CPU-bound full-zoo sweep, same numbers."""
    zoo = build_zoo()
    one_s, one, _ = _timed_fleet(zoo, nodes=1)
    four_s, four, _ = _timed_fleet(zoo, nodes=4)

    print(f"\nTable II sweep under {SPINS} sha256 spins/question of "
          f"GIL-holding CPU work ({os.cpu_count()} cores)")
    for label, elapsed in (("1 node", one_s), ("4 nodes", four_s)):
        print(f"  {label:<8} {elapsed:6.2f} s   "
              f"speedup {one_s / elapsed:4.1f}x")

    assert one_s / four_s >= 2.0
    for name, settings in one.items():
        for setting, result in settings.items():
            assert four[name][setting].pass_at_1() == result.pass_at_1()


@pytest.mark.slow
@pytest.mark.skipif(FEW_CORES, reason="needs >= 4 CPU cores to show "
                    "degraded-fleet absorption")
def test_one_dead_node_costs_at_most_half_again(tmp_path):
    """Acceptance: killing one of four nodes mid-sweep costs <= 1.5x
    the clean 4-node wall — the survivors steal and absorb its share."""
    zoo = build_zoo()
    clean_s, clean, _ = _timed_fleet(zoo, nodes=4)

    # qid-only script: the first unit to cross dig-08 takes its node
    # down (the flag file keeps the latch one-shot across processes)
    crash = NodeCrashBoundary(flag_path=tmp_path / "crash.flag",
                              crash_on="dig-08")
    degraded_s, degraded, coordinator = _timed_fleet(
        zoo, nodes=4, extra_boundary=crash)

    counters = coordinator.last_stats.coordinator
    print(f"\nclean 4-node {clean_s:.2f} s vs one-node-killed "
          f"{degraded_s:.2f} s ({degraded_s / clean_s:.2f}x); "
          f"nodes_lost={counters['nodes_lost']} "
          f"units_stolen={counters['units_stolen']}")

    assert counters["nodes_lost"] == 1
    assert counters["units_stolen"] >= 1
    assert degraded_s <= clean_s * 1.5
    for name, settings in clean.items():
        for setting, result in settings.items():
            assert degraded[name][setting].pass_at_1() == \
                result.pass_at_1()
