"""Extension study — few-shot prompting over the zoo.

The paper evaluates zero-shot only; this extension sweeps k in-context
exemplars (drawn cross-category, no leakage) and checks the expected
shape: monotone saturating gains, with weaker models gaining relatively
more headroom.  (An extension, not a paper reproduction.)
"""

import pytest

from repro.core.fewshot import fewshot_prompt, select_exemplars, with_fewshot
from repro.models import build_model
from repro.tokenizer import default_tokenizer


@pytest.fixture(scope="module")
def kshot_scores(harness):
    model = build_model("llava-13b")
    scores = {}
    for k in (0, 1, 4, 8):
        variant = with_fewshot(model, k)
        scores[k] = harness.zero_shot_standard(variant).pass_at_1()
    return scores


def test_fewshot_prompt_build_speed(benchmark, chipvqa):
    target = chipvqa.get("dig-05")
    prompt = benchmark(fewshot_prompt, chipvqa, target, 4)
    assert "Example 4:" in prompt


def test_kshot_monotone_saturating(kshot_scores):
    ks = sorted(kshot_scores)
    values = [kshot_scores[k] for k in ks]
    assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))

    print()
    print("few-shot sweep (LLaVA-13b, with-choice pass@1)")
    for k in ks:
        print(f"  k={k:<3}{kshot_scores[k]:.2f}")


def test_prompt_token_cost_grows_linearly(chipvqa):
    """Each exemplar costs prompt tokens — quantify the trade-off."""
    tokenizer = default_tokenizer()
    target = chipvqa.get("arc-06")
    costs = [tokenizer.count(fewshot_prompt(chipvqa, target, k))
             for k in (0, 2, 4, 8)]
    assert all(a < b for a, b in zip(costs, costs[1:]))
    per_exemplar = (costs[-1] - costs[0]) / 8
    print(f"\nprompt cost: ~{per_exemplar:.0f} tokens per exemplar")
    assert 20 < per_exemplar < 400


def test_no_leakage_into_any_prompt(chipvqa):
    for qid in ("dig-01", "ana-44", "mfg-02", "phy-23", "arc-20"):
        target = chipvqa.get(qid)
        exemplars = select_exemplars(chipvqa, target, 6)
        assert target.qid not in {e.qid for e in exemplars}
        assert all(e.category is not target.category for e in exemplars)
