"""Ablation — encoder input resolution vs downsampling robustness.

Section IV-B cites MM1: "higher resolution images improve the
effectiveness of visual question answering".  In this substrate the claim
is *emergent*, not calibrated: the external downsampling factor composes
with each encoder's intrinsic resize (a 336 px encoder already shrinks a
512 px figure by 1.5x), so lower-resolution encoders cross the legibility
cliff earlier.  This bench verifies that prediction across the zoo.
"""

import pytest

from repro.core.harness import EvaluationHarness
from repro.core.question import Category
from repro.models import build_model


@pytest.fixture(scope="module")
def relative_curves():
    harness = EvaluationHarness()
    curves = {}
    for name in ("gpt-4o", "llava-7b"):
        model = build_model(name)
        study = harness.resolution_study(model, factors=(1, 8, 16))
        base = study[1].pass_at_1()
        curves[name] = {
            "input_resolution": model.encoder.input_resolution,
            "relative": {f: study[f].pass_at_1() / base for f in (1, 8, 16)},
        }
    return curves


def test_sweep_speed(benchmark):
    harness = EvaluationHarness()
    model = build_model("llava-7b")
    study = benchmark.pedantic(
        lambda: harness.resolution_study(model, factors=(1, 8)),
        rounds=2, iterations=1)
    assert 1 in study


def test_low_res_encoder_degrades_earlier(relative_curves):
    high = relative_curves["gpt-4o"]
    low = relative_curves["llava-7b"]
    assert high["input_resolution"] > low["input_resolution"]
    # at 8x the high-res encoder is unaffected while the low-res one dips
    assert high["relative"][8] == pytest.approx(1.0, abs=0.01)
    assert low["relative"][8] < 0.99
    # both eventually fall at 16x
    assert high["relative"][16] < 0.9
    assert low["relative"][16] < 0.9

    print()
    print("encoder input resolution vs relative Digital pass rate")
    for name, curve in relative_curves.items():
        rel = curve["relative"]
        print(f"  {name:<10} ({curve['input_resolution']}px)  "
              f"1x={rel[1]:.2f}  8x={rel[8]:.2f}  16x={rel[16]:.2f}")


def test_mechanism_is_the_intrinsic_factor(chipvqa):
    """The composed factor explains the gap: same figure, two encoders."""
    question = chipvqa.by_category(Category.DIGITAL)[0]
    high = build_model("gpt-4o").encoder
    low = build_model("llava-7b").encoder
    assert low.intrinsic_factor(question.visual) > \
        high.intrinsic_factor(question.visual)
    assert low.perceive(question.visual, 8) <= \
        high.perceive(question.visual, 8) + 1e-9
