"""E15 — Batched inference: coalesced submission vs. per-question calls.

Remote model endpoints charge a per-call cost (connection setup,
provider-side queueing, scheduling) that per-question submission pays
once per question; :class:`~repro.models.providers.BatchingProvider`
coalesces concurrent per-question ``submit()`` calls into batches so the
cost is paid once per batch.  The endpoint here is a
:class:`~repro.models.providers.RemoteStubProvider` with a real (small)
per-call sleep, so measured wall-clock reflects the transport-bound
regime a deployed sweep actually sits in.  Shape pinned: coalescing at
batch size 12 beats per-question submission by >= 2x on throughput
(run with ``-s`` to see the table).

Answer *semantics* are per dispatched batch (quota-IRT planning is
cohort-dependent); this benchmark measures transport throughput, and
the reproduction path — whole work units through ``answer_batch`` —
is never split by the batching layer (see docs/PROVIDERS.md).
"""

import threading
import time

from repro.core.benchmark import build_chipvqa
from repro.core.question import Category
from repro.models import WITH_CHOICE, BatchingProvider, RemoteStubProvider
from repro.models.zoo import build_model

#: Simulated per-call endpoint cost.  Real APIs sit 100-1000x higher,
#: which only widens the measured gap.
PER_CALL_LATENCY_S = 0.005

#: Coalescing bound used for the headline measurement.
BATCH_SIZE = 12


def _questions():
    return list(build_chipvqa().by_category(Category.DIGITAL))


def _per_question_sweep(questions):
    """Baseline: every question is its own endpoint call."""
    stub = RemoteStubProvider(build_model("gpt-4o"),
                              base_latency_s=PER_CALL_LATENCY_S)
    start = time.perf_counter()
    answers = [
        stub.answer_batch([question], WITH_CHOICE, use_raster=False)[0]
        for question in questions
    ]
    return time.perf_counter() - start, answers, stub.calls


def _batched_sweep(questions, batch_size=BATCH_SIZE):
    """Concurrent per-question submitters coalesced by the provider."""
    provider = BatchingProvider(
        RemoteStubProvider(build_model("gpt-4o"),
                           base_latency_s=PER_CALL_LATENCY_S),
        max_batch_size=batch_size, max_wait_s=0.05)
    answers = {}

    def submit(question):
        answers[question.qid] = provider.submit(question, WITH_CHOICE,
                                                use_raster=False)

    threads = [threading.Thread(target=submit, args=(q,))
               for q in questions]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    provider.flush()
    return time.perf_counter() - start, answers, provider


def test_batched_submission_throughput():
    """Acceptance: >= 2x throughput from coalescing, with every
    submitter answered for its own question."""
    questions = _questions()
    serial_s, serial_answers, serial_calls = _per_question_sweep(questions)
    batched_s, batched_answers, provider = _batched_sweep(questions)

    n = len(questions)
    serial_qps = n / serial_s
    batched_qps = n / batched_s
    print(f"\n{n} questions under {PER_CALL_LATENCY_S * 1000:.1f} ms "
          f"per-call endpoint latency")
    print(f"  per-question  {serial_s:6.3f} s  {serial_qps:7.1f} q/s  "
          f"({serial_calls} calls)")
    print(f"  batched(<= {BATCH_SIZE})  {batched_s:6.3f} s  "
          f"{batched_qps:7.1f} q/s  ({provider.batches} calls)")
    print(f"  speedup {serial_s / batched_s:4.1f}x")

    assert len(serial_answers) == n
    assert sorted(batched_answers) == sorted(q.qid for q in questions)
    for qid, answer in batched_answers.items():
        assert answer.qid == qid
    # coalescing actually happened: far fewer endpoint calls than
    # questions, and every question was carried by some batch
    assert provider.batches < n / 2
    assert provider.batched_questions == n
    assert serial_s / batched_s >= 2.0


def test_coalescing_bounds_endpoint_calls():
    """The deterministic half of the claim: bigger coalescing bounds
    mean fewer endpoint calls (what a provider bills and rate-limits),
    while batch size 1 degenerates to one call per question.  Wall
    clock is left to the headline test — concurrent dispatches overlap
    their latency, so call count is the stable axis here."""
    questions = _questions()
    calls = {}
    for batch_size in (1, 4, BATCH_SIZE):
        _elapsed, answers, provider = _batched_sweep(questions, batch_size)
        calls[batch_size] = provider.batches
        assert len(answers) == len(questions)
        assert provider.batched_questions == len(questions)
    print("\n" + "  ".join(f"b{size}={count} calls"
                           for size, count in calls.items()))
    n = len(questions)
    assert calls[1] == n
    # thread-arrival raggedness can split a few batches; the call count
    # must still land well under the per-question floor and shrink as
    # the bound grows
    assert calls[4] <= n / 2
    assert calls[BATCH_SIZE] <= calls[4]
