"""E5 — Table III: the agent system versus plain GPT-4o.

Expected shape (paper): with choice 0.44 -> 0.49, no choice 0.20 -> 0.21,
with a regression in the Manufacturing category because the text-only
designer never sees pixels.
"""

import pytest

from repro.agent import ChipDesignerAgent, evaluate_agent, run_table3
from repro.core.question import Category
from repro.core.report import render_table3
from repro.models import NO_CHOICE, WITH_CHOICE


@pytest.fixture(scope="module")
def table3():
    return run_table3()


def test_agent_evaluation_speed(benchmark, chipvqa):
    agent = ChipDesignerAgent()
    result = benchmark(evaluate_agent, agent, chipvqa, WITH_CHOICE)
    assert len(result) == 142


def test_table3_matches_paper(table3):
    gpt = table3["gpt4o"]
    agent = table3["agent"]
    assert gpt[WITH_CHOICE].pass_at_1() == pytest.approx(0.44, abs=0.01)
    assert agent[WITH_CHOICE].pass_at_1() == pytest.approx(0.49, abs=0.01)
    assert gpt[NO_CHOICE].pass_at_1() == pytest.approx(0.20, abs=0.015)
    assert agent[NO_CHOICE].pass_at_1() == pytest.approx(0.21, abs=0.01)

    print()
    print(render_table3(gpt, agent))


def test_agent_improves_overall_but_regresses_manufacturing(table3):
    gpt_cats = table3["gpt4o"][WITH_CHOICE].pass_at_1_by_category()
    agent_cats = table3["agent"][WITH_CHOICE].pass_at_1_by_category()
    assert table3["agent"][WITH_CHOICE].pass_at_1() > \
        table3["gpt4o"][WITH_CHOICE].pass_at_1()
    assert agent_cats[Category.MANUFACTURING] < \
        gpt_cats[Category.MANUFACTURING]


def test_every_agent_answer_used_the_vision_tool(chipvqa):
    agent = ChipDesignerAgent()
    plan = agent.plan(list(chipvqa), WITH_CHOICE)
    for question in list(chipvqa)[:25]:
        trace = agent.solve(question, plan)
        assert trace.tool_calls >= 1
