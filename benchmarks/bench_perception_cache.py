"""E14 — Perception-cache effectiveness: cold vs. warm raster sweeps.

The raster perception path is memoized content-addressed at three
levels (render -> legibility -> perception; see ``docs/PERF.md``), with
the runner's per-question answer cache above them.  This bench measures
the warm-over-cold speedup each layer buys on the paper's own
workloads, and pins the hard invariant that caching never changes a
byte of the JSONL artifacts.

Shapes pinned (run with ``-s`` and ``-m "slow or not slow"`` to see
the numbers; results recorded in EXPERIMENTS.md):

* one-model raster evaluation: warm substrate >= 3x faster than cold;
* full Table II raster sweep through a shared runner: warm >= 3x
  (measured orders of magnitude more — the answer cache short-circuits
  every model call);
* the Section IV-B resolution study re-run warm is >= 3x faster;
* cold and warm artifacts are byte-identical in every case.
"""

import time

import pytest

from repro.core import perfstats, results_io
from repro.core.harness import EvaluationHarness, run_table2
from repro.core.runner import ParallelRunner
from repro.models import WITH_CHOICE, build_model, build_zoo


def _reset_substrate():
    """Empty (and zero the counters of) the perception-path caches."""
    for name in ("render", "legibility", "perception"):
        cache = perfstats.get_cache(name)
        if cache is not None:
            cache.reset()


def _canonical(result):
    return results_io.dumps(result, telemetry=False)


def test_warm_substrate_speeds_up_raster_evaluation():
    """Acceptance: >= 3x warm-over-cold on the raster perception path,
    byte-identical artifacts."""
    harness = EvaluationHarness(use_raster=True)
    model = build_model("gpt-4o")
    from repro.core.benchmark import build_chipvqa

    dataset = build_chipvqa()

    _reset_substrate()
    start = time.perf_counter()
    cold = harness.evaluate(model, dataset, WITH_CHOICE)
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    warm = harness.evaluate(model, dataset, WITH_CHOICE)
    warm_s = time.perf_counter() - start

    counters = perfstats.snapshot()
    print(f"\nraster evaluate: cold {cold_s:.3f} s -> warm {warm_s:.3f} s "
          f"({cold_s / warm_s:.1f}x)")
    for name in ("render", "legibility", "perception"):
        entry = counters[name]
        print(f"  {name:<11} hits {entry['hits']:>5}  "
              f"misses {entry['misses']:>5}")

    assert _canonical(warm) == _canonical(cold)
    assert cold_s / warm_s >= 3.0
    assert counters["perception"].get("hits", 0) > 0


def test_resolution_study_rerun_is_warm():
    """The Section IV-B study re-run through a shared runner replays
    from caches: >= 3x faster, identical artifacts."""
    harness = EvaluationHarness()
    model = build_model("gpt-4o")
    runner = ParallelRunner(harness=harness)

    _reset_substrate()
    start = time.perf_counter()
    cold = harness.resolution_study(model, runner=runner)
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    warm = harness.resolution_study(model, runner=runner)
    warm_s = time.perf_counter() - start

    print(f"\nresolution study: cold {cold_s:.3f} s -> warm {warm_s:.3f} s "
          f"({cold_s / warm_s:.1f}x)")
    assert cold_s / warm_s >= 3.0
    for factor, result in cold.items():
        assert _canonical(warm[factor]) == _canonical(result)
    assert runner.cache.hit_rate() > 0


@pytest.mark.slow
def test_warm_table2_raster_sweep_speedup():
    """Acceptance: >= 3x warm-over-cold on a full raster-mode Table II
    sweep through the cache hierarchy, byte-identical artifacts."""
    harness = EvaluationHarness(use_raster=True)
    models = build_zoo()
    runner = ParallelRunner(harness=harness)

    _reset_substrate()
    start = time.perf_counter()
    cold = run_table2(models, runner=runner)
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    warm = run_table2(models, runner=runner)
    warm_s = time.perf_counter() - start

    counters = perfstats.snapshot()
    print(f"\nraster Table II sweep: cold {cold_s:.2f} s -> "
          f"warm {warm_s:.2f} s ({cold_s / warm_s:.0f}x)")
    legibility = counters["legibility"]
    lookups = legibility["hits"] + legibility["misses"]
    print(f"  legibility: {legibility['misses']} scored once, "
          f"{legibility['hits']}/{lookups} lookups served warm")

    assert cold_s / warm_s >= 3.0
    for name, settings in cold.items():
        for setting, result in settings.items():
            assert _canonical(warm[name][setting]) == _canonical(result)
    # 12 models share every figure's raster legibility: the cold sweep
    # itself is mostly cache hits (each (figure, factor) scored once)
    assert legibility["hits"] > legibility["misses"]


@pytest.mark.slow
def test_cold_sweep_matches_cacheless_artifacts():
    """Hard invariant: the memoized pipeline produces byte-identical
    artifacts to a run with every substrate cache forcibly emptied
    between units."""
    harness = EvaluationHarness(use_raster=True)
    model = build_model("llava-7b")
    from repro.core.benchmark import build_chipvqa

    dataset = build_chipvqa()

    _reset_substrate()
    cached = _canonical(harness.evaluate(model, dataset, WITH_CHOICE,
                                         resolution_factor=8))
    _reset_substrate()
    recold = _canonical(harness.evaluate(model, dataset, WITH_CHOICE,
                                         resolution_factor=8))
    assert cached == recold
