"""E9 (ablation) — auto-judge accuracy on a perturbation suite.

The paper's hybrid evaluation relies on a GPT-4 auto-judge for answer
equivalence.  This bench measures our judge's agreement against ground
truth on a generated suite of positive paraphrases (must accept) and
negative perturbations (must reject), across every benchmark question.
"""

import pytest

from repro.judge import AutoJudge, answers_equivalent
from repro.models.llm import LlmBackbone


@pytest.fixture(scope="module")
def perturbation_suite(chipvqa):
    """(question, response, should_accept) triples."""
    backbone_a = LlmBackbone("judge-probe-a", 7.0, 0.5)
    backbone_b = LlmBackbone("judge-probe-b", 7.0, 0.5)
    suite = []
    for question in chipvqa:
        suite.append((question, question.gold_text, True))
        for backbone in (backbone_a, backbone_b):
            suite.append((question, backbone.phrase_correct(question), True))
            suite.append((question, backbone.phrase_incorrect(question),
                          False))
        for alias in question.answer.aliases:
            suite.append((question, alias, True))
        suite.append((question, "", False))
    return suite


def test_judge_throughput(benchmark, chipvqa):
    judge = AutoJudge()
    questions = list(chipvqa)[:50]

    def judge_all():
        return [judge.judge(q, q.gold_text).correct for q in questions]

    verdicts = benchmark(judge_all)
    assert all(verdicts)


def test_judge_accuracy_is_perfect_on_suite(perturbation_suite):
    errors = []
    for question, response, should_accept in perturbation_suite:
        verdict = answers_equivalent(question, response)
        if verdict != should_accept:
            errors.append((question.qid, response, should_accept))
    accuracy = 1.0 - len(errors) / len(perturbation_suite)

    print()
    print(f"judge perturbation suite: {len(perturbation_suite)} cases, "
          f"accuracy {accuracy:.4f}")
    for qid, response, expected in errors[:10]:
        print(f"  MISJUDGED {qid}: {response!r} (expected "
              f"{'accept' if expected else 'reject'})")
    assert accuracy == 1.0, errors[:10]


def test_judge_rejects_letter_swaps(chipvqa):
    """Every wrong option letter must be rejected on every MC question."""
    wrong = 0
    for question in chipvqa:
        if not question.is_multiple_choice:
            continue
        for index in range(4):
            if index == question.correct_choice:
                continue
            if answers_equivalent(question, "ABCD"[index]):
                wrong += 1
    assert wrong == 0
