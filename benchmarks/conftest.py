"""Shared fixtures for the benchmark harness.

Every bench regenerates one table or figure of the paper and prints the
reproduced rows (run with ``pytest benchmarks/ --benchmark-only -s`` to see
them); assertions pin the *shape* of each result — who wins, by roughly
what factor, where the crossovers fall.
"""

import pytest

from repro.core.benchmark import build_chipvqa, build_chipvqa_challenge
from repro.core.harness import EvaluationHarness


@pytest.fixture(scope="session")
def chipvqa():
    return build_chipvqa()


@pytest.fixture(scope="session")
def chipvqa_challenge():
    return build_chipvqa_challenge()


@pytest.fixture(scope="session")
def harness():
    return EvaluationHarness()
