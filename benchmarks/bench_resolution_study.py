"""E4 — Section IV-B: image-resolution sensitivity of GPT-4o on Digital.

Paper result: 8x downsampling preserves the native pass rate (0.49);
16x drops it to 0.37.  Perception here is computed from real rendered
rasters (block-averaged downsampling + ink-visibility retention), so this
bench exercises the full image pipeline.
"""

import pytest

from repro.core.harness import EvaluationHarness
from repro.core.question import Category
from repro.core.report import render_resolution_study
from repro.models import build_model
from repro.visual import legibility_score, render


@pytest.fixture(scope="module")
def study():
    harness = EvaluationHarness()
    return harness.resolution_study(build_model("gpt-4o"),
                                    category=Category.DIGITAL,
                                    factors=(1, 8, 16))


def test_resolution_study_runs(benchmark):
    harness = EvaluationHarness()
    model = build_model("gpt-4o")
    result = benchmark.pedantic(
        lambda: harness.resolution_study(model, factors=(1, 16)),
        rounds=2, iterations=1)
    assert set(result) == {1, 16}


def test_resolution_study_matches_paper(study):
    native = study[1].pass_at_1()
    at_8x = study[8].pass_at_1()
    at_16x = study[16].pass_at_1()

    assert native == pytest.approx(0.49, abs=0.01)   # paper: 0.49
    assert at_8x == pytest.approx(native, abs=0.01)  # paper: preserved
    assert at_16x == pytest.approx(0.37, abs=0.01)   # paper: 0.37
    assert at_16x < at_8x                            # the crossover

    print()
    print(render_resolution_study(study))


def test_image_legibility_drives_the_drop(chipvqa):
    """The mechanism: rendered figures lose ink visibility at 16x."""
    digital = chipvqa.by_category(Category.DIGITAL)
    scores_8 = [legibility_score(render(q.visual), 8) for q in digital]
    scores_16 = [legibility_score(render(q.visual), 16) for q in digital]
    mean_8 = sum(scores_8) / len(scores_8)
    mean_16 = sum(scores_16) / len(scores_16)
    assert mean_8 > 0.85
    assert mean_16 < 0.6
    print(f"\nmean ink retention: 8x={mean_8:.3f}  16x={mean_16:.3f}")


def test_render_throughput(benchmark, chipvqa):
    question = chipvqa[0]
    image = benchmark(render, question.visual, False)
    assert image.size > 0
