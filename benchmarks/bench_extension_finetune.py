"""Extension study — the paper's future work: domain fine-tuning.

Section V targets "ChipVQA-oriented dataset collection, VLM training and
development, targeting a low-cost yet effective open-source foundation
model release".  This bench sweeps simulated domain-adaptation budgets on
an open-source model and checks the expected shape: log-linear gains with
data, cross-discipline transfer, and a ceiling below perfect accuracy.
(An extension, not a paper reproduction — see DESIGN.md.)
"""

import pytest

from repro.core.question import Category
from repro.models import WITH_CHOICE, build_model
from repro.models.finetune import FinetuneRecipe, finetune


@pytest.fixture(scope="module")
def sweep(harness):
    base = build_model("llava-7b")
    rows = [("base", base, harness.zero_shot_standard(base).pass_at_1())]
    for label, examples in (("1k", 1000), ("4k", 4000), ("16k", 16000)):
        tuned = finetune(base, FinetuneRecipe.uniform(examples),
                         suffix=f"ft-{label}")
        score = harness.zero_shot_standard(tuned).pass_at_1()
        rows.append((label, tuned, score))
    return rows


def test_finetune_sweep_speed(benchmark, harness):
    base = build_model("llava-7b")

    def run_one():
        tuned = finetune(base, FinetuneRecipe.uniform(4000))
        return harness.zero_shot_standard(tuned).pass_at_1()

    score = benchmark.pedantic(run_one, rounds=2, iterations=1)
    assert score > 0


def test_gains_are_monotone_and_saturating(sweep):
    scores = [score for _, _, score in sweep]
    assert all(a <= b for a, b in zip(scores, scores[1:]))
    # diminishing returns per 4x data step
    gain_1 = scores[1] - scores[0]
    gain_3 = scores[3] - scores[2]
    assert gain_3 <= gain_1 + 0.02

    print()
    print("domain fine-tuning sweep (LLaVA-7b, with-choice pass@1)")
    for label, _, score in sweep:
        print(f"  {label:<6}{score:.2f}")


def test_tuned_open_model_narrows_gpt4o_gap(sweep, harness):
    """The future-work thesis: enough domain data makes a small open model
    competitive with the generalist proprietary one (cf. ChipNeMo)."""
    gpt = harness.zero_shot_standard(build_model("gpt-4o")).pass_at_1()
    base_score = sweep[0][2]
    best_score = sweep[-1][2]
    assert gpt - base_score > 0.15        # the original gap is large
    assert gpt - best_score < 0.05        # 16k examples close it
    print(f"\ngap to GPT-4o: base {gpt - base_score:+.2f} -> "
          f"16k-tuned {gpt - best_score:+.2f}")


def test_targeted_training_transfers(harness):
    """Digital-only data lifts Architecture (shared skills) measurably."""
    base = build_model("llava-7b")
    recipe = FinetuneRecipe({Category.DIGITAL: 8000})
    tuned = finetune(base, recipe, suffix="ft-digital")
    base_rates = harness.zero_shot_standard(base).pass_at_1_by_category()
    tuned_rates = harness.zero_shot_standard(tuned).pass_at_1_by_category()
    assert tuned_rates[Category.DIGITAL] > base_rates[Category.DIGITAL]
    assert tuned_rates[Category.ARCHITECTURE] >= \
        base_rates[Category.ARCHITECTURE]
    assert tuned_rates[Category.ANALOG] == \
        pytest.approx(base_rates[Category.ANALOG], abs=0.05)
