"""E1 — Table I: statistics of ChipVQA.

Regenerates every row of Table I (question counts, category counts,
visual-type counts, prompt-token distribution) from a fresh benchmark
build and checks them against the paper's published values.
"""

import pytest

from repro.core.benchmark import build_chipvqa, validate_chipvqa
from repro.core.question import (
    CATEGORY_COUNTS,
    QuestionType,
    VISUAL_TYPE_COUNTS,
)
from repro.core.report import render_table1

# force a cold build inside the timed region
import repro.core.benchmark as benchmark_module


def _cold_build():
    benchmark_module._STANDARD = None
    return build_chipvqa()


def test_table1_statistics(benchmark):
    dataset = benchmark(_cold_build)
    validate_chipvqa(dataset)

    # paper values, verbatim from Table I
    assert len(dataset) == 142
    type_counts = dataset.type_counts()
    assert type_counts[QuestionType.MULTIPLE_CHOICE] == 99
    assert type_counts[QuestionType.SHORT_ANSWER] == 43
    for category, expected in CATEGORY_COUNTS.items():
        assert dataset.category_counts()[category] == expected
    for visual_type, expected in VISUAL_TYPE_COUNTS.items():
        assert dataset.visual_counts()[visual_type] == expected

    stats = dataset.token_stats()
    assert stats.mean == pytest.approx(51.0, abs=3.0)   # paper: 51.00
    assert stats.minimum == 5                            # paper: 5
    assert 300 <= stats.maximum <= 400                   # paper: 370

    print()
    print(render_table1(dataset))


def test_token_statistics_speed(benchmark, chipvqa):
    stats = benchmark(chipvqa.token_stats)
    assert stats.mean > 0
