"""E17 — Continuous batching and hedged requests on the async seam.

Two shapes pinned here, both against a simulated remote endpoint with
real (small) sleeps so measured wall-clock reflects the transport-bound
regime a deployed sweep sits in:

1. **Throughput** — with the *same worker budget*, coroutine submission
   through :class:`~repro.models.providers.ContinuousBatcher` beats
   thread-driven :class:`~repro.models.providers.BatchingProvider` by
   >= 2x at high per-call latency.  The mechanism: a blocking
   ``submit()`` pins one question per thread, so a 4-thread harness
   can never present more than 4 questions to the endpoint at once —
   the coalescing window starves.  Coroutines cost nothing to park, so
   the batcher sees the *whole* backlog, fills every batch, and keeps
   ``max_in_flight`` full batches rolling (a slot refills the moment
   one drains, no end-of-batch barrier).

2. **Tail latency** — hedging straggling calls
   (:class:`~repro.models.providers.HedgePolicy`) cuts measured p99 on
   a bimodal endpoint (occasional 10x stragglers): the duplicate
   launched after ``after_s`` almost always draws a fast response, and
   first success wins.  Answers are key-deterministic, so hedging
   shapes latency only — never artifacts.

Run with ``-s`` to see the tables.  Recorded as E17 in EXPERIMENTS.md.
"""

import asyncio
import queue
import threading
import time

from repro.core.benchmark import build_chipvqa
from repro.core.question import Category
from repro.models import (
    WITH_CHOICE,
    AsyncCallScheduler,
    BatchingProvider,
    ContinuousBatcher,
    HedgePolicy,
    RemoteStubProvider,
)
from repro.models.zoo import build_model

#: Simulated per-call endpoint latency for the throughput shape.  High
#: relative to evaluation cost — the API-bound regime.  Real endpoints
#: sit 10-100x higher, which only widens the measured gap.
PER_CALL_LATENCY_S = 0.04

#: Worker budget shared by both sides of the throughput comparison:
#: submitter threads for the baseline, in-flight call slots for the
#: continuous batcher.
WORKERS = 4

#: Coalescing bound for both sides.
BATCH_SIZE = 12


def _questions():
    return list(build_chipvqa().by_category(Category.DIGITAL)) * 3


def _thread_batched_sweep(questions):
    """Baseline: a ``WORKERS``-thread harness feeding a
    :class:`BatchingProvider` through blocking per-question submits —
    at most ``WORKERS`` questions are ever visible to the coalescer."""
    provider = BatchingProvider(
        RemoteStubProvider(build_model("gpt-4o"),
                           base_latency_s=PER_CALL_LATENCY_S),
        max_batch_size=BATCH_SIZE, max_wait_s=0.01)
    backlog = queue.Queue()
    for item in enumerate(questions):
        backlog.put(item)
    answers = {}
    lock = threading.Lock()

    def worker():
        while True:
            try:
                index, question = backlog.get_nowait()
            except queue.Empty:
                return
            answer = provider.submit(question, WITH_CHOICE,
                                     use_raster=False)
            with lock:
                answers[index] = answer

    threads = [threading.Thread(target=worker) for _ in range(WORKERS)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    provider.flush()
    return time.perf_counter() - start, answers, provider


def _continuous_sweep(questions):
    """Continuous batching: every question is a parked coroutine; the
    batcher keeps ``WORKERS`` full batches in flight, refilling each
    slot the moment it drains."""
    stub = RemoteStubProvider(build_model("gpt-4o"),
                              base_latency_s=PER_CALL_LATENCY_S)
    batcher = ContinuousBatcher(max_batch_size=BATCH_SIZE,
                                max_in_flight=WORKERS)

    async def main():
        return await asyncio.gather(*[
            batcher.submit(stub, question, WITH_CHOICE, use_raster=False)
            for question in questions])

    start = time.perf_counter()
    answers = asyncio.run(main())
    return time.perf_counter() - start, answers, batcher


def test_continuous_batching_throughput():
    """Acceptance: >= 2x throughput over thread-driven
    ``BatchingProvider`` at the same worker budget, every question
    answered for itself."""
    questions = _questions()
    n = len(questions)
    thread_s, thread_answers, thread_provider = _thread_batched_sweep(
        questions)
    async_s, async_answers, batcher = _continuous_sweep(questions)

    print(f"\n{n} questions, {PER_CALL_LATENCY_S * 1000:.0f} ms "
          f"per-call latency, worker budget {WORKERS}, "
          f"batch bound {BATCH_SIZE}")
    print(f"  threads+coalesce  {thread_s:6.3f} s  "
          f"{n / thread_s:7.1f} q/s  ({thread_provider.batches} calls)")
    print(f"  continuous        {async_s:6.3f} s  "
          f"{n / async_s:7.1f} q/s  ({batcher.batches} calls)")
    print(f"  speedup {thread_s / async_s:4.1f}x")

    assert len(thread_answers) == n
    assert len(async_answers) == n
    for question, answer in zip(questions, async_answers):
        assert answer.qid == question.qid
    # the rolling window actually filled batches and overlapped them
    assert batcher.batched_questions == n
    assert batcher.peak_in_flight == WORKERS
    assert batcher.batches < thread_provider.batches
    assert thread_s / async_s >= 2.0


class _BimodalEndpoint:
    """Async endpoint with a heavy tail: most calls answer fast, every
    ``straggle_every``-th dispatch takes ``straggle_s``.  Stragglers
    are positional (dispatch order), so a hedged duplicate of a slow
    call almost always lands in the fast mode — exactly the regime
    request hedging exists for.  Answers depend only on the question,
    so racing duplicates is safe."""

    name = "bimodal"

    def __init__(self, fast_s=0.01, straggle_s=0.12, straggle_every=10):
        self.fast_s = fast_s
        self.straggle_s = straggle_s
        self.straggle_every = straggle_every
        self.dispatches = 0

    def config_fingerprint(self):
        """Constant: latency mode never affects answers."""
        return "e" * 64

    async def answer_batch_async(self, questions, setting,
                                 resolution_factor=1, use_raster=True):
        """Sleep fast or straggle by dispatch index, then echo."""
        self.dispatches += 1
        straggle = self.dispatches % self.straggle_every == 0
        await asyncio.sleep(self.straggle_s if straggle else self.fast_s)
        return [f"ans:{q}" for q in questions]


def _latency_profile(hedge):
    """Per-call latencies for 100 single-question calls, measured
    individually under concurrent dispatch."""
    endpoint = _BimodalEndpoint()
    scheduler = AsyncCallScheduler(hedge=hedge)

    async def timed_call(index):
        start = time.perf_counter()
        answers = await scheduler.call(endpoint, [f"q{index}"],
                                       WITH_CHOICE)
        assert answers == [f"ans:q{index}"]
        return time.perf_counter() - start

    async def main():
        return await asyncio.gather(*[timed_call(i) for i in range(100)])

    return sorted(asyncio.run(main())), scheduler


def _p99(latencies):
    return latencies[int(len(latencies) * 0.99) - 1]


def test_hedging_cuts_p99():
    """Acceptance: hedging after 30 ms cuts measured p99 to <= 0.8x of
    the unhedged tail on a bimodal endpoint, with hedges actually
    launched and winning."""
    unhedged, _ = _latency_profile(hedge=None)
    hedged, scheduler = _latency_profile(
        hedge=HedgePolicy(after_s=0.03, max_hedges=1))

    print(f"\n100 calls, bimodal endpoint (10 ms fast / 120 ms "
          f"straggler, 1 in 10), hedge after 30 ms")
    print(f"  unhedged  p50 {unhedged[49] * 1000:6.1f} ms   "
          f"p99 {_p99(unhedged) * 1000:6.1f} ms")
    print(f"  hedged    p50 {hedged[49] * 1000:6.1f} ms   "
          f"p99 {_p99(hedged) * 1000:6.1f} ms   "
          f"({scheduler.hedges_launched} hedges, "
          f"{scheduler.hedge_wins} wins)")

    assert scheduler.hedges_launched > 0
    assert scheduler.hedge_wins > 0
    assert _p99(hedged) <= 0.8 * _p99(unhedged)
