"""E6 — Fig. 1 / Fig. 3: benchmark composition and sample diversity.

Fig. 1 claims broad knowledge disciplines, diverse visual content and
comprehensive difficulties; Fig. 3 shows per-discipline sample questions.
This bench regenerates the composition summary and verifies the diversity
claims quantitatively.
"""

import pytest

from repro.core.question import Category, VisualType
from repro.core.report import render_composition
from repro.visual import render


def test_composition_summary(benchmark, chipvqa):
    text = benchmark(render_composition, chipvqa)
    assert "Digital Design" in text
    print()
    print(text)


def test_five_disciplines_covered(chipvqa):
    counts = chipvqa.category_counts()
    assert all(counts[c] >= 20 for c in Category)


def test_twelve_visual_types_present(chipvqa):
    assert len(chipvqa.visual_counts()) == 12


def test_difficulty_spans_college_to_research(chipvqa):
    """Fig. 1: 'comprehensive difficulties' — every quintile populated."""
    histogram = chipvqa.difficulty_histogram(bins=5)
    assert all(count > 0 for count in histogram)
    print(f"\ndifficulty histogram (5 bins): {histogram}")


def test_every_discipline_has_both_easy_and_hard(chipvqa):
    for category in Category:
        subset = chipvqa.by_category(category)
        difficulties = [q.difficulty for q in subset]
        assert min(difficulties) < 0.45
        assert max(difficulties) > 0.55


def test_fig3_sample_questions_render(chipvqa):
    """One representative figure per discipline rasterises cleanly."""
    samples = {
        Category.DIGITAL: "dig-18",       # state table + excitation map
        Category.ANALOG: "ana-01",        # the resistor-ladder sample
        Category.ARCHITECTURE: "arc-01",  # the bolded bypass path
        Category.MANUFACTURING: "mfg-01", # the RET sample of Fig. 3
        Category.PHYSICAL: "phy-01",      # the Steiner routing sample
    }
    for category, qid in samples.items():
        question = chipvqa.get(qid)
        assert question.category is category
        image = render(question.visual)
        assert (image < 255).mean() > 0.001


def test_fig2_architecture_diagram_renders():
    """Fig. 2 (the VLM pipeline) regenerated from the model substrate."""
    from repro.models import build_model
    from repro.visual import render_scene
    from repro.visual.diagram import vlm_architecture_scene

    model = build_model("gpt-4o")
    scene = vlm_architecture_scene(
        encoder_label=f"ENC {model.encoder.input_resolution}PX",
        llm_label=model.backbone.name.upper())
    image = render_scene(scene, 512, 384)
    assert (image < 255).mean() > 0.002


def test_models_run_at_deterministic_temperature():
    """Section IV: 'temperature=0.1 to preserve deterministic output'."""
    from repro.models import build_zoo

    assert all(m.temperature == 0.1 for m in build_zoo())
