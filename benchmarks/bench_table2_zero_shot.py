"""E2/E3 — Table II: zero-shot evaluation of all twelve VLMs.

Runs the full 12-model x 2-setting sweep and checks the table's shape:
per-model per-category rates within quantisation of the paper's values,
GPT-4o leading open-source models, and the with-choice >> no-choice gap.
"""

import pytest

from repro.core.harness import run_table2
from repro.core.question import Category
from repro.core.report import CATEGORY_ORDER, render_table2
from repro.models import (
    NO_CHOICE,
    WITH_CHOICE,
    build_model,
    build_zoo,
    paper_rates,
    quota,
)
from repro.models.zoo import TABLE2_ROW_ORDER


@pytest.fixture(scope="module")
def table2_results(harness):
    return run_table2(build_zoo(), harness)


def test_table2_full_sweep(benchmark, harness):
    results = benchmark.pedantic(
        lambda: run_table2([build_model("gpt-4o"),
                            build_model("llava-7b")], harness),
        rounds=3, iterations=1)
    assert results["gpt-4o"][WITH_CHOICE].pass_at_1() > \
        results["llava-7b"][WITH_CHOICE].pass_at_1()


def test_table2_matches_paper(table2_results):
    """Every cell equals the paper value to quota quantisation (<= 1/n)."""
    for name, _ in TABLE2_ROW_ORDER:
        for setting in (WITH_CHOICE, NO_CHOICE):
            result = table2_results[name][setting]
            rates = paper_rates(name, setting)
            for category, (correct, total) in \
                    result.category_counts().items():
                expected = quota(rates[category], total)
                assert correct == expected, (name, setting, category)

    print()
    print(render_table2(table2_results, dict(TABLE2_ROW_ORDER)))


def test_gpt4o_headline_numbers(table2_results):
    gpt = table2_results["gpt-4o"]
    assert gpt[WITH_CHOICE].pass_at_1() == pytest.approx(0.44, abs=0.01)
    assert gpt[NO_CHOICE].pass_at_1() == pytest.approx(0.20, abs=0.015)


def test_proprietary_gap(table2_results):
    """GPT-4o leads every open-source model (paper: by ~20% on average)."""
    gpt = table2_results["gpt-4o"][WITH_CHOICE].pass_at_1()
    open_source = [
        table2_results[name][WITH_CHOICE].pass_at_1()
        for name, _ in TABLE2_ROW_ORDER if name != "gpt-4o"
    ]
    assert all(gpt > score for score in open_source)
    mean_gap = gpt - sum(open_source) / len(open_source)
    assert 0.15 <= mean_gap <= 0.30  # paper reports ~0.20


def test_every_model_drops_without_choices(table2_results):
    for name, _ in TABLE2_ROW_ORDER:
        with_choice = table2_results[name][WITH_CHOICE].pass_at_1()
        no_choice = table2_results[name][NO_CHOICE].pass_at_1()
        assert no_choice <= with_choice + 0.02, name


def test_manufacture_favours_reasoning_models(table2_results):
    """Digital (MC-heavy) has a high baseline; Manufacture (SA-heavy)
    rewards the strongest models — the paper's Section IV-A observation."""
    gpt_sa = table2_results["gpt-4o"][NO_CHOICE].pass_at_1_by_category()
    weak_sa = table2_results["llava-7b"][NO_CHOICE].pass_at_1_by_category()
    assert gpt_sa[Category.MANUFACTURING] > weak_sa[Category.MANUFACTURING]
