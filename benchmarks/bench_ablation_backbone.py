"""E7 (ablation) — Section IV-A: the LLaVA backbone case study.

The paper observes that "an enhanced LLM backbone generally enhances
performance, particularly aligned with the text capabilities across
Mistral-7b, Vicuna-13b, Yi-34b and LLaMa-3-8b".  This bench sweeps the
LLaVA variants and correlates backbone text ability with benchmark score.
"""

import pytest

from repro.core.metrics import spearman_rank_correlation
from repro.models import LLAVA_BACKBONE_STUDY, build_model


@pytest.fixture(scope="module")
def backbone_sweep(harness):
    rows = []
    for name, backbone_label in LLAVA_BACKBONE_STUDY:
        model = build_model(name)
        with_choice = harness.zero_shot_standard(model).pass_at_1()
        no_choice = harness.zero_shot_challenge(model).pass_at_1()
        rows.append((name, backbone_label, model.backbone.text_ability,
                     with_choice, no_choice))
    return rows


def test_backbone_sweep_runs(benchmark, harness):
    model = build_model("llava-7b")
    result = benchmark(harness.zero_shot_standard, model)
    assert len(result) == 142


def test_text_ability_correlates_with_score(backbone_sweep):
    abilities = [row[2] for row in backbone_sweep]
    sa_scores = [row[4] for row in backbone_sweep]
    rho = spearman_rank_correlation(abilities, sa_scores)
    assert rho > 0.7

    print()
    print("LLaVA backbone study (Section IV-A)")
    print(f"{'model':<16}{'backbone':<20}{'ability':<9}"
          f"{'MC':<7}{'SA':<7}")
    for name, label, ability, mc, sa in backbone_sweep:
        print(f"{name:<16}{label:<20}{ability:<9.2f}{mc:<7.2f}{sa:<7.2f}")
    print(f"Spearman rho (ability vs SA score): {rho:.2f}")


def test_largest_backbone_wins_challenge(backbone_sweep):
    by_ability = sorted(backbone_sweep, key=lambda r: r[2])
    assert by_ability[-1][4] >= by_ability[0][4]
