"""E-ext — Resilience overhead and breaker savings.

Two shapes pinned here.  First, the circuit breaker's point: when a
model melts down permanently, fast-failing its remaining units saves
nearly the whole retry/backoff budget the sweep would otherwise burn
(measured in simulated backoff seconds and boundary crossings, so the
benchmark itself runs in milliseconds).  Second, the resilience
machinery is close to free on the healthy path: a sweep with breaker +
deadline + quarantine enabled produces byte-identical artifacts and
costs no extra model calls (run with ``-s`` to see the numbers).
"""

from repro.core.benchmark import build_chipvqa
from repro.core.faults import RecordingBoundary, TransientModelError
from repro.core.harness import run_table2
from repro.core.question import Category
from repro.core.resilience import CircuitBreaker, QuarantinePolicy
from repro.core.runner import ParallelRunner, RetryPolicy, WorkUnit
from repro.models import WITH_CHOICE, build_model, build_zoo


class _MeltedProvider(RecordingBoundary):
    """Every crossing of one model's units fails transiently (and is
    counted), emulating a provider outage that outlives any retry."""

    def __init__(self, model_slug):
        super().__init__()
        self.model_slug = model_slug

    def check(self, unit_id, qid):
        super().check(unit_id, qid)
        if unit_id.startswith(self.model_slug):
            raise TransientModelError(f"{self.model_slug}: 503")


def _melted_sweep(breaker):
    """Run one model across all five category cells against a dead
    provider; return (backoff seconds burned, boundary crossings)."""
    model = build_model("gpt-4o")
    chipvqa = build_chipvqa()
    # distinct unit ids come from distinct category subsets
    units = [WorkUnit(model=model, dataset=chipvqa.by_category(category),
                      setting=WITH_CHOICE) for category in Category]
    boundary = _MeltedProvider("gpt-4o")
    slept = []
    runner = ParallelRunner(
        workers=1, fault_boundary=boundary, breaker=breaker,
        retry=RetryPolicy(max_attempts=5, base_delay=0.2, multiplier=2.0,
                          max_delay=2.0),
        sleep=slept.append)
    outcome = runner.run(units)
    assert len(outcome.failures) == len(units)
    return sum(slept), len(boundary.calls)


def test_breaker_saves_retry_budget():
    """Acceptance: with a K=2 breaker, a dead model burns < half the
    backoff seconds and boundary crossings of the breaker-less sweep."""
    naive_sleep, naive_calls = _melted_sweep(breaker=None)
    saved_sleep, saved_calls = _melted_sweep(
        breaker=CircuitBreaker(failure_threshold=2))
    print(f"\ndead-provider sweep, 5 units x 5 retry attempts")
    print(f"  no breaker   {naive_sleep:6.1f} s backoff  "
          f"{naive_calls:4d} crossings")
    print(f"  breaker K=2  {saved_sleep:6.1f} s backoff  "
          f"{saved_calls:4d} crossings  "
          f"({naive_sleep / max(saved_sleep, 1e-9):.1f}x less backoff)")
    assert saved_sleep <= naive_sleep / 2
    assert saved_calls <= naive_calls / 2
    # exact shape: only 2 of 5 units ever reach the provider
    assert saved_sleep == naive_sleep * 2 / 5
    assert saved_calls == naive_calls * 2 / 5


def test_resilience_hooks_are_free_on_the_healthy_path(tmp_path):
    """Breaker + deadline + quarantine enabled must not change a healthy
    sweep's artifacts or add model calls."""
    models = build_zoo()[:3]
    plain_spy, guarded_spy = RecordingBoundary(), RecordingBoundary()
    plain = ParallelRunner(workers=4, run_dir=tmp_path / "plain",
                           fault_boundary=plain_spy)
    guarded = ParallelRunner(workers=4, run_dir=tmp_path / "guarded",
                             fault_boundary=guarded_spy,
                             breaker=CircuitBreaker(failure_threshold=3),
                             quarantine=QuarantinePolicy(),
                             deadline_s=600.0)
    run_table2(models, runner=plain)
    run_table2(models, runner=guarded)
    assert len(guarded_spy.calls) == len(plain_spy.calls)
    plain_files = {p.name: p.read_bytes()
                   for p in sorted((tmp_path / "plain").glob("*.jsonl"))}
    guarded_files = {p.name: p.read_bytes()
                     for p in sorted((tmp_path / "guarded").glob("*.jsonl"))}
    assert plain_files == guarded_files
    print(f"\nhealthy sweep: {len(plain_files)} artifacts byte-identical "
          f"with resilience hooks on ({len(plain_spy.calls)} model calls "
          f"either way)")
