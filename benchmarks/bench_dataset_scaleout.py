"""E18 — Procedural dataset scale-out: warm build cache, parallel shard
builds, and streaming-sweep memory residency.

Three shapes pinned (see ``docs/DATASET_FORMAT.md`` for the machinery):

* **warm >= 3x cold** — a cold ``build_chipvqa_scaled`` pays the
  canonical solver build plus variant derivation per shard; a warm
  rebuild decodes shards straight from the content-addressed disk cache
  and never touches a generator.  On the reference container the gap is
  >10x, so the asserted floor of 3x has wide margin.
* **parallel >= 2x serial at 8 workers** — :func:`repro.core.databuild.
  prime_build_cache` fans shard generation out over the process
  backend; workers write shards straight to the disk store and return
  one int each, so IPC volume cannot eat the speedup.  Needs real
  cores; skipped below four.
* **streaming residency O(shard)** — a full streaming sweep through
  :func:`repro.core.sweep.run_scaled_table2` keeps resident questions
  bounded by the shard cache's memory tier, far below the dataset size
  (the repo's processes have no psutil, so residency is measured by
  the instrumented ``peak_resident_questions`` gauge rather than RSS).

The non-slow test is a cheap any-machine identity check; the pinned
shapes are ``slow`` and run in the nightly bench step.
"""

import os
import time

import pytest

from repro.core import databuild, perfstats
from repro.core.benchmark import build_chipvqa_scaled

FEW_CORES = (os.cpu_count() or 1) < 4

#: Scaled-build size for the cold/warm shape: six canonical cycles.
WARM_N = 6 * 142
#: Streaming-sweep size: ~10k questions (71 canonical cycles).
STREAM_N = 71 * 142


def test_warm_cache_identity(tmp_path):
    """Smoke (any machine): a warm rebuild through the disk cache is
    question-identical to the cold build, render specs included."""
    databuild.enable_build_cache(tmp_path)
    try:
        perfstats.reset()
        cold = build_chipvqa_scaled(3 * 142, 11, validate=False)
        perfstats.reset()
        warm = build_chipvqa_scaled(3 * 142, 11, validate=False)
        stats = perfstats.snapshot()[databuild.BUILD_CACHE_NAME]
        assert stats["spill_hits"] == 3 and stats["misses"] == 0
    finally:
        databuild.disable_build_cache()
    assert warm.content_digest() == cold.content_digest()


@pytest.mark.slow
def test_warm_build_at_least_3x_faster_than_cold(tmp_path):
    """Acceptance (E18): warm rebuild >= 3x faster than cold.

    ``perfstats.reset()`` before each timing drops every memory tier —
    including the canonical 142-question dataset cache — so the cold
    run pays the full solver build and the warm run must come entirely
    from the disk tier.
    """
    databuild.enable_build_cache(tmp_path)
    try:
        perfstats.reset()
        databuild.reset_canonical_cycle()
        start = time.perf_counter()
        cold = build_chipvqa_scaled(WARM_N, 11, validate=False)
        cold_s = time.perf_counter() - start

        perfstats.reset()
        databuild.reset_canonical_cycle()
        start = time.perf_counter()
        warm = build_chipvqa_scaled(WARM_N, 11, validate=False)
        warm_s = time.perf_counter() - start
        stats = perfstats.snapshot()[databuild.BUILD_CACHE_NAME]
    finally:
        databuild.disable_build_cache()

    print(f"\nn={WARM_N}: cold {cold_s * 1e3:7.1f} ms   "
          f"warm {warm_s * 1e3:7.1f} ms   "
          f"speedup {cold_s / warm_s:5.1f}x   "
          f"(spill hits {stats['spill_hits']})")
    assert stats["spill_hits"] == WARM_N // 142
    assert warm.content_digest() == cold.content_digest()
    assert cold_s / warm_s >= 3.0


@pytest.mark.slow
@pytest.mark.skipif(FEW_CORES, reason="needs >= 4 CPU cores to show "
                    "parallel shard-build scaling")
def test_parallel_prime_at_least_2x_serial(tmp_path):
    """Acceptance (E18): priming the shard cache with 8 process workers
    beats the serial path >= 2x on a 50-cycle build."""
    total, shard_size = 50 * 142, 142

    serial_dir = tmp_path / "serial"
    databuild.canonical_cycle()  # warm once; both paths inherit it
    start = time.perf_counter()
    serial = databuild.prime_build_cache(
        total, 13, cache_dir=serial_dir, shard_size=shard_size)
    serial_s = time.perf_counter() - start

    parallel_dir = tmp_path / "parallel"
    start = time.perf_counter()
    parallel = databuild.prime_build_cache(
        total, 13, cache_dir=parallel_dir, shard_size=shard_size,
        backend="process", workers=8)
    parallel_s = time.perf_counter() - start

    print(f"\nprime {total} questions: serial {serial_s:6.2f} s   "
          f"process x8 {parallel_s:6.2f} s   "
          f"speedup {serial_s / parallel_s:4.1f}x")
    assert serial == parallel == {
        "shards": total // shard_size,
        "built": total // shard_size,
        "reused": 0,
    }
    assert serial_s / parallel_s >= 2.0


@pytest.mark.slow
def test_streaming_sweep_memory_stays_o_shard():
    """Acceptance (E18): a ~10k-question end-to-end sweep through
    ``ParallelRunner`` holds O(shard) questions, not O(n)."""
    from repro.core.sweep import run_scaled_table2

    databuild._SHARD_CACHE.clear()
    start = time.perf_counter()
    report = run_scaled_table2(["llava-7b"], STREAM_N, seed=17,
                               shard_size=142,
                               include_challenge=False)
    elapsed = time.perf_counter() - start

    budget = (databuild._SHARD_CACHE.capacity + 1) * 142
    result = report.results["llava-7b"]["with_choice"].samples[0]
    print(f"\n{STREAM_N}-question streaming sweep: {elapsed:6.1f} s, "
          f"peak resident {report.peak_resident_questions} questions "
          f"(budget {budget}, dataset {STREAM_N})")
    assert len(result.records) == STREAM_N
    assert 0 < report.peak_resident_questions <= budget
    assert report.peak_resident_questions < STREAM_N // 5
