"""E-ext — Runner scaling: the Table II sweep, serial vs. worker pools.

Real VLM sweeps are dominated by per-call model latency (network
round-trips, provider-side queueing), which is precisely what the
runner's thread workers overlap; the simulation injects that latency
through a :class:`~repro.core.faults.LatencyBoundary` so the measured
speedup reflects the API-bound regime rather than single-core CPU
contention.  Shape pinned: 8 workers beat the serial path by >= 2x on
the full 12-model x 2-setting sweep, and the parallel sweep reproduces
the serial numbers exactly (run with ``-s`` to see the table).
"""

import time

import pytest

from repro.core import perfstats
from repro.core.faults import LatencyBoundary
from repro.core.harness import run_table2
from repro.core.runner import ParallelRunner
from repro.models import WITH_CHOICE, build_zoo

#: Per-question simulated model-call latency (a fast provider; real
#: deployments see 100-1000x more, which only widens the gap).
LATENCY_S = 0.001


def _timed_sweep(models, workers, per_question=LATENCY_S):
    runner = ParallelRunner(
        workers=workers,
        fault_boundary=LatencyBoundary(per_question=per_question))
    start = time.perf_counter()
    results = run_table2(models, runner=runner)
    return time.perf_counter() - start, results


def test_parallel_sweep_speedup():
    """Acceptance: >= 2x wall-clock speedup at 8 workers, same numbers —
    and the perception substrate keeps a hit rate > 0 under workers."""
    perfstats.reset()
    zoo = build_zoo()
    serial_s, serial = _timed_sweep(zoo, workers=1)
    four_s, _ = _timed_sweep(zoo, workers=4)
    eight_s, eight = _timed_sweep(zoo, workers=8)

    print(f"\nTable II sweep under {LATENCY_S * 1000:.1f} ms/question "
          f"simulated model latency")
    for label, elapsed in (("serial", serial_s), ("4 workers", four_s),
                           ("8 workers", eight_s)):
        print(f"  {label:<10} {elapsed:6.2f} s   "
              f"speedup {serial_s / elapsed:4.1f}x")

    assert serial_s / four_s >= 1.5
    assert serial_s / eight_s >= 2.0
    for name, settings in serial.items():
        for setting, result in settings.items():
            assert eight[name][setting].pass_at_1() == result.pass_at_1()

    # the content-addressed perception substrate stays effective under
    # parallel workers: each model's challenge unit replays figures its
    # with_choice unit already perceived, so hits accumulate even with
    # the sweep sharded across threads
    counters = perfstats.snapshot()
    for name in ("render", "legibility", "perception"):
        cache = counters[name]
        rate = cache["hits"] / max(1, cache["hits"] + cache["misses"])
        print(f"  {name:<11} hit rate {rate:5.1%} "
              f"({cache['hits']}/{cache['hits'] + cache['misses']})")
    # this sweep uses the default analytic harness, so only the
    # perception layer is consulted (render/legibility serve the raster
    # mode — see bench_perception_cache.py); it must stay warm even with
    # the sweep sharded across threads
    perception = counters["perception"]
    assert perception["hits"] > 0, "perception cache never hit"
    assert perception["hits"] / (perception["hits"]
                                 + perception["misses"]) > 0.5


def test_memoized_resweep_is_cheap():
    """A repeated sweep through a shared cache skips every model call:
    the latency boundary is never crossed again."""
    models = build_zoo()[:4]
    runner = ParallelRunner(
        workers=4, fault_boundary=LatencyBoundary(per_question=LATENCY_S))
    cold_start = time.perf_counter()
    cold = run_table2(models, runner=runner)
    cold_s = time.perf_counter() - cold_start
    warm_start = time.perf_counter()
    warm = run_table2(models, runner=runner)
    warm_s = time.perf_counter() - warm_start
    print(f"\ncold {cold_s:.2f} s -> warm {warm_s:.2f} s "
          f"({cold_s / warm_s:.0f}x)")
    assert warm_s < cold_s / 2
    assert warm[models[0].name][WITH_CHOICE].pass_at_1() == \
        cold[models[0].name][WITH_CHOICE].pass_at_1()


@pytest.mark.slow
def test_scaling_stays_monotone_at_higher_latency():
    """With 2 ms calls (still optimistic for a real API), adding workers
    keeps helping through 16."""
    models = build_zoo()[:6]
    timings = {
        workers: _timed_sweep(models, workers, per_question=0.002)[0]
        for workers in (1, 4, 16)
    }
    print("\n" + "  ".join(f"w{w}={t:.2f}s" for w, t in timings.items()))
    assert timings[4] < timings[1]
    assert timings[16] <= timings[4] * 1.2  # no collapse past the knee
    assert timings[1] / timings[16] >= 2.0
